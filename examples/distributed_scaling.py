#!/usr/bin/env python
"""Distributed scaling and skew handling (Sections V-B, VII-C).

Two production questions on one synthetic workload:

1. does adding worker machines keep helping (Fig. 10's speedup curve)?
2. what does task splitting do to stragglers on a power-law graph
   (Fig. 9's tail collapse)?

Run:  python examples/distributed_scaling.py
"""

from repro import BenuConfig, get_pattern, run_benu
from repro.engine.benu import build_plan
from repro.metrics import format_table, speedup_series
from repro.graph.generators import chung_lu, largest_connected_component
from repro.graph.order import relabel_by_degree_order
from repro.storage.kvstore import LatencyModel


def main() -> None:
    data, _ = relabel_by_degree_order(
        largest_connected_component(chung_lu(2500, 9.0, exponent=2.1, seed=4))
    )
    pattern = get_pattern("chordal_square")
    print(f"data graph: |V|={data.num_vertices}, |E|={data.num_edges}")

    # --- Machine scalability -------------------------------------------
    worker_counts = [1, 2, 4, 8, 16]
    makespans = []
    for w in worker_counts:
        result = run_benu(
            pattern,
            data,
            BenuConfig(relabel=False, num_workers=w, threads_per_worker=2),
        )
        makespans.append(result.makespan_seconds)
    speedups = speedup_series(makespans[0], makespans)
    rows = [
        [w, f"{t:.3f}s", f"{s:.2f}x"]
        for w, t, s in zip(worker_counts, makespans, speedups)
    ]
    print("\nscalability (Fig. 10 shape):")
    print(format_table(["workers", "makespan", "speedup"], rows))

    # --- Task splitting ------------------------------------------------
    # q5 matched hub-rooted (order 3, 2, 4, 1, 5): task cost tracks the
    # start vertex's degree, the skew regime splitting is built for.
    print("\ntask splitting on a skewed graph (Fig. 9 shape):")
    q5_plan = build_plan(get_pattern("q5"), order=[3, 2, 4, 1, 5], compressed=True)
    rows = []
    for tau in (None, 128, 32):
        result = run_benu(
            get_pattern("q5"),
            data,
            BenuConfig(
                relabel=False,
                num_workers=4,
                threads_per_worker=2,
                split_threshold=tau,
                latency=LatencyModel(per_query_seconds=5e-5),
            ),
            plan=q5_plan,
        )
        heaviest = max(result.per_task_sim_seconds)
        busy = result.per_worker_busy_seconds
        imbalance = max(busy) / (sum(busy) / len(busy))
        rows.append(
            [
                "off" if tau is None else f"tau={tau}",
                result.num_tasks,
                f"{heaviest * 1000:.1f}ms",
                f"{imbalance:.2f}",
                f"{result.makespan_seconds:.3f}s",
            ]
        )
    print(
        format_table(
            ["splitting", "tasks", "heaviest task", "worker imbalance", "makespan"],
            rows,
        )
    )
    print(
        "\nSplitting multiplies tasks slightly, crushes the heaviest task, "
        "evens out workers and cuts the makespan — the Fig. 9 story."
    )


if __name__ == "__main__":
    main()
