#!/usr/bin/env python
"""Network-motif census — the paper's flagship application (Section I).

Counts every connected 3- and 4-vertex motif in a synthetic social
network and compares the counts against a degree-preserving random
baseline, the classic network-motif methodology (Milo et al., Science'02):
a motif is "interesting" when it is strongly over-represented versus
chance.

Run:  python examples/motif_census.py
"""

from repro import BenuConfig, Graph, count_subgraphs
from repro.graph.generators import chung_lu, random_graph_with_degree_sequence_hint
from repro.graph.graph import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.order import relabel_by_degree_order
from repro.metrics import format_table

#: Every connected graph on 3–4 vertices, the standard motif dictionary.
MOTIFS = {
    "path-3": path_graph(3),
    "triangle": complete_graph(3),
    "path-4": path_graph(4),
    "star-3": star_graph(3),
    "square": cycle_graph(4),
    "tailed-triangle": Graph([(1, 2), (2, 3), (1, 3), (3, 4)]),
    "chordal-square": Graph([(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)]),
    "clique-4": complete_graph(4),
}


def census(graph: Graph) -> dict:
    config = BenuConfig(relabel=False)
    return {
        name: count_subgraphs(motif, graph, config)
        for name, motif in MOTIFS.items()
    }


def main() -> None:
    social, _ = relabel_by_degree_order(chung_lu(1500, 7.0, exponent=2.3, seed=42))
    print(f"social network: |V|={social.num_vertices}, |E|={social.num_edges}")

    observed = census(social)

    # Random baseline with the same size (ER with matched edge count).
    baseline_graph, _ = relabel_by_degree_order(
        random_graph_with_degree_sequence_hint(
            social.num_vertices, social.num_edges, seed=7
        )
    )
    expected = census(baseline_graph)

    rows = []
    for name in MOTIFS:
        obs, exp = observed[name], expected[name]
        ratio = obs / exp if exp else float("inf")
        verdict = "MOTIF" if ratio > 2.0 else ""
        rows.append([name, obs, exp, f"{ratio:.1f}x", verdict])

    print()
    print(format_table(["motif", "observed", "random", "enrichment", ""], rows))
    print(
        "\nClustered power-law networks over-express closed structures "
        "(triangles, chordal squares, cliques) relative to random graphs — "
        "the signature motif analysis looks for."
    )


if __name__ == "__main__":
    main()
