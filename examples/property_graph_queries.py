#!/usr/bin/env python
"""Property-graph queries — the paper's future-work extension, working.

Models a small social/content platform as a labeled graph (users, pages,
tags) and runs typed pattern queries: co-engagement wedges, typed
triangles, and a "collaboration square".  Labels shrink both the search
space (per-label candidate pools) and the symmetry group (only
label-preserving automorphisms are deduplicated).

Run:  python examples/property_graph_queries.py
"""

import random

from repro.engine.config import BenuConfig
from repro.graph.graph import Graph, complete_graph
from repro.labeled import (
    LabeledGraph,
    LabeledPatternGraph,
    count_labeled_subgraphs,
    enumerate_labeled_subgraphs,
)
from repro.metrics import format_table


def build_platform(num_users=400, num_pages=120, num_tags=25, seed=11):
    """A synthetic platform: users befriend users, like pages; pages carry tags."""
    rng = random.Random(seed)
    users = [f"u{i}" for i in range(num_users)]
    pages = [f"p{i}" for i in range(num_pages)]
    tags = [f"t{i}" for i in range(num_tags)]
    ids = {name: i for i, name in enumerate(users + pages + tags)}
    labels = {}
    for name in users:
        labels[ids[name]] = "user"
    for name in pages:
        labels[ids[name]] = "page"
    for name in tags:
        labels[ids[name]] = "tag"

    edges = []
    for name in users:  # friendships (preferential-ish)
        for _ in range(rng.randint(1, 6)):
            other = users[min(rng.randrange(num_users), rng.randrange(num_users))]
            if other != name:
                edges.append((ids[name], ids[other]))
    for name in users:  # page likes
        for _ in range(rng.randint(1, 4)):
            edges.append((ids[name], ids[pages[rng.randrange(num_pages)]]))
    for name in pages:  # tag assignments
        for _ in range(rng.randint(1, 3)):
            edges.append((ids[name], ids[tags[rng.randrange(num_tags)]]))
    return LabeledGraph(edges, labels)


def main() -> None:
    platform = build_platform()
    print(f"platform graph: {platform}")
    print(f"label counts: {platform.label_frequencies()}")

    queries = {
        # Two friends who like the same page.
        "co-liked page": LabeledPatternGraph(
            complete_graph(3), {1: "user", 2: "user", 3: "page"}
        ),
        # A friendship triangle.
        "friend triangle": LabeledPatternGraph(
            complete_graph(3), {1: "user", 2: "user", 3: "user"}
        ),
        # Two pages sharing a tag, both liked by one user.
        "topic square": LabeledPatternGraph(
            Graph([(1, 2), (2, 3), (3, 4), (4, 1)]),
            {1: "user", 2: "page", 3: "tag", 4: "page"},
        ),
    }

    config = BenuConfig(num_workers=2)
    rows = []
    for name, pattern in queries.items():
        count = count_labeled_subgraphs(pattern, platform, config)
        rows.append([name, pattern.n, len(pattern.symmetry_conditions), count])
    print()
    print(format_table(["query", "vertices", "sym conditions", "results"], rows))

    sample = enumerate_labeled_subgraphs(
        queries["co-liked page"], platform, BenuConfig(collect=True)
    )[:3]
    print("\nsample co-liked-page matches (user, user, page):", sample)
    print(
        "\nLabels cut the work: candidate pools shrink per label, and only "
        "label-preserving symmetry is deduplicated — the property-graph "
        "direction the paper's conclusion sketches."
    )


if __name__ == "__main__":
    main()
