#!/usr/bin/env python
"""Execution-plan explorer: watch Section IV's machinery work.

For a chosen pattern this example shows every stage of plan generation —
raw plan, each optimization, VCBC compression, cost estimates, and the
Algorithm 3 search statistics — then proves all variants enumerate the
same matches on a sample graph.

Run:  python examples/plan_explorer.py [pattern]   (default: demo)
"""

import sys

from repro import GraphStats, compile_plan, get_pattern
from repro.graph.generators import chung_lu
from repro.graph.order import relabel_by_degree_order
from repro.pattern.pattern_graph import PatternGraph
from repro.plan.compression import compress_plan
from repro.plan.cost import estimate_communication_cost, estimate_computation_cost
from repro.plan.generation import generate_raw_plan
from repro.plan.optimizer import optimize
from repro.plan.search import generate_best_plan


def show(title: str, plan, stats) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
    print(plan)
    print(
        f"-- estimated cost: communication={estimate_communication_cost(plan, stats):.3g}, "
        f"computation={estimate_computation_cost(plan, stats):.3g}"
    )


def count_matches(plan, data) -> int:
    compiled = compile_plan(plan)
    vset = frozenset(data.vertices)
    return sum(
        compiled.run(v, data.neighbors, vset=vset).results for v in data.vertices
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "demo"
    pattern = PatternGraph(get_pattern(name), name)
    print(f"pattern {name}: n={pattern.n}, m={pattern.m}")
    print(f"symmetry-breaking partial order: {pattern.symmetry_conditions}")
    print(f"syntactic-equivalence classes: {pattern.se_classes}")

    data, _ = relabel_by_degree_order(chung_lu(800, 6.0, seed=3))
    stats = GraphStats.of(data)

    # The search (Algorithm 3).
    best = generate_best_plan(pattern, stats)
    s = best.stats
    print(
        f"\nAlgorithm 3: explored {s.explored_orders} complete orders, "
        f"alpha={s.alpha} ({s.relative_alpha:.1%} of bound), "
        f"beta={s.beta} ({s.relative_beta:.2%} of bound), "
        f"{s.elapsed_seconds * 1000:.1f} ms"
    )
    print(f"best matching order: {best.plan.order}")

    # Every optimization stage on the best order.
    raw = generate_raw_plan(pattern, best.plan.order)
    show("raw plan (Section IV-A)", raw, stats)
    show("+ common subexpression elimination", optimize(raw, 1), stats)
    show("+ instruction reordering", optimize(raw, 2), stats)
    show("+ triangle caching (full pipeline)", optimize(raw, 3), stats)
    compressed = compress_plan(optimize(raw, 3))
    show("VCBC-compressed output", compressed, stats)

    # All variants agree.
    counts = {level: count_matches(optimize(raw, level), data) for level in range(4)}
    print(f"\nmatch counts across optimization levels: {counts}")
    assert len(set(counts.values())) == 1
    print("all plan variants enumerate the same matches — as Section III-B proves.")


if __name__ == "__main__":
    main()
