#!/usr/bin/env python
"""Quickstart: enumerate pattern subgraphs with BENU.

Builds a small data graph, counts and lists a few patterns, and peeks at
the machinery: the generated execution plan and the run's cost profile.

Run:  python examples/quickstart.py
"""

from repro import (
    BenuConfig,
    Graph,
    count_subgraphs,
    enumerate_subgraphs,
    get_pattern,
    run_benu,
)
from repro.engine.benu import build_plan
from repro.graph.generators import chung_lu
from repro.graph.order import relabel_by_degree_order


def main() -> None:
    # --- 1. The five-minute version -----------------------------------
    data = Graph(
        [
            (0, 1), (0, 2), (1, 2),          # a triangle
            (2, 3), (3, 4), (4, 0),          # closing a 5-cycle
            (1, 4), (3, 0),                  # chords
        ]
    )
    triangle = get_pattern("triangle")
    print("triangles:", count_subgraphs(triangle, data))
    for match in enumerate_subgraphs(triangle, data):
        print("  match (f1, f2, f3) =", match)

    # --- 2. A realistic graph and a harder pattern --------------------
    big, _ = relabel_by_degree_order(chung_lu(2000, 8.0, seed=1))
    print(f"\npower-law graph: |V|={big.num_vertices}, |E|={big.num_edges}")
    for name in ("triangle", "square", "chordal_square", "clique4"):
        print(f"  {name:>15}: {count_subgraphs(get_pattern(name), big, BenuConfig(relabel=False))}")

    # --- 3. Look under the hood ---------------------------------------
    plan = build_plan(get_pattern("chordal_square"), big)
    print("\nbest execution plan for the chordal square:")
    print(plan)

    result = run_benu(
        get_pattern("chordal_square"), big, BenuConfig(relabel=False)
    )
    print("\nrun profile:")
    print(" ", result.summary())


if __name__ == "__main__":
    main()
