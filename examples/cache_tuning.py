#!/usr/bin/env python
"""Cache tuning: trade memory for communication (Section V-A, Fig. 8).

Sweeps the local database cache capacity from 0 % to 100 % of the data
graph and reports hit rate, communication volume and simulated execution
time — the knob a BENU operator actually turns in production.

Run:  python examples/cache_tuning.py
"""

from repro import BenuConfig, get_pattern, run_benu
from repro.graph.generators import chung_lu
from repro.graph.order import relabel_by_degree_order
from repro.metrics import format_bytes, format_table
from repro.storage.serialization import graph_size_bytes


def main() -> None:
    data, _ = relabel_by_degree_order(chung_lu(1200, 8.0, exponent=2.3, seed=9))
    total_bytes = graph_size_bytes(data)
    pattern = get_pattern("chordal_square")
    print(
        f"data graph: |V|={data.num_vertices}, |E|={data.num_edges}, "
        f"serialized size {format_bytes(total_bytes)}"
    )

    rows = []
    for relative in (0.0, 0.05, 0.1, 0.2, 0.4, 1.0):
        capacity = int(total_bytes * relative)
        config = BenuConfig(
            relabel=False,
            num_workers=2,
            cache_capacity_bytes=capacity,
        )
        result = run_benu(pattern, data, config)
        rows.append(
            [
                f"{relative:.0%}",
                f"{result.cache_hit_rate:.1%}",
                result.communication.queries,
                format_bytes(result.communication_bytes),
                f"{result.makespan_seconds:.3f}s",
            ]
        )

    print()
    print(
        format_table(
            ["capacity", "hit rate", "DB queries", "comm bytes", "sim time"],
            rows,
        )
    )
    print(
        "\nAs in Fig. 8: hit rate climbs steeply with a modest cache, and "
        "communication (and with it execution time) collapses."
    )


if __name__ == "__main__":
    main()
