"""Clients a router uses to talk to shard nodes.

Every client speaks the line protocol of :mod:`repro.service.protocol`
as *dicts*: ``request(obj) -> obj``.  Two transports:

* :class:`LocalShardClient` — an in-process :class:`~repro.shard.node.ShardNode`
  behind a real JSON round-trip (requests and responses are serialized
  and parsed, so tests exercise exact wire fidelity without sockets).
  Its :meth:`LocalShardClient.kill` hook makes the node unreachable,
  which is how the failure-injection tests take a shard down mid-query.
* :class:`TCPShardClient` — a line-per-message TCP connection to a
  ``benu serve`` process, hardened for production: a *connect* timeout
  (a SYN-dropped or accept-stalled shard fails fast instead of blocking
  the router until the global deadline), a separate *read* timeout for
  in-flight requests, and lazy reconnection — after any transport
  failure the socket is torn down and the next request dials fresh, so
  a router retry actually lands on a new connection.

Transport failures raise :class:`ShardUnavailable` — the typed signal
the router's retry path keys on.  A *protocol-level* error response
(``{"ok": false, ...}``) is not a transport failure and is returned to
the caller untouched; the router maps unknown remote codes onto the
typed :class:`ShardError` fallback.

Both transports thread the deterministic fault injector through the
``shard.connect`` / ``shard.write`` / ``shard.read`` sites, so chaos
tests can drop exact connections ("the 5th read on shard 2") without
real network misbehavior.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass
from typing import Iterator, Optional

from ..faults import (
    FaultConfig,
    InjectedFault,
    NULL_INJECTOR,
    SITE_SHARD_CONNECT,
    SITE_SHARD_READ,
    SITE_SHARD_WRITE,
    get_injector,
)
from ..service.errors import ServiceError

#: Fail a TCP dial that makes no progress this long (seconds).  Distinct
#: from the read timeout because a healthy dial is milliseconds while a
#: legitimate request (a big poll against a busy shard) can take much
#: longer — one knob cannot serve both.
DEFAULT_CONNECT_TIMEOUT = 5.0
#: Fail an in-flight request with no response this long (seconds).
DEFAULT_READ_TIMEOUT = 30.0


class ShardUnavailable(ServiceError):
    """The shard node cannot be reached (dead, killed, or disconnected)."""

    code = "shard_unavailable"


class ShardError(ServiceError):
    """A shard returned an error code the router has no typed mapping for.

    The raw remote code and message ride along (and ``code`` *is* the
    remote code, so re-serializing the error onto another protocol hop
    preserves what the shard actually said instead of collapsing every
    unknown failure into one bucket).
    """

    def __init__(self, remote_code: str, message: str, endpoint: str = "?") -> None:
        super().__init__(f"shard {endpoint}: [{remote_code}] {message}")
        self.code = remote_code
        self.remote_code = remote_code
        self.endpoint = endpoint


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff for transient shard errors.

    ``delays()`` yields the ``max_attempts - 1`` waits between attempts:
    ``base_delay * multiplier^i``, capped at ``max_delay``, each scaled
    by a jitter factor in [0.5, 1.0) drawn from a :class:`random.Random`
    seeded with ``seed`` — the same policy instance always produces the
    same delays, so retry timing is replayable in tests.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")

    def delays(self, stream: str = "") -> Iterator[float]:
        """The waits between attempts, deterministically jittered."""
        rng = FaultConfig(seed=self.seed).rng(f"retry:{stream}")
        for i in range(self.max_attempts - 1):
            delay = min(self.base_delay * self.multiplier**i, self.max_delay)
            yield delay * (0.5 + 0.5 * rng.random())


class ShardClient:
    """Abstract request/response channel to one shard node."""

    #: Human-readable endpoint for error messages and telemetry keys.
    endpoint: str = "?"

    def request(self, obj: dict) -> dict:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def hello(self, version: int = 2, role: str = "router") -> dict:
        """Run the v2 handshake; raises ShardUnavailable on dead nodes."""
        return self.request({"op": "hello", "version": version, "role": role})

    def health(self) -> dict:
        """The cheap liveness probe (the circuit breaker's half-open check)."""
        return self.request({"op": "health"})


class LocalShardClient(ShardClient):
    """An in-process shard node behind a faithful JSON round-trip."""

    # Class-level default so lightweight test doubles that skip
    # __init__ still get a (disabled) injector.
    _injector = NULL_INJECTOR

    def __init__(self, node, endpoint: Optional[str] = None, faults=None) -> None:
        self.node = node
        self.endpoint = endpoint or f"local:{node.identity.shard_index}"
        self._protocol = node.protocol()
        self._killed = False
        self._injector = get_injector(faults) if faults is not None else NULL_INJECTOR

    def kill(self) -> None:
        """Make the node unreachable (failure injection for tests)."""
        self._killed = True

    def revive(self) -> None:
        self._killed = False

    def request(self, obj: dict) -> dict:
        if self._killed:
            raise ShardUnavailable(f"shard {self.endpoint} is down")
        try:
            if self._injector.enabled:
                self._injector.hit(SITE_SHARD_WRITE)
            # Serialize both ways: a dict that would not survive the wire
            # must fail here too, not only over TCP.
            line = json.dumps(obj)
            response = json.loads(self._protocol.handle_line_json(line))
            if self._injector.enabled:
                self._injector.hit(SITE_SHARD_READ)
        except InjectedFault as exc:
            raise ShardUnavailable(
                f"shard {self.endpoint} connection failed: {exc}"
            ) from exc
        return response


class TCPShardClient(ShardClient):
    """A line-delimited JSON connection to a ``benu serve`` TCP node.

    The constructor dials eagerly (an unreachable endpoint fails at
    construction, as it always has) but the connection is *re-established
    lazily*: any transport failure tears the socket down and the next
    :meth:`request` dials again — which is what makes a router-level
    retry against the same endpoint meaningful.

    ``timeout`` is the legacy single knob (sets both hop timeouts);
    ``connect_timeout`` / ``read_timeout`` override per hop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        faults=None,
    ) -> None:
        self.endpoint = f"{host}:{port}"
        self._host = host
        self._port = port
        self.connect_timeout = (
            connect_timeout
            if connect_timeout is not None
            else (timeout if timeout is not None else DEFAULT_CONNECT_TIMEOUT)
        )
        self.read_timeout = (
            read_timeout
            if read_timeout is not None
            else (timeout if timeout is not None else DEFAULT_READ_TIMEOUT)
        )
        self._injector = get_injector(faults) if faults is not None else NULL_INJECTOR
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._injector.enabled:
            self._injector.hit(SITE_SHARD_CONNECT)
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self.connect_timeout
            )
        except OSError as exc:
            self._sock = None
            raise ShardUnavailable(
                f"cannot connect to shard {self.endpoint}: {exc}"
            ) from exc
        # Past the dial, the socket clock governs reads of responses.
        self._sock.settimeout(self.read_timeout)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def _teardown(self) -> None:
        """Drop the broken connection so the next request dials fresh."""
        for closer in (self._file, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:  # pragma: no cover - best effort teardown
                    pass
        self._file = None
        self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # ------------------------------------------------------------------
    def request(self, obj: dict) -> dict:
        if self._sock is None:
            self._connect()
        try:
            if self._injector.enabled:
                self._injector.hit(SITE_SHARD_WRITE)
            self._file.write(json.dumps(obj) + "\n")
            self._file.flush()
            if self._injector.enabled:
                self._injector.hit(SITE_SHARD_READ)
            line = self._file.readline()
        except OSError as exc:
            # InjectedFault is a ConnectionError, so deterministic drops
            # take exactly the real failure path through here.
            self._teardown()
            raise ShardUnavailable(
                f"shard {self.endpoint} connection failed: {exc}"
            ) from exc
        if not line:
            self._teardown()
            raise ShardUnavailable(f"shard {self.endpoint} closed the connection")
        return json.loads(line)

    def close(self) -> None:
        self._teardown()
