"""Clients a router uses to talk to shard nodes.

Every client speaks the line protocol of :mod:`repro.service.protocol`
as *dicts*: ``request(obj) -> obj``.  Two transports:

* :class:`LocalShardClient` — an in-process :class:`~repro.shard.node.ShardNode`
  behind a real JSON round-trip (requests and responses are serialized
  and parsed, so tests exercise exact wire fidelity without sockets).
  Its :meth:`LocalShardClient.kill` hook makes the node unreachable,
  which is how the failure-injection tests take a shard down mid-query.
* :class:`TCPShardClient` — a line-per-message TCP connection to a
  ``benu serve`` process.

Transport failures raise :class:`ShardUnavailable` — the typed signal
the router's retry path keys on.  A *protocol-level* error response
(``{"ok": false, ...}``) is not a transport failure and is returned to
the caller untouched.
"""

from __future__ import annotations

import json
import socket
from typing import Optional

from ..service.errors import ServiceError


class ShardUnavailable(ServiceError):
    """The shard node cannot be reached (dead, killed, or disconnected)."""

    code = "shard_unavailable"


class ShardClient:
    """Abstract request/response channel to one shard node."""

    #: Human-readable endpoint for error messages and telemetry keys.
    endpoint: str = "?"

    def request(self, obj: dict) -> dict:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def hello(self, version: int = 2, role: str = "router") -> dict:
        """Run the v2 handshake; raises ShardUnavailable on dead nodes."""
        return self.request({"op": "hello", "version": version, "role": role})


class LocalShardClient(ShardClient):
    """An in-process shard node behind a faithful JSON round-trip."""

    def __init__(self, node, endpoint: Optional[str] = None) -> None:
        self.node = node
        self.endpoint = endpoint or f"local:{node.identity.shard_index}"
        self._protocol = node.protocol()
        self._killed = False

    def kill(self) -> None:
        """Make the node unreachable (failure injection for tests)."""
        self._killed = True

    def revive(self) -> None:
        self._killed = False

    def request(self, obj: dict) -> dict:
        if self._killed:
            raise ShardUnavailable(f"shard {self.endpoint} is down")
        # Serialize both ways: a dict that would not survive the wire
        # must fail here too, not only over TCP.
        line = json.dumps(obj)
        return json.loads(self._protocol.handle_line_json(line))


class TCPShardClient(ShardClient):
    """A line-delimited JSON connection to a ``benu serve`` TCP node."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.endpoint = f"{host}:{port}"
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ShardUnavailable(
                f"cannot connect to shard {self.endpoint}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def request(self, obj: dict) -> dict:
        try:
            self._file.write(json.dumps(obj) + "\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ShardUnavailable(
                f"shard {self.endpoint} connection failed: {exc}"
            ) from exc
        if not line:
            raise ShardUnavailable(f"shard {self.endpoint} closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:  # pragma: no cover - best effort teardown
            pass
