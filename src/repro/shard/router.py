"""The fan-out/merge router in front of a sharded BENU deployment.

One :class:`ShardRouter` owns a set of shard clients.  At construction
it runs the v2 handshake against every node and checks the deployment's
shape: every node reports the same shard count and epoch, every
partition index ``0..N-1`` is covered, and nodes sharing an index are
*replicas* holding identical task slices.

A query fans out once — the router stamps a single absolute deadline
(``deadline_at``, epoch seconds) and submits each partition's slice to
one replica — and merges back into one client-facing stream:

* **Order** — shards are drained sequentially in partition-index order.
  Each shard's slice is enumerated deterministically, so the merged
  stream is a deterministic concatenation: byte-identical across runs
  and (as a set, and per-shard as a sequence) identical to a
  single-node run over the same graph.  Shards *execute* concurrently
  the whole time; a shard that fills its bounded stream buffer simply
  blocks on backpressure until the router drains it.
* **Deadline budget** — every hop forwards the same ``deadline_at``;
  shard queue time, router wait and network time all debit the one
  global budget.  Expiry anywhere surfaces as ``deadline_expired``.
* **Retries and circuit breaking** — a transient transport failure is
  retried in place with deterministic exponential backoff
  (:class:`~repro.shard.client.RetryPolicy`), every backoff debited
  against the query's global ``deadline_at``.  A replica that exhausts
  its retries is *marked dead* (``replica_marked_dead`` in the router's
  event log) and skipped by later submits and failovers until a cheap
  ``health`` probe brings it back (``replica_marked_alive``) — a simple
  circuit breaker with half-open probing.
* **Failover** — a shard that dies mid-stream is retried *once* on a
  live replica of the same partition: the slice is resubmitted with the
  unchanged deadline, the already-delivered prefix is skipped (exact
  because slice enumeration is deterministic), and the merge resumes
  where it stopped.
* **Telemetry** — per-shard counters merge with shard provenance
  labels; instruction/kernel counts are per-task deterministic, so the
  shard sums equal the single-node totals exactly.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..engine.control import DeadlineExpired, QueryCancelled
from ..lang.lowering import lower_query
from ..service.errors import InvalidQueryError, ServiceError
from ..telemetry.events import (
    EV_REPLICA_MARKED_ALIVE,
    EV_REPLICA_MARKED_DEAD,
    EventLog,
    stitch_event_dicts,
)
from ..telemetry.registry import merge_registry_dicts
from .client import RetryPolicy, ShardClient, ShardError, ShardUnavailable

#: How long one poll hop may wait for a count-mode query to finish.
_COUNT_POLL_WAIT = 0.25
#: Pause between empty polls of a still-running stream.
_STREAM_POLL_PAUSE = 0.005


class RouterError(ServiceError):
    """The deployment is malformed (bad shape, epoch mismatch, ...)."""

    code = "router"


def _raise_remote(response: dict, endpoint: str) -> None:
    """Map a shard's error response onto the matching typed exception.

    Known codes get their native types; everything else raises the typed
    :class:`ShardError` fallback carrying the raw remote code and
    message — an unknown code must never fall through silently or
    collapse into an untyped bucket.
    """
    code = response.get("error", "error")
    message = str(response.get("message", code))
    if code == "deadline_expired":
        raise DeadlineExpired(0.0)
    if code == "cancelled":
        raise QueryCancelled(f"shard {endpoint}: {message}")
    raise ShardError(code, message, endpoint=endpoint)


class _Slice:
    """One partition's routed slice: which replica runs it, and progress."""

    def __init__(self, index: int, replicas: List[ShardClient]) -> None:
        self.index = index
        self.replicas = replicas
        self.client: Optional[ShardClient] = None
        self.query_id: Optional[str] = None
        self.delivered = 0  # matches already handed to the router's client
        self.done = False
        self.retried = False
        self.count: Optional[int] = None
        self.telemetry: Optional[dict] = None
        self.groups: Optional[dict] = None  # BENU-QL GROUP BY counts


class RouterFetchResult:
    """One merged page (mirrors the single-node ``FetchResult``)."""

    def __init__(self, matches: List[tuple], cursor: int, done: bool) -> None:
        self.matches = matches
        self.cursor = cursor
        self.done = done

    def __iter__(self):
        return iter(self.matches)


class RouterQuery:
    """Client-side handle to one fanned-out query."""

    def __init__(
        self,
        router: "ShardRouter",
        request: dict,
        slices: List[_Slice],
        deadline_at: Optional[float],
        stream: bool,
        limit: Optional[int],
        kind: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        self._router = router
        self._request = request  # resubmitted verbatim on failover
        self._slices = slices
        self.deadline_at = deadline_at
        self.stream = stream
        self.limit = limit
        #: BENU-QL result shape ("count" / "groups" / "stream"), or None
        #: for pattern-submitted queries.
        self.kind = kind
        self.columns = tuple(columns) if columns is not None else None
        self._current = 0  # partition index being drained
        self._cursor = 0  # total matches delivered across shards
        self._truncated = False

    # ------------------------------------------------------------------
    @property
    def query_ids(self) -> Dict[int, str]:
        return {s.index: s.query_id for s in self._slices}

    @property
    def done(self) -> bool:
        return self._truncated or all(s.done for s in self._slices)

    def _check_budget(self) -> None:
        if self.deadline_at is not None and time.time() >= self.deadline_at:
            raise DeadlineExpired(0.0)

    def _poll(self, s: _Slice, body: dict) -> dict:
        """One poll hop against a slice's replica, with one-shot failover.

        The hop itself goes through the router's backoff retry (budgeted
        against ``deadline_at``); only after the replica exhausts its
        retries — and is marked dead — does the slice fail over.
        """
        self._check_budget()
        try:
            response = self._router.request_with_retry(
                s.client,
                {**body, "query": s.query_id},
                deadline_at=self.deadline_at,
            )
        except ShardUnavailable:
            self._failover(s)
            response = self._router.request_with_retry(
                s.client,
                {**body, "query": s.query_id},
                deadline_at=self.deadline_at,
            )
        if not response.get("ok"):
            _raise_remote(response, s.client.endpoint)
        return response

    def _failover(self, s: _Slice) -> None:
        """Move a dead slice to a live replica and skip the delivered prefix.

        Exact-once delivery relies on the slice being re-enumerated in
        the same deterministic order by the replica — true for the
        simulated and inline backends (and documented as the failover
        contract); the process backend's unordered task completion only
        guarantees set-identical replay, so routers over it should not
        rely on mid-stream failover.
        """
        if s.retried:
            raise ShardUnavailable(
                f"partition {s.index}: replica {s.client.endpoint} died "
                "after a failover was already used"
            )
        s.retried = True
        dead = s.client
        self._router.mark_dead(dead, reason="failed mid-query")
        for replica in self._router.live_first(s.replicas):
            if replica is dead:
                continue
            if not self._router.is_alive(replica) and not self._router.probe(
                replica
            ):
                continue
            try:
                response = replica.request(self._request)
            except ShardUnavailable as exc:
                self._router.mark_dead(replica, reason=str(exc))
                continue
            if not response.get("ok"):
                _raise_remote(response, replica.endpoint)
            s.client = replica
            s.query_id = response["query"]
            self._skip_delivered(s)
            return
        raise ShardUnavailable(
            f"partition {s.index} has no live replica left"
        )

    def _skip_delivered(self, s: _Slice) -> None:
        """Drain and discard the prefix the dead replica already delivered."""
        if not self.stream or s.delivered == 0:
            return
        to_skip = s.delivered
        while to_skip > 0:
            self._check_budget()
            response = s.client.request(
                {"op": "poll", "query": s.query_id, "limit": min(to_skip, 1024)}
            )
            if not response.get("ok"):
                _raise_remote(response, s.client.endpoint)
            got = response.get("matches", [])
            to_skip -= len(got)
            if response.get("done") and to_skip > 0:
                raise ShardUnavailable(
                    f"partition {s.index}: replica replayed fewer matches "
                    "than were already delivered"
                )
            if not got:
                time.sleep(_STREAM_POLL_PAUSE)

    # ------------------------------------------------------------- streaming
    def fetch(
        self, limit: int = 256, cursor: Optional[int] = None
    ) -> RouterFetchResult:
        """Up to ``limit`` merged matches; same contract as a QueryHandle.

        The merged stream cannot rewind: ``cursor``, when given, must be
        the position the previous fetch returned.
        """
        if not self.stream:
            raise InvalidQueryError("count queries have no match stream")
        if limit < 1:
            raise InvalidQueryError("fetch limit must be positive")
        if cursor is not None and cursor != self._cursor:
            raise InvalidQueryError(
                f"cursor {cursor} is not the stream position ({self._cursor});"
                " merged streams cannot rewind"
            )
        out: List[tuple] = []
        while len(out) < limit and self._current < len(self._slices):
            if self._truncated:
                break
            s = self._slices[self._current]
            # The cursor is the router's acknowledged position.  If the
            # previous poll's *response* was lost in transit, the retried
            # request carries the stale cursor and the shard re-serves
            # the lost page from its replay window — no match is ever
            # dropped by a transport failure between poll and response.
            response = self._poll(
                s,
                {
                    "op": "poll",
                    "limit": limit - len(out),
                    "cursor": s.delivered,
                },
            )
            got = [tuple(m) for m in response.get("matches", [])]
            s.delivered += len(got)
            out.extend(got)
            if (
                self.limit is not None
                and self._cursor + len(out) >= self.limit
            ):
                overshoot = self._cursor + len(out) - self.limit
                if overshoot:
                    del out[-overshoot:]
                self._truncated = True
                self._cancel_rest()
                break
            if response.get("done"):
                s.done = True
                self._current += 1
            elif not got:
                time.sleep(_STREAM_POLL_PAUSE)
        self._cursor += len(out)
        return RouterFetchResult(out, self._cursor, self.done)

    def matches(self):
        """Yield merged matches until the stream ends (blocking)."""
        while True:
            page = self.fetch(limit=256)
            yield from page.matches
            if page.done:
                return

    def _cancel_rest(self) -> None:
        """Best-effort cancel of slices whose results are no longer needed."""
        for s in self._slices:
            if s.done or s.query_id is None:
                continue
            try:
                s.client.request({"op": "cancel", "query": s.query_id})
            except (ShardUnavailable, OSError):
                pass
            s.done = True

    def cancel(self) -> None:
        self._cancel_rest()

    # ----------------------------------------------------------------- count
    def result(self) -> dict:
        """Block until every shard finishes; the exact global totals.

        Returns ``{"count", "instruction_counts", "kernel_counts",
        "per_shard"}`` where the counts are sums over shards — equal to
        the single-node run's, because instruction execution per task is
        deterministic and the task space partitions exactly.
        """
        if self.stream:
            raise InvalidQueryError(
                "streamed queries deliver through fetch(); result() is "
                "for count mode"
            )
        per_shard: List[dict] = []
        total = 0
        instruction_counts: Dict[str, int] = {}
        kernel_counts: Dict[str, int] = {}
        for s in self._slices:
            while not s.done:
                response = self._poll(
                    s, {"op": "poll", "wait": _COUNT_POLL_WAIT}
                )
                if response.get("done"):
                    s.done = True
                    s.count = int(response.get("count", 0))
                    s.telemetry = response.get("telemetry") or {}
                    s.groups = response.get("groups")
            total += s.count or 0
            for kind, sums in (
                ("instruction_counts", instruction_counts),
                ("kernel_counts", kernel_counts),
            ):
                for key, value in (s.telemetry or {}).get(kind, {}).items():
                    sums[key] = sums.get(key, 0) + int(value)
            per_shard.append(
                {
                    "shard": s.index,
                    "endpoint": s.client.endpoint,
                    "query": s.query_id,
                    "count": s.count,
                    "retried": s.retried,
                }
            )
        out = {
            "count": total,
            "instruction_counts": instruction_counts,
            "kernel_counts": kernel_counts,
            "per_shard": per_shard,
        }
        if any(s.groups is not None for s in self._slices):
            # Shard slices partition the task space, so each group key's
            # matches land on disjoint shards — summing is exact.
            groups: Dict[str, int] = {}
            for s in self._slices:
                for key, value in (s.groups or {}).items():
                    groups[key] = groups.get(key, 0) + int(value)
            out["groups"] = groups
        return out


class ShardRouter:
    """Fan-out/merge front-end over a fixed set of shard clients."""

    def __init__(
        self,
        clients: Sequence[ShardClient],
        expected_epoch: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        if not clients:
            raise RouterError("a router needs at least one shard client")
        self.clients = list(clients)
        self.shard_count: Optional[int] = None
        self.epoch: Optional[int] = None
        self.replicas: Dict[int, List[ShardClient]] = {}
        #: Per-hop retry policy for transient transport errors.
        self.retry = retry if retry is not None else RetryPolicy()
        #: The router's own lifecycle log (replica health transitions).
        self.event_log = events if events is not None else EventLog(capacity=1024)
        # Circuit-breaker state, keyed by client identity.  Absent =
        # alive; a replica only enters the map once marked dead.
        self._alive: Dict[int, bool] = {}
        self._handshake(expected_epoch)

    # --------------------------------------------------- replica health
    def is_alive(self, client: ShardClient) -> bool:
        return self._alive.get(id(client), True)

    def mark_dead(self, client: ShardClient, reason: str = "") -> None:
        """Open the circuit: skip this replica until a probe heals it."""
        if self.is_alive(client):
            self._alive[id(client)] = False
            self.event_log.emit(
                EV_REPLICA_MARKED_DEAD, endpoint=client.endpoint, reason=reason
            )

    def mark_alive(self, client: ShardClient) -> None:
        if not self.is_alive(client):
            self._alive[id(client)] = True
            self.event_log.emit(EV_REPLICA_MARKED_ALIVE, endpoint=client.endpoint)

    def probe(self, client: ShardClient) -> bool:
        """The half-open check: one cheap ``health`` op heals or confirms."""
        try:
            response = client.health()
        except (ShardUnavailable, OSError):
            self.mark_dead(client, reason="health probe failed")
            return False
        if response.get("ok"):
            self.mark_alive(client)
            return True
        return False

    def live_first(
        self, replicas: Sequence[ShardClient]
    ) -> List[ShardClient]:
        """Replicas reordered alive-first (dead ones last, as probes)."""
        ordered = sorted(
            replicas, key=lambda c: 0 if self.is_alive(c) else 1
        )
        return ordered

    def request_with_retry(
        self,
        client: ShardClient,
        body: dict,
        deadline_at: Optional[float] = None,
    ) -> dict:
        """One request with deterministic backoff on transport failures.

        Every backoff debits the query's global ``deadline_at`` budget
        (an exhausted budget raises ``DeadlineExpired``, never sleeps
        past it).  A replica that exhausts its retries is marked dead
        before the failure propagates; a success on a previously-dead
        replica heals it.
        """
        delays = list(self.retry.delays(client.endpoint))
        attempt = 0
        while True:
            try:
                response = client.request(body)
            except ShardUnavailable as exc:
                if attempt >= len(delays):
                    self.mark_dead(client, reason=str(exc))
                    raise
                self._sleep_with_budget(delays[attempt], deadline_at)
                attempt += 1
                continue
            self.mark_alive(client)
            return response

    @staticmethod
    def _sleep_with_budget(
        delay: float, deadline_at: Optional[float]
    ) -> None:
        """Back off without ever outliving the global deadline."""
        if deadline_at is not None:
            remaining = deadline_at - time.time()
            if remaining <= 0:
                raise DeadlineExpired(0.0)
            delay = min(delay, remaining)
        time.sleep(delay)
        if deadline_at is not None and time.time() >= deadline_at:
            raise DeadlineExpired(0.0)

    def _handshake(self, expected_epoch: Optional[int]) -> None:
        for client in self.clients:
            hello = client.hello()
            if not hello.get("ok"):
                raise RouterError(
                    f"shard {client.endpoint} rejected the handshake: "
                    f"{hello.get('message')}"
                )
            if hello.get("role") != "shard":
                raise RouterError(
                    f"node {client.endpoint} has no shard identity; start "
                    "it with --shard-index/--shard-count"
                )
            index = hello["shard_index"]
            count = hello["shard_count"]
            epoch = hello.get("epoch", 0)
            if self.shard_count is None:
                self.shard_count = count
                self.epoch = epoch if expected_epoch is None else expected_epoch
            if count != self.shard_count:
                raise RouterError(
                    f"shard {client.endpoint} thinks the deployment has "
                    f"{count} shards, not {self.shard_count}"
                )
            if epoch != self.epoch:
                raise RouterError(
                    f"shard {client.endpoint} is at epoch {epoch}, "
                    f"expected {self.epoch} — stale node from a previous "
                    "rollout?"
                )
            self.replicas.setdefault(index, []).append(client)
        missing = [
            i for i in range(self.shard_count) if i not in self.replicas
        ]
        if missing:
            raise RouterError(
                f"deployment of {self.shard_count} shards is missing "
                f"partitions {missing}"
            )

    # ------------------------------------------------------------------
    def register(self, name: str, **fields) -> List[dict]:
        """Register a graph on *every* node (each keeps its own slice).

        ``fields`` are the register op's wire fields (``dataset`` or
        ``edges``, plus ``relabel``/``replace``).  Every replica must
        hold the graph for failover to work, so registration is a
        broadcast, and any node failing fails the whole registration.
        """
        request = {"op": "register", "name": name, **fields}
        out = []
        for client in self.clients:
            response = client.request(request)
            if not response.get("ok"):
                _raise_remote(response, client.endpoint)
            out.append(response)
        return out

    def submit(
        self,
        pattern,
        graph: str,
        stream: bool = True,
        limit: Optional[int] = None,
        deadline: Optional[float] = None,
        config: Optional[dict] = None,
    ) -> RouterQuery:
        """Fan one query out to every partition; returns the merged handle.

        ``deadline`` (seconds) is the query's *global* budget: converted
        once to an absolute instant and forwarded verbatim on every hop
        — including failover resubmissions — so no hop restarts it.
        """
        deadline_at = time.time() + deadline if deadline is not None else None
        request: dict = {
            "op": "submit",
            "pattern": pattern,
            "graph": graph,
            "stream": stream,
        }
        if limit is not None:
            # Per-shard upper bound; the router enforces the global cap.
            request["limit"] = limit
        if deadline_at is not None:
            request["deadline_at"] = deadline_at
        if config is not None:
            request["config"] = config
        slices = self._submit_slices(request, deadline_at)
        return RouterQuery(
            self, request, slices, deadline_at, stream=stream, limit=limit
        )

    def submit_query(
        self,
        text: str,
        graph: str,
        limit: Optional[int] = None,
        deadline: Optional[float] = None,
        config: Optional[dict] = None,
    ) -> RouterQuery:
        """Fan one BENU-QL query out to every partition.

        The query text is lowered locally first, so syntax and semantic
        errors surface immediately as typed :class:`QueryError`\\ s
        (with line/column) without touching the network, and the merged
        handle knows its result shape: ``kind == "stream"`` drains
        through :meth:`RouterQuery.fetch`, while ``count``/``groups``
        block in :meth:`RouterQuery.result` — the router sums per-shard
        counts (and GROUP BY buckets) exactly, because shard slices
        partition the task space.  Each shard re-lowers the same text
        against its own slice, so the wire carries only the query string.
        """
        lowered = lower_query(text)
        stream = lowered.kind == "stream"
        deadline_at = time.time() + deadline if deadline is not None else None
        request: dict = {"op": "query", "text": text, "graph": graph}
        if limit is not None:
            request["limit"] = limit
        if deadline_at is not None:
            request["deadline_at"] = deadline_at
        if config is not None:
            request["config"] = config
        slices = self._submit_slices(request, deadline_at)
        return RouterQuery(
            self,
            request,
            slices,
            deadline_at,
            stream=stream,
            limit=limit,
            kind=lowered.kind,
            columns=lowered.columns,
        )

    def _submit_slices(
        self, request: dict, deadline_at: Optional[float]
    ) -> List[_Slice]:
        """Submit ``request`` to one live replica of every partition."""
        slices = []
        for index in range(self.shard_count):
            s = _Slice(index, self.replicas[index])
            submitted = False
            for replica in self.live_first(s.replicas):
                if not self.is_alive(replica) and not self.probe(replica):
                    continue
                try:
                    response = self.request_with_retry(
                        replica, request, deadline_at=deadline_at
                    )
                except ShardUnavailable:
                    continue
                if not response.get("ok"):
                    _raise_remote(response, replica.endpoint)
                s.client = replica
                s.query_id = response["query"]
                submitted = True
                break
            if not submitted:
                raise ShardUnavailable(
                    f"partition {index} has no live replica to submit to"
                )
            slices.append(s)
        return slices

    # ------------------------------------------------------- observability
    def _fanout(self, request: dict) -> Dict[str, dict]:
        """Send one request to every live node, keyed by endpoint."""
        out: Dict[str, dict] = {}
        for client in self.clients:
            try:
                out[client.endpoint] = client.request(request)
            except ShardUnavailable:
                out[client.endpoint] = {"ok": False, "error": "shard_unavailable"}
        return out

    def stats(self) -> dict:
        """Per-node service stats plus the deployment's shape and health."""
        return {
            "shard_count": self.shard_count,
            "epoch": self.epoch,
            "replicas": {
                client.endpoint: ("alive" if self.is_alive(client) else "dead")
                for client in self.clients
            },
            "nodes": {
                endpoint: response.get("stats", response)
                for endpoint, response in self._fanout({"op": "stats"}).items()
            },
        }

    def metrics(self) -> dict:
        """All shards' registries merged with shard provenance labels."""
        by_shard = {}
        for client in self.clients:
            try:
                response = client.request({"op": "metrics", "format": "json"})
            except ShardUnavailable:
                continue
            if response.get("ok"):
                by_shard[client.endpoint] = response["metrics"]
        return merge_registry_dicts(by_shard, label="shard")

    def events(self, **filters) -> List[dict]:
        """Every shard's event log stitched into one global timeline.

        The router's own events (replica health transitions) join the
        stitched timeline under the source key ``"router"``.
        """
        by_shard: Dict[object, list] = {}
        for client in self.clients:
            try:
                response = client.request({"op": "events", **filters})
            except ShardUnavailable:
                continue
            if response.get("ok"):
                by_shard[client.endpoint] = response["events"]
        router_rows = self.events_local(**filters)
        if router_rows:
            by_shard["router"] = router_rows
        return stitch_event_dicts(by_shard, label="shard")

    def events_local(self, **filters) -> List[dict]:
        """The router's own event rows (same filters as the events op)."""
        return self.event_log.as_dicts(
            type=filters.get("type"),
            query_id=filters.get("query"),
            limit=filters.get("limit"),
        )

    # ------------------------------------------------------------------
    def shutdown(self) -> Dict[str, dict]:
        """Ask every node to shut down (best effort)."""
        return self._fanout({"op": "shutdown"})

    def close(self) -> None:
        for client in self.clients:
            client.close()
