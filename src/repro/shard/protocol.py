"""Client-facing wire protocol of the router (``benu route``).

Speaks the same line-delimited JSON dialect as a single node
(:mod:`repro.service.protocol`), so existing clients point at the
router unchanged — ``submit``/``poll``/``cancel`` behave identically,
with the fan-out and merge hidden behind one endpoint.  Router-specific
surface: ``hello`` answers with ``role: "router"`` and the deployment
shape, ``stats``/``metrics``/``events`` return cluster-wide
aggregations, and ``shutdown`` is broadcast to every shard.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Dict, Optional, TextIO

from ..engine.control import ExecutionInterrupted
from ..lang.errors import QueryError
from ..service.errors import InvalidQueryError, ServiceError
from ..service.protocol import CAPABILITIES, PROTOCOL_VERSION
from .router import RouterQuery, ShardRouter


class RouterProtocol:
    """One JSON request in, one response out, against a ShardRouter."""

    def __init__(self, router: ShardRouter) -> None:
        self.router = router
        self.shutdown_requested = False
        self._queries: Dict[str, RouterQuery] = {}
        self._next_id = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> dict:
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise InvalidQueryError(f"bad JSON: {exc}") from exc
            if not isinstance(request, dict) or "op" not in request:
                raise InvalidQueryError('requests are objects with an "op" field')
            op = request["op"]
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise InvalidQueryError(f"unknown op {op!r}")
            response = handler(request)
            response.setdefault("ok", True)
            return response
        except QueryError as exc:
            response = {"ok": False, "error": exc.code, "message": str(exc)}
            if exc.line is not None:
                response["line"] = exc.line
                response["column"] = exc.column
            snippet = exc.snippet()
            if snippet:
                response["snippet"] = snippet
            return response
        except ServiceError as exc:
            return {"ok": False, "error": exc.code, "message": str(exc)}
        except ExecutionInterrupted as exc:
            return {"ok": False, "error": exc.status, "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 — protocol boundary
            return {"ok": False, "error": "internal", "message": str(exc)}

    def handle_line_json(self, line: str) -> str:
        return json.dumps(self.handle_line(line))

    def _query(self, request: dict) -> RouterQuery:
        query_id = str(request.get("query"))
        with self._lock:
            query = self._queries.get(query_id)
        if query is None:
            raise InvalidQueryError(f"unknown router query {query_id!r}")
        return query

    # ------------------------------------------------------------------ ops
    def _op_hello(self, request: dict) -> dict:
        asked = int(request.get("version", 1))
        return {
            "version": min(asked, PROTOCOL_VERSION),
            "server_version": PROTOCOL_VERSION,
            "role": "router",
            "shard_count": self.router.shard_count,
            "epoch": self.router.epoch,
            "capabilities": list(CAPABILITIES),
        }

    def _op_register(self, request: dict) -> dict:
        name = request.get("name")
        if not isinstance(name, str) or not name:
            raise InvalidQueryError('"name" is required')
        fields = {
            k: v for k, v in request.items() if k not in ("op", "name")
        }
        responses = self.router.register(name, **fields)
        return {"graph": name, "shards": responses}

    def _op_submit(self, request: dict) -> dict:
        query = self.router.submit(
            request.get("pattern"),
            request.get("graph", ""),
            stream=bool(request.get("stream", True)),
            limit=request.get("limit"),
            deadline=request.get("deadline"),
            config=request.get("config"),
        )
        with self._lock:
            self._next_id += 1
            query_id = f"r-{self._next_id}"
            self._queries[query_id] = query
        return {
            "query": query_id,
            "status": "running",
            "shards": {
                str(k): v for k, v in query.query_ids.items()
            },
        }

    def _op_query(self, request: dict) -> dict:
        text = request.get("text")
        if not isinstance(text, str) or not text.strip():
            raise InvalidQueryError('"text" must be a non-empty BENU-QL string')
        query = self.router.submit_query(
            text,
            request.get("graph", ""),
            limit=request.get("limit"),
            deadline=request.get("deadline"),
            config=request.get("config"),
        )
        with self._lock:
            self._next_id += 1
            query_id = f"r-{self._next_id}"
            self._queries[query_id] = query
        return {
            "query": query_id,
            "status": "running",
            "kind": query.kind,
            "columns": list(query.columns or ()),
            "shards": {str(k): v for k, v in query.query_ids.items()},
        }

    def _op_poll(self, request: dict) -> dict:
        query = self._query(request)
        if query.stream:
            page = query.fetch(limit=int(request.get("limit", 256)))
            return {
                "matches": [list(m) for m in page.matches],
                "cursor": page.cursor,
                "done": page.done,
            }
        result = query.result()  # blocks until every shard finishes
        return {"done": True, **result}

    def _op_cancel(self, request: dict) -> dict:
        query = self._query(request)
        query.cancel()
        return {"query": str(request.get("query")), "status": "cancelled"}

    def _op_health(self, request: dict) -> dict:
        return {
            "status": "serving",
            "role": "router",
            "shard_count": self.router.shard_count,
        }

    def _op_stats(self, request: dict) -> dict:
        return {"stats": self.router.stats()}

    def _op_metrics(self, request: dict) -> dict:
        return {"metrics": self.router.metrics()}

    def _op_events(self, request: dict) -> dict:
        filters = {
            k: v for k, v in request.items() if k in ("type", "query", "limit")
        }
        return {"events": self.router.events(**filters)}

    def _op_shutdown(self, request: dict) -> dict:
        if request.get("shards"):
            self.router.shutdown()
        self.shutdown_requested = True
        return {"bye": True}


def route_stdio(
    router: ShardRouter,
    in_stream: Optional[TextIO] = None,
    out_stream: Optional[TextIO] = None,
) -> int:
    """Serve the router protocol over stdio until EOF or shutdown."""
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    protocol = RouterProtocol(router)
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        out_stream.write(protocol.handle_line_json(line) + "\n")
        out_stream.flush()
        if protocol.shutdown_requested:
            break
    return 0
