"""One shard of a sharded BENU deployment.

A :class:`ShardNode` is a full :class:`~repro.service.BenuService` bound
to a :class:`~repro.service.protocol.ShardIdentity` — shard *i* of *N*,
at deployment ``epoch`` *e*.  It answers the same wire protocol as a
single-node service; the identity changes exactly two things:

* ``hello`` reports the shard's slot, so a router can verify it is
  talking to the deployment it thinks it is;
* ``register`` partitions every graph by the identity's hash rule, so
  the node enumerates only its owned start-vertex slice of the task
  space (the existing plan and engine run unchanged over it).

Replication is nothing special: two nodes constructed with the *same*
``shard_index`` hold identical slices, and a router may send either one
a partition's work — that is the failover unit.
"""

from __future__ import annotations

from typing import Optional

from ..graph.graph import Graph
from ..service.protocol import (
    ServiceProtocol,
    ShardIdentity,
    serve_socket,
)
from ..service.service import BenuService


class ShardNode:
    """A BenuService wearing one shard's identity."""

    def __init__(
        self,
        shard_index: int,
        shard_count: int,
        epoch: int = 0,
        service: Optional[BenuService] = None,
        **service_kwargs,
    ) -> None:
        self.identity = ShardIdentity(
            shard_index=shard_index, shard_count=shard_count, epoch=epoch
        )
        self.service = (
            service if service is not None else BenuService(**service_kwargs)
        )

    # ------------------------------------------------------------------
    def protocol(self) -> ServiceProtocol:
        """A wire-protocol handler bound to this node's identity."""
        return ServiceProtocol(self.service, identity=self.identity)

    def register_graph(
        self, name: str, graph: Graph, relabel: bool = True,
        replace: bool = False,
    ) -> dict:
        """Register ``graph``, keeping only this shard's task slice."""
        return self.service.register_graph(
            name,
            graph,
            relabel=relabel,
            replace=replace,
            partition=self.identity.partition_info(),
        )

    def health(self) -> dict:
        """The cheap liveness summary the ``health`` op answers with."""
        return self.protocol().health()

    def serve_socket(self, host: str = "127.0.0.1", port: int = 0):
        """A bound TCP server for this shard; caller runs serve_forever."""
        return serve_socket(
            self.service, host=host, port=port, identity=self.identity
        )

    def close(self) -> None:
        self.service.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = self.identity
        return (
            f"ShardNode(shard {ident.shard_index}/{ident.shard_count}, "
            f"epoch {ident.epoch})"
        )
