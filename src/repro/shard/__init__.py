"""Sharded serving: partitioned shard nodes and a fan-out/merge router.

BENU's execution model is one independent local-search task per data
vertex, which makes the serving tier embarrassingly shardable: partition
the *task space* by a hash rule over start vertices and every shard runs
the unchanged plan/engine over its slice.  This package provides the
three layers of that deployment:

* :class:`ShardNode` — a full query service wearing one shard's
  identity; registration keeps only the owned start-vertex slice
  (:class:`~repro.storage.partition.GraphPartitioner` is the underlying
  splitter).
* :class:`ShardRouter` + :class:`RouterQuery` — the front-end: fans a
  query out to one replica per partition, merges the backpressured
  result streams into one deterministic client stream, enforces a
  single global deadline budget across all hops, retries a dead shard's
  slice once on a live replica, and aggregates telemetry.
* :class:`RouterProtocol` — the same wire dialect a single node speaks,
  so clients point at ``benu route`` unchanged.

Correctness contract: shard match sets are disjoint and union to the
single-node match set; instruction/kernel counters sum exactly to the
single-node totals (per-task instruction execution is deterministic).
"""

from .client import (
    LocalShardClient,
    RetryPolicy,
    ShardClient,
    ShardError,
    ShardUnavailable,
    TCPShardClient,
)
from .node import ShardNode
from .protocol import RouterProtocol, route_stdio
from .router import (
    RouterError,
    RouterFetchResult,
    RouterQuery,
    ShardRouter,
)

__all__ = [
    "LocalShardClient",
    "RetryPolicy",
    "RouterError",
    "RouterFetchResult",
    "RouterProtocol",
    "RouterQuery",
    "ShardClient",
    "ShardError",
    "ShardNode",
    "ShardRouter",
    "ShardUnavailable",
    "TCPShardClient",
    "route_stdio",
]
