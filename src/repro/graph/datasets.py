"""Synthetic stand-ins for the paper's real-world data graphs.

The paper evaluates on five SNAP/LAW graphs (Table I): as-Skitter (as),
LiveJournal (lj), Orkut (ok), uk-2002 (uk) and FriendSter (fs), ranging
from 11 M to 1.8 G edges.  Those downloads are unavailable here and far
beyond a pure-Python hot loop, so each dataset is replaced by a seeded
Chung–Lu power-law graph whose *relative* size and degree skew mirror the
original (DESIGN.md §2 documents the substitution argument).

Every stand-in is relabeled by the (degree, id) total order at construction,
so symmetry-breaking filters compile to plain integer comparisons.

Datasets are deterministic: same name → identical graph in every process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from .generators import chung_lu, largest_connected_component
from .graph import Graph
from .order import relabel_by_degree_order


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in dataset."""

    name: str
    paper_name: str
    num_vertices: int
    average_degree: float
    exponent: float
    seed: int

    @property
    def description(self) -> str:
        return (
            f"{self.name}: Chung-Lu(n={self.num_vertices}, "
            f"avg_deg={self.average_degree}, gamma={self.exponent}) "
            f"standing in for {self.paper_name}"
        )


#: Relative scale mirrors Table I: as < lj < ok < uk < fs by edge count,
#: with uk the most skewed (its Δ/|E| ratio is the largest in Table I).
DATASET_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("as_sim", "as-Skitter", 2400, 7.0, 2.5, 101),
        DatasetSpec("lj_sim", "LiveJournal", 4200, 10.0, 2.4, 102),
        DatasetSpec("ok_sim", "Orkut", 3200, 16.0, 2.4, 103),
        DatasetSpec("uk_sim", "uk-2002", 7000, 9.0, 2.2, 104),
        DatasetSpec("fs_sim", "FriendSter", 9000, 10.0, 2.5, 105),
    )
}

#: Dataset order used by Table I / Table V benchmarks.
DATASET_ORDER: Tuple[str, ...] = ("as_sim", "lj_sim", "ok_sim", "uk_sim", "fs_sim")


@lru_cache(maxsize=None)
def load_dataset(name: str) -> Graph:
    """Build (and memoize) the stand-in data graph ``name``.

    The graph is connected (largest component of the Chung–Lu draw) and
    relabeled so vertex ids realize the (degree, id) total order ≺.
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        known = ", ".join(DATASET_ORDER)
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None
    raw = chung_lu(
        spec.num_vertices,
        spec.average_degree,
        exponent=spec.exponent,
        seed=spec.seed,
    )
    core = largest_connected_component(raw)
    relabeled, _ = relabel_by_degree_order(core)
    return relabeled


@lru_cache(maxsize=None)
def tiny_dataset(seed: int = 7, num_vertices: int = 300, average_degree: float = 6.0) -> Graph:
    """A small power-law graph for tests and quick examples."""
    raw = chung_lu(num_vertices, average_degree, seed=seed)
    core = largest_connected_component(raw)
    relabeled, _ = relabel_by_degree_order(core)
    return relabeled
