"""The total order ≺ on data-graph vertices used by symmetry breaking.

The paper (Section II-A) adopts the total order of Lai et al. (SEED,
PVLDB'16): vertices are compared first by degree and then by id, i.e.

    u ≺ v  ⇔  d(u) < d(v)  ∨  (d(u) = d(v) ∧ id(u) < id(v)).

Symmetry-breaking conditions in execution plans compare data vertices under
this order.  To keep the hot loop cheap, we *relabel* the data graph once so
that the total order coincides with the natural integer order on the new ids
— afterwards every ≺-comparison in a filter is a plain ``<`` on ints, which
is what the plan code generator emits.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .graph import Graph, Vertex


def degree_order_key(graph: Graph, v: Vertex) -> Tuple[int, int]:
    """Sort key realizing the (degree, id) total order ≺."""
    return (graph.degree(v), v)


def precedes(graph: Graph, u: Vertex, v: Vertex) -> bool:
    """True iff ``u ≺ v`` under the (degree, id) total order."""
    return degree_order_key(graph, u) < degree_order_key(graph, v)


def degree_order_relabeling(graph: Graph) -> Dict[Vertex, Vertex]:
    """Mapping old-id → new-id such that new ids follow ≺.

    New ids are consecutive integers starting at 0, assigned in ascending
    (degree, id) order, so ``new(u) < new(v) ⇔ u ≺ v``.
    """
    ranked = sorted(graph.vertices, key=lambda v: degree_order_key(graph, v))
    return {old: new for new, old in enumerate(ranked)}


def relabel_by_degree_order(graph: Graph) -> Tuple[Graph, Dict[Vertex, Vertex]]:
    """Relabel ``graph`` so integer order realizes ≺.

    Returns
    -------
    (relabeled_graph, mapping):
        ``mapping`` maps original ids to new ids; invert it to translate
        matches back to original ids.
    """
    mapping = degree_order_relabeling(graph)
    return graph.relabel(mapping), mapping


def invert_mapping(mapping: Dict[Vertex, Vertex]) -> Dict[Vertex, Vertex]:
    """Invert an injective relabeling mapping."""
    return {new: old for old, new in mapping.items()}
