"""Edge-list I/O for data graphs.

The SNAP datasets the paper uses ship as whitespace-separated edge lists
with ``#`` comments; we read and write the same format so real datasets can
be dropped in if available.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterable, Iterator, TextIO, Tuple, Union

from .graph import Edge, Graph

PathLike = Union[str, Path]


def iter_edge_list(stream: TextIO) -> Iterator[Edge]:
    """Yield edges from a SNAP-style edge-list stream.

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped; self loops are dropped (the paper's model is simple graphs).
    """
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected two vertex ids, got {line!r}")
        u, v = int(parts[0]), int(parts[1])
        if u != v:
            yield (u, v)


def read_edge_list(path: PathLike) -> Graph:
    """Load a graph from a SNAP-style edge-list file."""
    with open(path, "r", encoding="utf-8") as fh:
        return Graph(iter_edge_list(fh))


def parse_edge_list(text: str) -> Graph:
    """Load a graph from edge-list text (convenience for tests/examples)."""
    return Graph(iter_edge_list(io.StringIO(text)))


def write_edge_list(graph: Graph, path: PathLike, header: str = "") -> None:
    """Write a graph as a canonical sorted edge list."""
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for u, v in graph.edges():
            fh.write(f"{u}\t{v}\n")


def format_edge_list(edges: Iterable[Edge]) -> str:
    """Render edges as edge-list text."""
    return "".join(f"{u}\t{v}\n" for u, v in edges)


def iter_label_list(stream: TextIO) -> Iterator[Tuple[int, str]]:
    """Yield ``(vertex, label)`` pairs from a label-list stream.

    Same conventions as the edge lists: whitespace-separated columns,
    ``#``/``%`` comments, blank lines skipped.  The label is the second
    column, kept verbatim as a string.
    """
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(
                f"line {lineno}: expected 'vertex label', got {line!r}"
            )
        yield int(parts[0]), parts[1]


def read_label_list(path: PathLike) -> Dict[int, str]:
    """Load a ``vertex label`` file into a vertex→label mapping."""
    with open(path, "r", encoding="utf-8") as fh:
        return dict(iter_label_list(fh))
