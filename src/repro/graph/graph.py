"""Undirected, unlabeled simple graphs.

The :class:`Graph` class is the shared substrate for both data graphs and
pattern graphs.  It stores the adjacency structure as a dictionary mapping
each vertex id to a ``frozenset`` of neighbor ids.  Frozensets give the two
operations the BENU hot loop lives on — membership tests and intersections —
their C-level speed, and make adjacency sets safe to share between caches,
workers and plans without defensive copying.

Vertices are arbitrary hashable integers.  The module enforces the paper's
graph model (Section II-A): undirected, no self loops, no parallel edges.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

Vertex = int
Edge = Tuple[int, int]


class GraphError(ValueError):
    """Raised when an operation would violate the simple-graph model."""


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (min, max) form of an undirected edge.

    >>> normalize_edge(3, 1)
    (1, 3)
    """
    if u == v:
        raise GraphError(f"self loop ({u}, {v}) is not allowed in a simple graph")
    return (u, v) if u < v else (v, u)


class Graph:
    """An immutable undirected simple graph.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicates (in either orientation)
        collapse to a single edge.
    vertices:
        Optional extra vertices to include even if isolated.

    Examples
    --------
    >>> g = Graph([(1, 2), (2, 3), (1, 3)])
    >>> g.num_vertices, g.num_edges
    (3, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    """

    __slots__ = (
        "_adj",
        "_num_edges",
        "_vertices",
        "_sorted_adj",
        "_degree_seq",
        "_csr",
    )

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        vertices: Iterable[Vertex] = (),
    ) -> None:
        adj: Dict[Vertex, set] = {v: set() for v in vertices}
        num_edges = 0
        for u, v in edges:
            u, v = normalize_edge(u, v)
            if u not in adj:
                adj[u] = set()
            if v not in adj:
                adj[v] = set()
            if v not in adj[u]:
                adj[u].add(v)
                adj[v].add(u)
                num_edges += 1
        self._adj: Dict[Vertex, FrozenSet[Vertex]] = {
            v: frozenset(nbrs) for v, nbrs in adj.items()
        }
        self._num_edges = num_edges
        self._vertices: Tuple[Vertex, ...] = tuple(sorted(self._adj))
        # Lazily built, immutable-graph caches (the class never mutates
        # after __init__): sorted adjacency rows, the degree sequence, and
        # the packed CSR form.
        self._sorted_adj: Dict[Vertex, Tuple[Vertex, ...]] = {}
        self._degree_seq: Optional[List[int]] = None
        self._csr = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``N = |V(G)|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """``M = |E(G)|``."""
        return self._num_edges

    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        """All vertices, sorted ascending."""
        return self._vertices

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        """The adjacency set Γ(v).  Raises ``KeyError`` for unknown vertices."""
        return self._adj[v]

    def degree(self, v: Vertex) -> int:
        """``d(v) = |Γ(v)|``."""
        return len(self._adj[v])

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def sorted_neighbors(self, v: Vertex) -> Tuple[Vertex, ...]:
        """Γ(v) sorted ascending, cached (the graph is immutable)."""
        cached = self._sorted_adj.get(v)
        if cached is None:
            cached = tuple(sorted(self._adj[v]))
            self._sorted_adj[v] = cached
        return cached

    def edges(self) -> Iterator[Edge]:
        """Iterate edges in canonical (min, max) orientation, sorted."""
        for u in self._vertices:
            for v in self.sorted_neighbors(u):
                if u < v:
                    yield (u, v)

    def adjacency(self) -> Dict[Vertex, FrozenSet[Vertex]]:
        """The underlying adjacency mapping (shared, not copied)."""
        return self._adj

    def csr(self):
        """The packed CSR form of this graph's adjacency, built once.

        Returns a :class:`repro.graph.csr.CSRAdjacency`; see that module
        for the layout and the hot-loop operations it enables.
        """
        if self._csr is None:
            from .csr import CSRAdjacency

            self._csr = CSRAdjacency.from_graph(self)
        return self._csr

    def memory_bytes(self, backend: str = "frozenset") -> int:
        """Estimated adjacency footprint under the given backend.

        ``csr`` is exact (8 bytes per stored id plus the offset index);
        ``frozenset`` approximates CPython's per-object costs: a dict slot
        plus a frozenset header per vertex and a hash slot plus a boxed
        int per neighbor entry.
        """
        if backend == "csr":
            n, m2 = self.num_vertices, 2 * self._num_edges
            return 8 * (n + (n + 1) + m2)
        if backend == "frozenset":
            # 64B frozenset header + dict entry per vertex; 8B hash slot
            # (at ~3x load-factor headroom) + 28B boxed int per endpoint.
            n, m2 = self.num_vertices, 2 * self._num_edges
            return 104 * n + 52 * m2
        raise GraphError(f"unknown adjacency backend {backend!r}")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertex_set: Iterable[Vertex]) -> "Graph":
        """The induced subgraph g(V') of Definition in Section II-A."""
        keep = {v for v in vertex_set if v in self._adj}
        edges = [
            (u, v)
            for u in keep
            for v in self._adj[u]
            if v in keep and u < v
        ]
        return Graph(edges, vertices=keep)

    def relabel(self, mapping: Dict[Vertex, Vertex]) -> "Graph":
        """Return a copy with every vertex ``v`` renamed to ``mapping[v]``.

        The mapping must be injective over ``self.vertices``.
        """
        image = [mapping[v] for v in self._vertices]
        if len(set(image)) != len(image):
            raise GraphError("relabel mapping is not injective")
        edges = [(mapping[u], mapping[v]) for u, v in self.edges()]
        return Graph(edges, vertices=image)

    def degree_sequence(self) -> List[int]:
        """Degrees sorted descending (graph invariant, computed once)."""
        if self._degree_seq is None:
            self._degree_seq = sorted(
                (len(n) for n in self._adj.values()), reverse=True
            )
        return list(self._degree_seq)

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------
    def connected_components(self) -> List[FrozenSet[Vertex]]:
        """All connected components as frozensets of vertices."""
        seen: set = set()
        components: List[FrozenSet[Vertex]] = []
        for start in self._vertices:
            if start in seen:
                continue
            stack = [start]
            comp = {start}
            seen.add(start)
            while stack:
                u = stack.pop()
                for w in self._adj[u]:
                    if w not in comp:
                        comp.add(w)
                        seen.add(w)
                        stack.append(w)
            components.append(frozenset(comp))
        return components

    def is_connected(self) -> bool:
        """True iff the graph has exactly one connected component."""
        return len(self.connected_components()) == 1 if self._adj else True

    def bfs_hops(self, source: Vertex) -> Dict[Vertex, int]:
        """Hop distances from ``source`` to every reachable vertex."""
        dist = {source: 0}
        frontier = [source]
        hops = 0
        while frontier:
            hops += 1
            nxt: List[Vertex] = []
            for u in frontier:
                for w in self._adj[u]:
                    if w not in dist:
                        dist[w] = hops
                        nxt.append(w)
            frontier = nxt
        return dist

    def eccentricity(self, v: Vertex) -> int:
        """Max hop distance from ``v`` (within its component)."""
        return max(self.bfs_hops(v).values(), default=0)

    def radius(self) -> int:
        """min over vertices of eccentricity — bounds BENU task locality."""
        if not self._adj:
            return 0
        return min(self.eccentricity(v) for v in self._vertices)

    def r_hop_neighborhood(self, v: Vertex, r: int) -> FrozenSet[Vertex]:
        """γ^r(v): vertices at most ``r`` hops from ``v`` (Section V-A)."""
        if r < 0:
            raise GraphError("r must be non-negative")
        return frozenset(u for u, d in self.bfs_hops(v).items() if d <= r)

    def neighborhood_size(self, v: Vertex, r: int) -> int:
        """S^r(v) = Σ_{w ∈ γ^r(v)} d(w) (Section V-A complexity bound)."""
        return sum(len(self._adj[w]) for w in self.r_hop_neighborhood(v, r))

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:
        return hash(frozenset((v, nbrs) for v, nbrs in self._adj.items()))

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"


def complete_graph(n: int, offset: int = 1) -> Graph:
    """The n-clique on vertices ``offset .. offset+n-1``."""
    vs = range(offset, offset + n)
    return Graph([(u, v) for u in vs for v in vs if u < v], vertices=vs)


def cycle_graph(n: int, offset: int = 1) -> Graph:
    """The n-cycle C_n (n >= 3)."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    vs = list(range(offset, offset + n))
    return Graph([(vs[i], vs[(i + 1) % n]) for i in range(n)])


def path_graph(n: int, offset: int = 1) -> Graph:
    """The n-vertex path P_n."""
    vs = list(range(offset, offset + n))
    return Graph(
        [(vs[i], vs[i + 1]) for i in range(n - 1)],
        vertices=vs,
    )


def star_graph(leaves: int, offset: int = 1) -> Graph:
    """A star: one hub (first vertex) with ``leaves`` spokes."""
    hub = offset
    return Graph([(hub, hub + i) for i in range(1, leaves + 1)], vertices=[hub])


def union_graphs(graphs: Sequence[Graph]) -> Graph:
    """Disjoint-content union (vertex ids must already be disjoint or shared)."""
    edges: List[Edge] = []
    vertices: List[Vertex] = []
    for g in graphs:
        edges.extend(g.edges())
        vertices.extend(g.vertices)
    return Graph(edges, vertices=vertices)
