"""Random graph generators.

Three families are needed by the reproduction:

* Erdős–Rényi G(n, p) — the cardinality model behind plan cost estimation
  and a sanity substrate for tests.
* Chung–Lu power-law graphs — the stand-ins for the paper's real-world data
  graphs (as-Skitter, LiveJournal, Orkut, uk-2002, FriendSter), whose
  power-law degree skew drives every locality/skew effect the paper measures.
* Random *connected* pattern graphs — Exp-1 evaluates plan generation on
  1000 random connected graphs per size.

All generators take an explicit seed and are deterministic.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from .graph import Edge, Graph, GraphError


def erdos_renyi(n: int, p: float, seed: int = 0, offset: int = 0) -> Graph:
    """G(n, p): each of the C(n,2) edges present independently with prob p."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability {p} outside [0, 1]")
    rng = random.Random(seed)
    vs = range(offset, offset + n)
    edges = [
        (u, v)
        for u in vs
        for v in range(u + 1, offset + n)
        if rng.random() < p
    ]
    return Graph(edges, vertices=vs)


def chung_lu(
    n: int,
    average_degree: float,
    exponent: float = 2.5,
    seed: int = 0,
    min_weight: float = 1.0,
) -> Graph:
    """A Chung–Lu power-law graph.

    Vertex weights follow a Pareto-style distribution ``w_i ∝ (i+1)^(-1/(γ-1))``
    with exponent ``γ``; edge (u, v) appears with probability
    ``min(1, w_u * w_v / Σw)``.  The realized degree distribution is heavy
    tailed like the SNAP graphs the paper uses.

    The naive O(n²) coin-flip is avoided with the standard weight-sorted
    skipping construction (Miller & Hagberg 2011), so million-edge graphs
    stay feasible in Python.
    """
    if n <= 1:
        return Graph(vertices=range(n))
    if exponent <= 1.0:
        raise GraphError("power-law exponent must exceed 1")
    rng = random.Random(seed)
    # Weights sorted descending; scaled so the expected average degree matches.
    raw = [(i + 1.0) ** (-1.0 / (exponent - 1.0)) for i in range(n)]
    scale = average_degree * n / sum(raw)
    weights = [max(min_weight, w * scale) for w in raw]
    total = sum(weights)

    edges: List[Edge] = []
    for u in range(n - 1):
        v = u + 1
        wu = weights[u]
        if wu <= 0:
            continue
        p = min(1.0, wu * weights[v] / total)
        while v < n and p > 0:
            if p < 1.0:
                # Geometric skip over vertices that fail the coin flip.
                r = rng.random()
                v += int(math.log(r) / math.log(1.0 - p))
            if v < n:
                q = min(1.0, wu * weights[v] / total)
                if rng.random() < q / p:
                    edges.append((u, v))
                p = q
                v += 1
    return Graph(edges, vertices=range(n))


def random_connected_graph(
    n: int,
    extra_edge_prob: float = 0.3,
    seed: int = 0,
    offset: int = 1,
) -> Graph:
    """A uniformly-seeded random *connected* graph on ``n`` vertices.

    Construction: a random spanning tree (random attachment) plus each
    remaining pair independently with probability ``extra_edge_prob``.
    Used by the Exp-1 benchmark, which evaluates plan-generation on random
    connected pattern graphs.
    """
    if n < 1:
        raise GraphError("need at least one vertex")
    rng = random.Random(seed)
    vs = list(range(offset, offset + n))
    edges: List[Edge] = []
    for i in range(1, n):
        parent = vs[rng.randrange(i)]
        edges.append((parent, vs[i]))
    for i in range(n):
        for j in range(i + 1, n):
            u, v = vs[i], vs[j]
            if rng.random() < extra_edge_prob:
                edges.append((u, v))
    return Graph(edges, vertices=vs)


def random_graph_with_degree_sequence_hint(
    n: int, target_edges: int, seed: int = 0
) -> Graph:
    """A simple uniform random graph with approximately ``target_edges`` edges."""
    max_edges = n * (n - 1) // 2
    if target_edges > max_edges:
        raise GraphError(
            f"cannot place {target_edges} edges in a {n}-vertex simple graph"
        )
    rng = random.Random(seed)
    chosen = set()
    while len(chosen) < target_edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            chosen.add((min(u, v), max(u, v)))
    return Graph(sorted(chosen), vertices=range(n))


def ensure_connected(graph: Graph, seed: int = 0) -> Graph:
    """Connect a possibly-disconnected graph by linking its components.

    Each component after the first gets one random edge to a vertex in the
    growing connected part.  Degree distribution is essentially preserved.
    """
    components = graph.connected_components()
    if len(components) <= 1:
        return graph
    rng = random.Random(seed)
    edges = list(graph.edges())
    anchor_pool: List[int] = list(components[0])
    for comp in components[1:]:
        u = rng.choice(anchor_pool)
        v = rng.choice(sorted(comp))
        edges.append((u, v))
        anchor_pool.extend(comp)
    return Graph(edges, vertices=graph.vertices)


def largest_connected_component(graph: Graph) -> Graph:
    """The induced subgraph on the largest connected component."""
    components = graph.connected_components()
    if not components:
        return graph
    biggest = max(components, key=len)
    return graph.induced_subgraph(biggest)


def sample_pattern_graphs(
    n: int, count: int, seed: int = 0, extra_edge_prob: Optional[float] = None
) -> Sequence[Graph]:
    """``count`` random connected pattern graphs on ``n`` vertices (Exp-1)."""
    rng = random.Random(seed)
    graphs = []
    for _ in range(count):
        p = extra_edge_prob if extra_edge_prob is not None else rng.uniform(0.1, 0.6)
        graphs.append(random_connected_graph(n, p, seed=rng.randrange(2**31)))
    return graphs
