"""The pattern graphs used throughout the paper's evaluation.

The paper's Fig. 6 shows nine pattern graphs q1–q9 plus the running-example
pattern of Fig. 1(a).  The figure images are not recoverable from the text,
so the edge sets below are reconstructions consistent with every textual
constraint (see DESIGN.md §2):

* q1–q4 have five vertices, q5 has five, q6–q9 have six;
* q7–q9 share the *chordal square* core structure (a 4-cycle plus one
  diagonal — the bold edges of Fig. 6);
* each pattern admits the vertex cover the VCBC discussion requires;
* the Fig. 1(a) demo pattern has six vertices, an automorphism swapping
  u3 ↔ u5 (giving the partial order u3 < u5), and vertex cover {u1, u3, u5}
  as the first three vertices of the matching order u1, u3, u5, u2, u6, u4.

Pattern vertices are numbered 1..n matching the paper's u_1..u_n notation.
"""

from __future__ import annotations

from typing import Dict, List

from .graph import Graph, complete_graph, cycle_graph

# Core structures -------------------------------------------------------

#: The triangle (3-clique) — column Δ in Table I.
TRIANGLE = complete_graph(3)

#: The 4-clique — the ⊠ column of Table I.
CLIQUE4 = complete_graph(4)

#: The 5-clique, used in the BiGJoin comparison (Table VI).
CLIQUE5 = complete_graph(5)

#: The chordal square: a 4-cycle with one diagonal.  The shared core of
#: q7–q9 and the last column of Table I ("more than 2 billion matches").
CHORDAL_SQUARE = Graph([(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)])

#: The plain square (4-cycle).
SQUARE = cycle_graph(4)


# Five-vertex patterns q1–q5 --------------------------------------------

#: q1: the house — a 5-cycle with one chord (5 vertices, 6 edges).
Q1 = Graph([(1, 2), (2, 3), (3, 4), (4, 5), (5, 1), (2, 5)])

#: q2: tailed square — a 4-cycle with a pendant vertex (5 vertices, 5 edges).
Q2 = Graph([(1, 2), (2, 3), (3, 4), (4, 1), (4, 5)])

#: q3: tailed 4-clique — K4 plus a pendant (5 vertices, 7 edges).
Q3 = Graph([(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (4, 5)])

#: q4: the gem — a 4-path plus a dominating vertex (5 vertices, 7 edges).
Q4 = Graph([(1, 2), (2, 3), (3, 4), (5, 1), (5, 2), (5, 3), (5, 4)])

#: q5: the 5-cycle C5 (5 vertices, 5 edges).
Q5 = cycle_graph(5)


# Six-vertex patterns q6–q9 ---------------------------------------------

#: q6: two triangles joined by an edge (6 vertices, 7 edges).
Q6 = Graph([(1, 2), (2, 3), (3, 1), (4, 5), (5, 6), (6, 4), (1, 4)])

#: q7: chordal square + pendants on the two degree-2 vertices
#: (6 vertices, 7 edges).  Core: vertices 1-4 with diagonal (1, 3).
Q7 = Graph([(1, 2), (2, 3), (3, 4), (4, 1), (1, 3), (2, 5), (4, 6)])

#: q8: chordal square + a length-2 tail off a degree-2 vertex
#: (6 vertices, 7 edges).
Q8 = Graph([(1, 2), (2, 3), (3, 4), (4, 1), (1, 3), (2, 5), (5, 6)])

#: q9: chordal square + pendants on the two degree-3 (diagonal) vertices
#: (6 vertices, 7 edges).
Q9 = Graph([(1, 2), (2, 3), (3, 4), (4, 1), (1, 3), (1, 5), (3, 6)])


#: The Fig. 1(a)-style running example: 6 vertices, 9 edges, one
#: automorphism u3 ↔ u5 yielding the partial order u3 < u5, vertex cover
#: {u1, u3, u5}.
DEMO_PATTERN = Graph(
    [
        (1, 2),
        (1, 3),
        (1, 5),
        (1, 6),
        (2, 3),
        (2, 5),
        (3, 4),
        (3, 5),
        (4, 5),
    ]
)


PATTERNS: Dict[str, Graph] = {
    "triangle": TRIANGLE,
    "square": SQUARE,
    "chordal_square": CHORDAL_SQUARE,
    "clique4": CLIQUE4,
    "clique5": CLIQUE5,
    "q1": Q1,
    "q2": Q2,
    "q3": Q3,
    "q4": Q4,
    "q5": Q5,
    "q6": Q6,
    "q7": Q7,
    "q8": Q8,
    "q9": Q9,
    "demo": DEMO_PATTERN,
}

#: The patterns of the paper's Fig. 6, in order.
FIG6_PATTERNS: List[str] = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9"]


def get_pattern(name: str) -> Graph:
    """Look up a named pattern graph.

    >>> get_pattern("triangle").num_edges
    3
    """
    try:
        return PATTERNS[name]
    except KeyError:
        known = ", ".join(sorted(PATTERNS))
        raise KeyError(f"unknown pattern {name!r}; known patterns: {known}") from None
