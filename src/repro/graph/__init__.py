"""Data-graph substrate: graphs, generators, orders, datasets, I/O."""

from .graph import (
    Edge,
    Graph,
    GraphError,
    Vertex,
    complete_graph,
    cycle_graph,
    normalize_edge,
    path_graph,
    star_graph,
    union_graphs,
)
from .generators import (
    chung_lu,
    ensure_connected,
    erdos_renyi,
    largest_connected_component,
    random_connected_graph,
    sample_pattern_graphs,
)
from .csr import AdjacencyView, CSRAdjacency
from .io import (
    parse_edge_list,
    read_edge_list,
    read_label_list,
    write_edge_list,
)
from .order import (
    degree_order_key,
    degree_order_relabeling,
    invert_mapping,
    precedes,
    relabel_by_degree_order,
)
from .patterns import FIG6_PATTERNS, PATTERNS, get_pattern
from .datasets import DATASET_ORDER, DATASET_SPECS, load_dataset, tiny_dataset

__all__ = [
    "Edge",
    "Graph",
    "GraphError",
    "Vertex",
    "complete_graph",
    "cycle_graph",
    "normalize_edge",
    "path_graph",
    "star_graph",
    "union_graphs",
    "AdjacencyView",
    "CSRAdjacency",
    "chung_lu",
    "ensure_connected",
    "erdos_renyi",
    "largest_connected_component",
    "random_connected_graph",
    "sample_pattern_graphs",
    "parse_edge_list",
    "read_edge_list",
    "read_label_list",
    "write_edge_list",
    "degree_order_key",
    "degree_order_relabeling",
    "invert_mapping",
    "precedes",
    "relabel_by_degree_order",
    "FIG6_PATTERNS",
    "PATTERNS",
    "get_pattern",
    "DATASET_ORDER",
    "DATASET_SPECS",
    "load_dataset",
    "tiny_dataset",
]
