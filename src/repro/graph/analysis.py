"""Structural analysis of data graphs.

Used to validate that the synthetic stand-ins behave like the paper's
real-world graphs (power-law degree skew, clustering) and by the improved
cardinality estimator, which needs degree moments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .graph import Graph, Vertex


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """degree → number of vertices with that degree."""
    hist: Dict[int, int] = {}
    for v in graph.vertices:
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def degree_moments(graph: Graph) -> Tuple[float, float]:
    """(mean degree, mean squared degree).

    The second moment drives wedge counts — the quantity power-law skew
    inflates and the ER cardinality model underestimates.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0, 0.0
    degrees = [graph.degree(v) for v in graph.vertices]
    return sum(degrees) / n, sum(d * d for d in degrees) / n


def wedge_count(graph: Graph) -> int:
    """Number of paths of length two (ordered centers): Σ C(d(v), 2)."""
    return sum(
        d * (d - 1) // 2 for d in (graph.degree(v) for v in graph.vertices)
    )


def triangle_count(graph: Graph) -> int:
    """Exact triangle count via neighbor intersection (u < v < w)."""
    total = 0
    for u, v in graph.edges():
        common = graph.neighbors(u) & graph.neighbors(v)
        total += sum(1 for w in common if w > v)
    return total


def global_clustering_coefficient(graph: Graph) -> float:
    """3 × triangles / wedges (0 when wedge-free)."""
    wedges = wedge_count(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def power_law_exponent_estimate(graph: Graph, d_min: int = 2) -> float:
    """MLE of the power-law exponent over degrees ≥ d_min (Clauset et al.).

    γ̂ = 1 + n / Σ ln(d_i / (d_min − 0.5)).  Returns ``inf`` when no vertex
    qualifies.
    """
    tail = [graph.degree(v) for v in graph.vertices if graph.degree(v) >= d_min]
    if not tail:
        return math.inf
    denom = sum(math.log(d / (d_min - 0.5)) for d in tail)
    if denom <= 0:
        return math.inf
    return 1.0 + len(tail) / denom


@dataclass(frozen=True)
class GraphProfile:
    """A one-stop structural summary of a data graph."""

    num_vertices: int
    num_edges: int
    mean_degree: float
    mean_squared_degree: float
    max_degree: int
    wedges: int
    triangles: int
    clustering: float
    power_law_exponent: float

    @classmethod
    def of(cls, graph: Graph) -> "GraphProfile":
        mean_d, mean_d2 = degree_moments(graph)
        degrees = graph.degree_sequence()
        return cls(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            mean_degree=mean_d,
            mean_squared_degree=mean_d2,
            max_degree=degrees[0] if degrees else 0,
            wedges=wedge_count(graph),
            triangles=triangle_count(graph),
            clustering=global_clustering_coefficient(graph),
            power_law_exponent=power_law_exponent_estimate(graph),
        )

    @property
    def skew_ratio(self) -> float:
        """⟨d²⟩ / ⟨d⟩² — 1 for regular graphs, ≫ 1 under power-law skew."""
        if self.mean_degree == 0:
            return 0.0
        return self.mean_squared_degree / (self.mean_degree ** 2)
