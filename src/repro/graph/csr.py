"""CSR (compressed-sparse-row) adjacency — the packed alternative backend.

The default adjacency layout stores one ``frozenset`` per vertex: hash
probing and C-speed intersections, but ~100 bytes per edge endpoint once
boxed ints, hash tables and dict slots are paid for, and nothing to share
between processes except via pickling or copy-on-write page faults.

This module packs the same structure HUGE-style into two flat ``array('q')``
buffers — a concatenation of all adjacency lists, each sorted ascending,
plus an offset index — at exactly 8 bytes per stored id:

* ``neighbors[offsets[i]:offsets[i+1]]`` is Γ(v) for the i-th vertex;
* rows are served as :class:`AdjacencyView` objects: zero-copy slices that
  know they are sorted, so symmetry-breaking bounds (``> f_i`` under ≺)
  become ``bisect`` slices instead of per-element filter passes;
* the flat buffers can be placed in ``multiprocessing.shared_memory`` and
  re-attached by worker processes without copying a single neighbor id.

Views lazily materialize a tuple (for C-speed iteration/probing) and a
frozenset (for hash-path intersections); both caches are optional
accelerations governed by ``hash_cache_limit`` — the packed arrays stay the
single source of truth.  See DESIGN.md §7 for the layout trade-off.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from .graph import Graph, Vertex

__all__ = [
    "AdjacencyView",
    "CSRAdjacency",
    "CSRShmHandle",
    "ShmAttachStats",
    "ATTACH_STATS",
]

_ITEM_BYTES = 8  # array('q') / int64


class AdjacencyView:
    """One sorted adjacency row (or any sorted id universe) over a buffer.

    Set-like for everything the BENU hot loop needs — ``len``, iteration,
    membership (binary search), truthiness — plus the sorted-only
    operations the kernels exploit: ``between`` (bounds as slices),
    ``materialize`` (tuple for C-speed probing) and ``fset`` (a lazily
    cached frozenset for hash-path intersections).

    >>> v = AdjacencyView(array("q", [2, 5, 9, 11]))
    >>> len(v), 5 in v, 6 in v
    (4, True, False)
    >>> v.between(2, 11)
    (5, 9)
    """

    __slots__ = ("ids", "_tuple", "_fset", "_np", "_owner")

    def __init__(self, ids: Sequence[int], owner: "CSRAdjacency" = None) -> None:
        self.ids = ids
        self._tuple: Optional[tuple] = None
        self._fset: Optional[frozenset] = None
        self._np = None
        self._owner = owner

    # -- set-like protocol --------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.materialize())

    def __contains__(self, v: object) -> bool:
        ids = self.ids
        i = bisect_left(ids, v)
        return i < len(ids) and ids[i] == v

    def __repr__(self) -> str:
        return f"AdjacencyView(n={len(self.ids)})"

    # -- sorted-only operations ---------------------------------------
    def materialize(self) -> tuple:
        """The row as a tuple (cached; tuples iterate/probe fastest in C)."""
        t = self._tuple
        if t is None:
            t = tuple(self.ids)
            owner = self._owner
            if owner is None or owner._admit_cache():
                self._tuple = t
        return t

    def fset(self) -> frozenset:
        """The row as a frozenset (cached under the owner's budget)."""
        s = self._fset
        if s is None:
            s = frozenset(self.materialize())
            owner = self._owner
            if owner is None or owner._admit_cache():
                self._fset = s
        return s

    def has_fset(self) -> bool:
        return self._fset is not None

    def npids(self):
        """The row as an int64 ndarray — a zero-copy view over the packed
        buffer (``np.frombuffer``), cached unconditionally: unlike the
        tuple/frozenset caches it allocates nothing per element, so it
        sits outside the ``hash_cache_limit`` budget.  Requires numpy
        (only the vectorized kernels call this, and they only dispatch
        when numpy is present)."""
        a = self._np
        if a is None:
            import numpy as np

            try:
                a = np.frombuffer(self.ids, dtype=np.int64)
            except TypeError:  # non-buffer ids (a plain sequence)
                a = np.asarray(self.materialize(), dtype=np.int64)
            self._np = a
        return a

    def between(self, lo: Optional[int], hi: Optional[int]) -> tuple:
        """Elements ``v`` with ``v > lo`` and ``v < hi`` (either bound optional).

        Sortedness turns the symmetry-breaking filters into two binary
        searches and one slice — O(log d) instead of O(d).
        """
        t = self.materialize()
        i = bisect_right(t, lo) if lo is not None else 0
        j = bisect_left(t, hi) if hi is not None else len(t)
        return t[i:j]

    def nbytes(self) -> int:
        """Exact packed size of this row: ``len(view) * 8``."""
        return len(self.ids) * _ITEM_BYTES


@dataclass(frozen=True)
class CSRShmHandle:
    """A picklable descriptor of a CSR adjacency living in shared memory.

    Layout inside the block (all int64): ``vertex_ids[n] · offsets[n+1] ·
    neighbors[m]``.  Workers attach by name and wrap zero-copy memoryviews
    around the three regions — no adjacency data crosses the process
    boundary.
    """

    name: str
    num_vertices: int
    num_neighbors: int

    @property
    def nbytes(self) -> int:
        return (2 * self.num_vertices + 1 + self.num_neighbors) * _ITEM_BYTES


@dataclass
class ShmAttachStats:
    """Counts of shared-memory attaches performed in this process."""

    attaches: int = 0
    bytes_mapped: int = 0

    def record_to(self, registry, **labels) -> None:
        from ..telemetry.snapshot import G_SHM_BYTES, M_SHM_ATTACHES

        names = tuple(labels)
        registry.counter(
            M_SHM_ATTACHES, "shared-memory CSR attaches", names
        ).inc(self.attaches, **labels)
        registry.gauge(
            G_SHM_BYTES, "bytes of adjacency mapped via shared memory"
        ).set(self.bytes_mapped)


#: Module-level attach ledger (per process; workers report deltas home).
ATTACH_STATS = ShmAttachStats()


def _attach_untracked(name: str):
    """Attach to an existing shared block without tracker registration.

    The creating process already registered the block; attaching workers
    must not, or N workers produce N-1 spurious tracker unregisters (the
    tracker's cache is a set) and noisy KeyErrors at shutdown.  Python
    3.13 grew ``SharedMemory(track=False)`` for exactly this; on earlier
    versions the documented workaround is suppressing the register call.
    """
    from multiprocessing import resource_tracker, shared_memory

    orig_register = resource_tracker.register

    def _skip_shm(name_, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            orig_register(name_, rtype)

    resource_tracker.register = _skip_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig_register


class CSRAdjacency:
    """A whole graph's adjacency in CSR form.

    >>> from repro.graph.graph import complete_graph
    >>> csr = CSRAdjacency.from_graph(complete_graph(3))
    >>> sorted(csr.row(1))
    [2, 3]
    >>> csr.degree(2)
    2
    """

    __slots__ = (
        "vertex_ids",
        "offsets",
        "neighbors",
        "hash_cache_limit",
        "_row_of",
        "_views",
        "_cached_rows",
        "_universe",
        "_shm",
    )

    def __init__(
        self,
        vertex_ids: Sequence[int],
        offsets: Sequence[int],
        neighbors: Sequence[int],
        hash_cache_limit: Optional[int] = None,
    ) -> None:
        if len(offsets) != len(vertex_ids) + 1:
            raise ValueError("offsets must have exactly num_vertices + 1 entries")
        self.vertex_ids = vertex_ids
        self.offsets = offsets
        self.neighbors = neighbors
        #: Max number of rows allowed to cache tuple/frozenset forms; None
        #: = unbounded.  Bounds per-process decode memory on huge graphs.
        self.hash_cache_limit = hash_cache_limit
        self._row_of: Dict[Vertex, int] = {
            v: i for i, v in enumerate(vertex_ids)
        }
        self._views: Dict[Vertex, AdjacencyView] = {}
        self._cached_rows = 0
        self._universe: Optional[AdjacencyView] = None
        self._shm = None  # keeps an attached shared-memory block alive

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: Graph, hash_cache_limit: Optional[int] = None
    ) -> "CSRAdjacency":
        """Pack a :class:`Graph` (vertices already sorted ascending)."""
        vertex_ids = array("q", graph.vertices)
        offsets = array("q", [0])
        neighbors = array("q")
        for v in graph.vertices:
            neighbors.extend(graph.sorted_neighbors(v))
            offsets.append(len(neighbors))
        return cls(vertex_ids, offsets, neighbors, hash_cache_limit)

    def _admit_cache(self) -> bool:
        limit = self.hash_cache_limit
        if limit is not None and self._cached_rows >= limit:
            return False
        self._cached_rows += 1
        return True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.vertex_ids)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._row_of

    def row(self, v: Vertex) -> AdjacencyView:
        """The sorted adjacency view of ``v`` (views are memoized)."""
        view = self._views.get(v)
        if view is None:
            i = self._row_of[v]
            lo, hi = self.offsets[i], self.offsets[i + 1]
            view = AdjacencyView(self.neighbors[lo:hi], owner=self)
            self._views[v] = view
        return view

    def degree(self, v: Vertex) -> int:
        i = self._row_of[v]
        return self.offsets[i + 1] - self.offsets[i]

    def universe(self) -> AdjacencyView:
        """V(G) as a sorted view — the CSR stand-in for the ``V`` operand."""
        if self._universe is None:
            self._universe = AdjacencyView(self.vertex_ids, owner=self)
        return self._universe

    def items(self) -> Iterator[Tuple[Vertex, AdjacencyView]]:
        for v in self.vertex_ids:
            yield v, self.row(v)

    def memory_bytes(self) -> int:
        """Exact packed footprint of the three flat arrays."""
        return (
            len(self.vertex_ids) + len(self.offsets) + len(self.neighbors)
        ) * _ITEM_BYTES

    # -- shared memory --------------------------------------------------
    def to_shared(self) -> Tuple[CSRShmHandle, object]:
        """Copy the arrays into one shared-memory block.

        Returns ``(handle, shm)``; the caller owns the block and must
        ``close()`` + ``unlink()`` it when every worker is done.
        """
        from multiprocessing import shared_memory

        n, m = len(self.vertex_ids), len(self.neighbors)
        handle_size = (2 * n + 1 + m) * _ITEM_BYTES
        shm = shared_memory.SharedMemory(create=True, size=handle_size)
        mv = memoryview(shm.buf).cast("q")
        mv[0:n] = memoryview(array("q", self.vertex_ids))
        mv[n : 2 * n + 1] = memoryview(array("q", self.offsets))
        if m:
            mv[2 * n + 1 : 2 * n + 1 + m] = memoryview(array("q", self.neighbors))
        mv.release()
        return CSRShmHandle(shm.name, n, m), shm

    @classmethod
    def from_shared(
        cls, handle: CSRShmHandle, hash_cache_limit: Optional[int] = None
    ) -> "CSRAdjacency":
        """Attach to a shared block — zero adjacency bytes are copied.

        The returned object keeps the mapping alive for its own lifetime
        and unregisters it from the resource tracker (the creator owns
        unlinking).
        """
        shm = _attach_untracked(handle.name)
        n, m = handle.num_vertices, handle.num_neighbors
        mv = memoryview(shm.buf).cast("q")
        csr = cls(
            mv[0:n],
            mv[n : 2 * n + 1],
            mv[2 * n + 1 : 2 * n + 1 + m],
            hash_cache_limit,
        )
        csr._shm = shm
        ATTACH_STATS.attaches += 1
        ATTACH_STATS.bytes_mapped += handle.nbytes
        return csr

    def detach(self) -> None:
        """Release an attached mapping (no-op for non-shared instances).

        Drops every buffer-backed reference this object holds (views,
        arrays, the universe) so the exported memoryviews die, then closes
        the mapping.  Callers must drop their own row views first.
        """
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self._views.clear()
        self._universe = None
        self.vertex_ids = ()
        self.offsets = ()
        self.neighbors = ()
        self._row_of = {}
        shm.close()
