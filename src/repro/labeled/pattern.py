"""Labeled pattern graphs and label-aware symmetry breaking.

A labeled pattern's automorphisms must preserve labels — the symmetry
group can only shrink, so the Grochow–Kellis partial order computed on the
label-preserving subgroup still bijects matches and subgraphs.  Syntactic
equivalence is refined by label for the same reason (dual orders must be
label-isomorphic to really be duals).
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, List, Mapping

from ..graph.graph import Graph, Vertex
from ..pattern.automorphism import automorphisms, stabilizer
from ..pattern.equivalence import equivalence_classes, syntactically_equivalent
from ..pattern.pattern_graph import PatternGraph
from ..pattern.symmetry import Condition
from .graphs import Label


class LabeledPatternGraph(PatternGraph):
    """A :class:`PatternGraph` whose vertices carry labels.

    >>> from repro.graph.graph import complete_graph
    >>> p = LabeledPatternGraph(complete_graph(3), {1: "A", 2: "A", 3: "B"})
    >>> p.symmetry_conditions   # only the two A-vertices are symmetric
    [(1, 2)]
    """

    def __init__(
        self,
        graph: Graph,
        labels: Mapping[Vertex, Label],
        name: str = "labeled-pattern",
    ) -> None:
        super().__init__(graph, name=name)
        missing = [u for u in graph.vertices if u not in labels]
        if missing:
            raise ValueError(f"pattern vertices without labels: {missing}")
        self.labels: Dict[Vertex, Label] = {u: labels[u] for u in graph.vertices}

    def label_of(self, u: Vertex) -> Label:
        return self.labels[u]

    # ------------------------------------------------------------------
    # Label-aware overrides
    # ------------------------------------------------------------------
    @cached_property
    def automorphisms(self) -> List[Dict[Vertex, Vertex]]:
        """Only label-preserving automorphisms count."""
        return [
            g
            for g in automorphisms(self.graph)
            if all(self.labels[u] == self.labels[g[u]] for u in self.vertices)
        ]

    @cached_property
    def num_automorphisms(self) -> int:
        return len(self.automorphisms)

    @cached_property
    def symmetry_conditions(self) -> List[Condition]:
        """Grochow–Kellis over the label-preserving subgroup."""
        group = self.automorphisms
        conditions: List[Condition] = []
        while len(group) > 1:
            orbit_of: Dict[Vertex, set] = {}
            for v in self.vertices:
                orbit_of[v] = {g[v] for g in group}
            candidates = [v for v in self.vertices if len(orbit_of[v]) > 1]
            anchor = max(candidates, key=lambda v: (len(orbit_of[v]), -v))
            for other in sorted(orbit_of[anchor]):
                if other != anchor:
                    conditions.append((anchor, other))
            group = stabilizer(group, anchor)
        return conditions

    @cached_property
    def se_classes(self) -> List[List[Vertex]]:
        """Structural SE classes refined by label (dual-pruning safety)."""
        refined: List[List[Vertex]] = []
        for cls in equivalence_classes(self.graph):
            by_label: Dict[Label, List[Vertex]] = {}
            for v in cls:
                by_label.setdefault(self.labels[v], []).append(v)
            refined.extend(sorted(by_label.values(), key=lambda c: c[0]))
        return refined

    @cached_property
    def se_class_index(self) -> Dict[Vertex, int]:
        out: Dict[Vertex, int] = {}
        for i, cls in enumerate(self.se_classes):
            for v in cls:
                out[v] = i
        return out

    def __repr__(self) -> str:
        return (
            f"LabeledPatternGraph({self.name!r}, n={self.n}, m={self.m}, "
            f"labels={sorted(set(self.labels.values()), key=repr)})"
        )
