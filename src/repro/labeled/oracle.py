"""Reference matcher for labeled subgraph enumeration (test oracle)."""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from ..graph.graph import Vertex
from ..pattern.isomorphism import enumerate_matches
from .graphs import LabeledGraph
from .pattern import LabeledPatternGraph

Match = Tuple[Vertex, ...]


def enumerate_labeled_matches(
    pattern: LabeledPatternGraph,
    data: LabeledGraph,
    use_symmetry: bool = True,
) -> Iterator[Match]:
    """Yield label-preserving matches of ``pattern`` in ``data``.

    Built on the unlabeled oracle with a label post-filter — slow but
    unquestionably correct, which is all an oracle needs.
    """
    conditions = pattern.symmetry_conditions if use_symmetry else ()
    vertices = pattern.vertices
    for match in enumerate_matches(
        pattern.graph, data.graph, partial_order=conditions
    ):
        if all(
            pattern.label_of(u) == data.label_of(v)
            for u, v in zip(vertices, match)
        ):
            yield match


def count_labeled_matches(
    pattern: LabeledPatternGraph, data: LabeledGraph
) -> int:
    """Number of label-preserving matches (one per subgraph)."""
    return sum(1 for _ in enumerate_labeled_matches(pattern, data))
