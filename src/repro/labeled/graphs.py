"""Labeled (property) graphs — the paper's second future-work direction.

The conclusion announces "extending BENU to property graphs".  This
subpackage does the vertex-label core of that extension: data and pattern
vertices carry labels, and a match must preserve them
(``label_P(u) = label_G(f(u))`` on top of Definition 1).

The design reuses the unlabeled machinery end to end:

* labels restrict candidate sets — a per-label vertex index on the data
  graph becomes one extra intersection operand in the plan;
* symmetry breaking uses the *label-preserving* automorphism subgroup, so
  the bijection between matches and subgraphs still holds;
* compiled plans receive the label index as injected constants — the
  codegen, caches, cluster and baselines are untouched.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Tuple

from ..graph.graph import Edge, Graph, Vertex

Label = Hashable


class LabeledGraph:
    """An undirected simple graph with one label per vertex.

    >>> g = LabeledGraph([(1, 2), (2, 3)], {1: "A", 2: "B", 3: "A"})
    >>> sorted(g.vertices_with_label("A"))
    [1, 3]
    """

    def __init__(
        self,
        edges: Iterable[Edge],
        labels: Mapping[Vertex, Label],
        vertices: Iterable[Vertex] = (),
    ) -> None:
        self.graph = Graph(edges, vertices=vertices)
        missing = [v for v in self.graph.vertices if v not in labels]
        if missing:
            raise ValueError(f"vertices without labels: {missing[:5]}")
        self.labels: Dict[Vertex, Label] = {
            v: labels[v] for v in self.graph.vertices
        }

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        return self.graph.vertices

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        return self.graph.neighbors(v)

    def degree(self, v: Vertex) -> int:
        return self.graph.degree(v)

    def label_of(self, v: Vertex) -> Label:
        return self.labels[v]

    @cached_property
    def label_index(self) -> Dict[Label, FrozenSet[Vertex]]:
        """label → frozenset of vertices carrying it (the candidate pools)."""
        buckets: Dict[Label, set] = {}
        for v, lbl in self.labels.items():
            buckets.setdefault(lbl, set()).add(v)
        return {lbl: frozenset(vs) for lbl, vs in buckets.items()}

    def vertices_with_label(self, label: Label) -> FrozenSet[Vertex]:
        return self.label_index.get(label, frozenset())

    def label_frequencies(self) -> Dict[Label, int]:
        """How many vertices carry each label (selectivity statistics)."""
        return {lbl: len(vs) for lbl, vs in self.label_index.items()}

    def relabel_vertices(self, mapping: Dict[Vertex, Vertex]) -> "LabeledGraph":
        """Rename vertex ids (labels follow their vertices)."""
        return LabeledGraph(
            [(mapping[u], mapping[v]) for u, v in self.graph.edges()],
            {mapping[v]: lbl for v, lbl in self.labels.items()},
            vertices=[mapping[v] for v in self.graph.vertices],
        )

    def __repr__(self) -> str:
        return (
            f"LabeledGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"labels={len(self.label_index)})"
        )
