"""Label-aware execution plans.

``labelize_plan`` rewrites an (optimized, possibly compressed) plan so that
every candidate set is intersected with the data graph's per-label vertex
pool before enumeration or reporting.  The pools enter the plan as named
constants (``VL0``, ``VL1``, ...), injected into the compiled function's
namespace — the codegen, interpreter, caches and cluster need no changes.

The start vertex's label is *not* checked inside the plan: the labeled
runner simply never creates local search tasks for data vertices of the
wrong label (the cheaper place to enforce it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..plan.generation import ExecutionPlan
from ..plan.instructions import Instruction, InstructionType, fvar, intersect, tvar
from ..plan.optimizer import fresh_temp_index
from .graphs import Label, LabeledGraph
from .pattern import LabeledPatternGraph


def label_constant_name(label_id: int) -> str:
    """The plan-constant name for label pool ``label_id``."""
    return f"VL{label_id}"


def labelize_plan(
    plan: ExecutionPlan,
    pattern: LabeledPatternGraph,
    data: LabeledGraph,
) -> ExecutionPlan:
    """Return a copy of ``plan`` with per-label candidate filtering.

    For every ENU ``f_j := Foreach(S)`` an intersection with u_j's label
    pool is inserted; for compressed plans the reported image sets are
    filtered the same way before RES.  A ``None`` label (the declarative
    front-end's "unconstrained" marker) gets no pool and no intersection.
    """
    labels = sorted(
        {
            pattern.label_of(u)
            for u in pattern.vertices
            if pattern.label_of(u) is not None
        },
        key=repr,
    )
    label_id = {lbl: i for i, lbl in enumerate(labels)}
    constants: Dict[str, frozenset] = {
        label_constant_name(i): data.vertices_with_label(lbl)
        for lbl, i in label_id.items()
    }

    def pool_var(u) -> Optional[str]:
        label = pattern.label_of(u)
        if label is None:
            return None
        return label_constant_name(label_id[label])

    next_temp = fresh_temp_index(plan)
    out: List[Instruction] = []
    first = plan.order[0]
    for inst in plan.instructions:
        if inst.type is InstructionType.ENU:
            u = int(inst.target[1:])
            pool = pool_var(u)
            if pool is None:
                out.append(inst)
                continue
            filtered = tvar(next_temp)
            next_temp += 1
            out.append(intersect(filtered, (inst.operands[0], pool)))
            out.append(inst.with_operands((filtered,)))
            continue
        if inst.type is InstructionType.RES:
            # Compressed image sets are label-filtered before reporting.
            operands: List[str] = []
            for u, op in zip(pattern.vertices, inst.operands):
                pool = pool_var(u)
                if u in plan.compressed_vertices and pool is not None:
                    filtered = tvar(next_temp)
                    next_temp += 1
                    out.append(intersect(filtered, (op, pool)))
                    operands.append(filtered)
                else:
                    operands.append(op)
            out.append(inst.with_operands(operands))
            continue
        out.append(inst)

    labeled = ExecutionPlan(
        pattern=pattern,
        order=plan.order,
        instructions=out,
        compressed=plan.compressed,
        compressed_vertices=plan.compressed_vertices,
        constants={**plan.constants, **constants},
    )
    assert labeled.defined_before_use()
    return labeled


def start_label_pool(
    plan: ExecutionPlan, pattern: LabeledPatternGraph, data: LabeledGraph
) -> Optional[frozenset]:
    """Data vertices eligible as the start vertex (u_{k1}'s label pool).

    ``None`` means the start vertex is unconstrained (its pattern label
    is ``None``): every data vertex is eligible.
    """
    label = pattern.label_of(plan.order[0])
    if label is None:
        return None
    return data.vertices_with_label(label)
