"""Property-graph extension: labeled subgraph enumeration (paper §VIII)."""

from .enumerate import (
    count_labeled_subgraphs,
    enumerate_labeled_subgraphs,
    run_labeled_benu,
)
from .graphs import Label, LabeledGraph
from .oracle import count_labeled_matches, enumerate_labeled_matches
from .pattern import LabeledPatternGraph
from .plans import label_constant_name, labelize_plan, start_label_pool

__all__ = [
    "count_labeled_subgraphs",
    "enumerate_labeled_subgraphs",
    "run_labeled_benu",
    "Label",
    "LabeledGraph",
    "count_labeled_matches",
    "enumerate_labeled_matches",
    "LabeledPatternGraph",
    "label_constant_name",
    "labelize_plan",
    "start_label_pool",
]
