"""The labeled BENU runner — property-graph subgraph enumeration.

Pipeline mirrors :func:`repro.engine.benu.run_benu`: relabel the data
graph under ≺ (labels follow their vertices), build the best plan with
label-aware symmetry breaking, labelize it, and execute on the simulated
cluster — creating tasks only for start vertices of the right label.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..engine.benu import PatternLike
from ..engine.cluster import SimulatedCluster
from ..engine.config import BenuConfig
from ..engine.results import BenuResult
from ..engine.task_split import generate_tasks
from ..graph.graph import Vertex
from ..graph.order import degree_order_relabeling, invert_mapping
from ..plan.compression import compress_plan
from ..plan.cost import GraphStats
from ..plan.search import generate_best_plan
from ..plan.validate import validate_plan
from .graphs import LabeledGraph
from .pattern import LabeledPatternGraph
from .plans import labelize_plan, start_label_pool


def run_labeled_benu(
    pattern: LabeledPatternGraph,
    data: LabeledGraph,
    config: Optional[BenuConfig] = None,
) -> BenuResult:
    """Enumerate label-preserving matches of ``pattern`` in ``data``.

    Returns the same :class:`BenuResult` the unlabeled pipeline does
    (counts are matches or VCBC codes depending on ``config.compressed``).
    """
    config = config or BenuConfig()

    mapping: Optional[Dict[Vertex, Vertex]] = None
    if config.relabel:
        mapping = degree_order_relabeling(data.graph)
        data = data.relabel_vertices(mapping)

    stats = GraphStats.of(data.graph)
    plan = generate_best_plan(
        pattern,
        stats,
        optimization_level=config.optimization_level,
    ).plan
    if config.compressed:
        plan = compress_plan(plan)
    plan = labelize_plan(plan, pattern, data)
    validate_plan(plan)

    eligible = start_label_pool(plan, pattern, data)
    tasks = [
        task
        for task in generate_tasks(plan, data.graph, config.split_threshold)
        if task.start in eligible
    ]

    cluster = SimulatedCluster(data.graph, config)
    result = cluster.run_plan(plan, tasks=tasks)

    if mapping is not None:
        inverse = invert_mapping(mapping)
        result.id_mapping = inverse
        if result.matches is not None:
            result.matches = [
                tuple(inverse[v] for v in match) for match in result.matches
            ]
    return result


def count_labeled_subgraphs(
    pattern: LabeledPatternGraph,
    data: LabeledGraph,
    config: Optional[BenuConfig] = None,
) -> int:
    """Number of label-preserving subgraph instances.

    >>> from repro.graph.graph import complete_graph
    >>> data = LabeledGraph(
    ...     complete_graph(4).edges(), {1: "A", 2: "A", 3: "B", 4: "B"}
    ... )
    >>> tri = LabeledPatternGraph(complete_graph(3), {1: "A", 2: "A", 3: "B"})
    >>> count_labeled_subgraphs(tri, data)  # choose the A-pair and one B
    2
    """
    config = config or BenuConfig()
    if config.compressed:
        raise ValueError("counting full matches requires compressed=False")
    return run_labeled_benu(pattern, data, config).count


def enumerate_labeled_subgraphs(
    pattern: LabeledPatternGraph,
    data: LabeledGraph,
    config: Optional[BenuConfig] = None,
) -> List[Tuple[Vertex, ...]]:
    """All label-preserving matches, one per subgraph instance."""
    from dataclasses import replace

    if config is None:
        config = BenuConfig(collect=True)
    elif not config.collect:
        config = replace(config, collect=True)
    result = run_labeled_benu(pattern, data, config)
    if config.compressed:
        return list(result.expanded_matches())
    assert result.matches is not None
    return result.matches
