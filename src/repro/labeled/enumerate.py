"""The labeled BENU runner — property-graph subgraph enumeration.

There is no labeled execution loop: a labeled run is the ordinary
pipeline — :func:`~repro.engine.benu.prepare_plan` →
:func:`labelize_plan` (per-label candidate pools as plan constants) →
:func:`~repro.engine.benu.execute_plan` with ``start_vertices``
restricted to the start vertex's label pool.  Everything the shared
path provides — the three execution backends, streaming sinks,
cooperative control, result translation — therefore works for labeled
patterns unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..engine.benu import PreparedData, execute_plan, prepare_plan
from ..engine.config import BenuConfig
from ..engine.results import BenuResult
from ..graph.graph import Vertex
from ..graph.order import degree_order_relabeling, invert_mapping
from ..plan.validate import validate_plan
from .graphs import LabeledGraph
from .pattern import LabeledPatternGraph
from .plans import labelize_plan, start_label_pool


def prepare_labeled_data(
    data: LabeledGraph, config: Optional[BenuConfig] = None
) -> Tuple[PreparedData, LabeledGraph]:
    """Relabel a labeled data graph per ``config.relabel``.

    Returns the engine's :class:`PreparedData` (execution-space graph +
    id translation) alongside the matching execution-space
    :class:`LabeledGraph` (labels follow their vertices) that
    :func:`labelize_plan` builds its pools from.
    """
    config = config or BenuConfig()
    if not config.relabel:
        return PreparedData(data.graph), data
    mapping = degree_order_relabeling(data.graph)
    relabeled = data.relabel_vertices(mapping)
    return (
        PreparedData(relabeled.graph, mapping, invert_mapping(mapping)),
        relabeled,
    )


def labeled_start_vertices(
    plan, pattern: LabeledPatternGraph, prepared: PreparedData, data: LabeledGraph
) -> Optional[List[Vertex]]:
    """Start vertices eligible for ``plan`` (graph order), or None = all."""
    pool = start_label_pool(plan, pattern, data)
    if pool is None:
        return None
    return [v for v in prepared.graph.vertices if v in pool]


def run_labeled_benu(
    pattern: LabeledPatternGraph,
    data: LabeledGraph,
    config: Optional[BenuConfig] = None,
) -> BenuResult:
    """Enumerate label-preserving matches of ``pattern`` in ``data``.

    Returns the same :class:`BenuResult` the unlabeled pipeline does
    (counts are matches or VCBC codes depending on ``config.compressed``).
    """
    config = config or BenuConfig()
    prepared, data = prepare_labeled_data(data, config)

    plan = prepare_plan(pattern, prepared, config)
    predicted = plan.predicted_counts
    plan = labelize_plan(plan, pattern, data)
    plan.predicted_counts = predicted
    validate_plan(plan)

    start_vertices = labeled_start_vertices(plan, pattern, prepared, data)
    return execute_plan(
        plan, prepared, config, start_vertices=start_vertices
    )


def count_labeled_subgraphs(
    pattern: LabeledPatternGraph,
    data: LabeledGraph,
    config: Optional[BenuConfig] = None,
) -> int:
    """Number of label-preserving subgraph instances.

    >>> from repro.graph.graph import complete_graph
    >>> data = LabeledGraph(
    ...     complete_graph(4).edges(), {1: "A", 2: "A", 3: "B", 4: "B"}
    ... )
    >>> tri = LabeledPatternGraph(complete_graph(3), {1: "A", 2: "A", 3: "B"})
    >>> count_labeled_subgraphs(tri, data)  # choose the A-pair and one B
    2
    """
    config = config or BenuConfig()
    if config.compressed:
        raise ValueError("counting full matches requires compressed=False")
    return run_labeled_benu(pattern, data, config).count


def enumerate_labeled_subgraphs(
    pattern: LabeledPatternGraph,
    data: LabeledGraph,
    config: Optional[BenuConfig] = None,
) -> List[Tuple[Vertex, ...]]:
    """All label-preserving matches, one per subgraph instance."""
    from dataclasses import replace

    if config is None:
        config = BenuConfig(collect=True)
    elif not config.collect:
        config = replace(config, collect=True)
    result = run_labeled_benu(pattern, data, config)
    if config.compressed:
        return list(result.expanded_matches())
    assert result.matches is not None
    return result.matches
