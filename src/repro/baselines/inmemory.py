"""QFrag-style in-memory baseline (Serafini et al., SoCC'17).

QFrag broadcasts the whole data graph to every worker and runs task-parallel
in-memory backtracking.  It is the simplest DFS-style competitor: zero
per-query communication, but the broadcast costs |G| × workers bytes and
the approach dies when the graph outgrows one machine's memory — the
scalability ceiling the paper cites when motivating on-demand shuffle.

Also doubles as an independent implementation for correctness tests.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..graph.graph import Graph, Vertex
from ..pattern.isomorphism import enumerate_matches
from ..pattern.pattern_graph import PatternGraph


@dataclass
class InMemoryResult:
    """Outcome of a broadcast-and-backtrack run."""

    count: int
    matches: Optional[List[Tuple[Vertex, ...]]]
    broadcast_bytes: int
    wall_seconds: float


def run_inmemory(
    pattern: PatternGraph,
    data: Graph,
    num_workers: int = 1,
    collect: bool = False,
    order=None,
) -> InMemoryResult:
    """Enumerate matches by plain in-memory backtracking.

    The data graph must already be relabeled under the (degree, id) total
    order for symmetry breaking to be correct (the bundled datasets are).
    """
    from ..storage.serialization import graph_size_bytes

    t0 = _time.perf_counter()
    matches_iter = enumerate_matches(
        pattern.graph,
        data,
        order=order,
        partial_order=pattern.symmetry_conditions,
    )
    if collect:
        matches: Optional[List[Tuple[Vertex, ...]]] = list(matches_iter)
        count = len(matches)
    else:
        matches = None
        count = sum(1 for _ in matches_iter)
    return InMemoryResult(
        count=count,
        matches=matches,
        broadcast_bytes=graph_size_bytes(data) * num_workers,
        wall_seconds=_time.perf_counter() - t0,
    )
