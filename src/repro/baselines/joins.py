"""BFS-style join-based enumerator — the CBF/SEED stand-in.

The BFS-style algorithms (SEED, TwinTwig, CBF) enumerate matches of small
join units first and assemble them with one or more rounds of distributed
hash joins, shuffling every partial matching result between rounds.  The
paper's central claim is that this shuffle volume — 10–100× the data graph
for common core structures (Table I) — is what BENU's on-demand shuffle
avoids.

This implementation is a faithful accounting model of that family:

* pattern decomposed into join units (star / twintwig / clique / edge);
* unit matches enumerated from the data graph;
* left-deep hash joins over shared pattern vertices, injectivity and
  symmetry-breaking conditions applied as soon as both sides are bound
  (as the real systems do);
* every join round accounts the *shuffled bytes*: both inputs are
  hash-partitioned on the join key across workers, so each round ships
  |left| + |right| tuples of 4-byte vertex ids;
* simulated time = enumeration + join probes + shuffle volume / aggregate
  network bandwidth (defaults match the paper's 1 Gbps × 16 workers).

The result count equals BENU's exactly (tests assert it); only the cost
profile differs — which is precisely the comparison of Table V.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.graph import Graph, Vertex
from ..pattern.pattern_graph import PatternGraph
from .decompose import JoinUnit, decompose

#: Bytes one bound vertex occupies in a shuffled tuple.
VERTEX_BYTES = 4

Assignment = Tuple[Vertex, ...]  # values aligned with a vertex tuple


class JoinOverflowError(RuntimeError):
    """An intermediate result exceeded the configured tuple budget.

    The real systems die the same way: Table V reports CBF CRASH cells
    where shuffling the blown-up intermediates exhausted the cluster.
    """


@dataclass
class JoinRound:
    """Accounting for one join (or unit-enumeration) round."""

    description: str
    output_tuples: int
    shuffled_tuples: int
    shuffled_bytes: int


@dataclass
class JoinResult:
    """Outcome + cost profile of a join-based enumeration."""

    count: int
    matches: Optional[List[Assignment]]
    rounds: List[JoinRound] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def total_shuffled_bytes(self) -> int:
        return sum(r.shuffled_bytes for r in self.rounds)

    @property
    def max_intermediate_tuples(self) -> int:
        return max((r.output_tuples for r in self.rounds), default=0)

    def simulated_seconds(
        self,
        per_tuple_seconds: float = 2e-7,
        bandwidth_bytes_per_second: float = 2e9,
    ) -> float:
        """Deterministic cost model: CPU per produced tuple + network."""
        cpu = sum(r.output_tuples for r in self.rounds) * per_tuple_seconds
        net = self.total_shuffled_bytes / bandwidth_bytes_per_second
        return cpu + net


class JoinBaseline:
    """A BFS-style join enumerator over one data graph."""

    def __init__(
        self,
        pattern: PatternGraph,
        data: Graph,
        strategy: str = "star",
        max_tuples: Optional[int] = None,
    ) -> None:
        self.pattern = pattern
        self.data = data
        self.units = decompose(pattern.graph, strategy)
        self.max_tuples = max_tuples
        self._conditions = pattern.symmetry_conditions

    def _charge(self, rows: List[Assignment]) -> None:
        if self.max_tuples is not None and len(rows) > self.max_tuples:
            raise JoinOverflowError(
                f"intermediate result exceeded {self.max_tuples} tuples"
            )

    # ------------------------------------------------------------------
    # Unit-match enumeration
    # ------------------------------------------------------------------
    def _unit_matches(self, unit: JoinUnit) -> List[Assignment]:
        """All matches of one join unit, with early pruning.

        Injectivity and symmetry conditions are applied among the unit's
        own vertices (real systems push these down too).
        """
        vertices = unit.vertices
        edges = [
            (vertices.index(u), vertices.index(v)) for u, v in unit.edges
        ]
        conditions = [
            (vertices.index(lo), vertices.index(hi))
            for lo, hi in self._conditions
            if lo in vertices and hi in vertices
        ]
        data = self.data
        max_tuples = self.max_tuples
        out: List[Assignment] = []
        assignment: List[Optional[Vertex]] = [None] * len(vertices)

        def extend(i: int) -> None:
            if i == len(vertices):
                out.append(tuple(assignment))  # type: ignore[arg-type]
                if max_tuples is not None and len(out) > max_tuples:
                    raise JoinOverflowError(
                        f"unit enumeration exceeded {max_tuples} tuples"
                    )
                return
            # Candidates: intersect adjacency of already-bound neighbors.
            pools = [
                data.neighbors(assignment[a] if b == i else assignment[b])
                for a, b in edges
                if (a == i and assignment[b] is not None)
                or (b == i and assignment[a] is not None)
            ]
            if pools:
                pool = pools[0]
                for p in pools[1:]:
                    pool = pool & p
            else:
                pool = data.vertices
            for v in pool:
                if v in assignment:
                    continue
                ok = True
                for lo, hi in conditions:
                    if lo == i and assignment[hi] is not None and not v < assignment[hi]:
                        ok = False
                        break
                    if hi == i and assignment[lo] is not None and not assignment[lo] < v:
                        ok = False
                        break
                if ok:
                    assignment[i] = v
                    extend(i + 1)
                    assignment[i] = None

        extend(0)
        return out

    # ------------------------------------------------------------------
    # Left-deep hash joins
    # ------------------------------------------------------------------
    def _join(
        self,
        left_vertices: Sequence[Vertex],
        left_rows: List[Assignment],
        right_vertices: Sequence[Vertex],
        right_rows: List[Assignment],
        conditions: Sequence[Tuple[Vertex, Vertex]],
    ) -> Tuple[Tuple[Vertex, ...], List[Assignment]]:
        """Hash join on shared pattern vertices with injectivity pushdown."""
        shared = [v for v in left_vertices if v in right_vertices]
        li = {v: i for i, v in enumerate(left_vertices)}
        ri = {v: i for i, v in enumerate(right_vertices)}
        out_vertices = tuple(left_vertices) + tuple(
            v for v in right_vertices if v not in li
        )
        extra = [v for v in right_vertices if v not in li]
        applicable = [
            (lo, hi)
            for lo, hi in conditions
            if (lo in li or lo in ri) and (hi in li or hi in ri)
            # only pairs that become jointly bound by this join
            and not (lo in li and hi in li)
            and not (lo in ri and hi in ri)
        ]

        table: Dict[Tuple[Vertex, ...], List[Assignment]] = {}
        for row in right_rows:
            key = tuple(row[ri[v]] for v in shared)
            table.setdefault(key, []).append(row)

        out_rows: List[Assignment] = []
        for lrow in left_rows:
            key = tuple(lrow[li[v]] for v in shared)
            for rrow in table.get(key, ()):
                bound = dict(zip(left_vertices, lrow))
                clash = False
                for v in extra:
                    val = rrow[ri[v]]
                    if val in bound.values():
                        clash = True
                        break
                    bound[v] = val
                if clash:
                    continue
                ok = all(bound[lo] < bound[hi] for lo, hi in applicable)
                if ok:
                    out_rows.append(tuple(bound[v] for v in out_vertices))
                    if (
                        self.max_tuples is not None
                        and len(out_rows) > self.max_tuples
                    ):
                        raise JoinOverflowError(
                            f"join output exceeded {self.max_tuples} tuples"
                        )
        return out_vertices, out_rows

    # ------------------------------------------------------------------
    def run(self, collect: bool = False) -> JoinResult:
        """Enumerate all matches via unit enumeration + left-deep joins."""
        t0 = _time.perf_counter()
        rounds: List[JoinRound] = []

        unit_rows: List[Tuple[Tuple[Vertex, ...], List[Assignment]]] = []
        for unit in self.units:
            rows = self._unit_matches(unit)
            rounds.append(
                JoinRound(
                    description=f"enumerate {unit.kind}{unit.vertices}",
                    output_tuples=len(rows),
                    shuffled_tuples=len(rows),
                    shuffled_bytes=len(rows) * len(unit.vertices) * VERTEX_BYTES,
                )
            )
            unit_rows.append((unit.vertices, rows))

        # Left-deep order: start with the unit with the most edges, then
        # greedily join the unit sharing the most vertices (avoid Cartesian
        # products whenever possible).
        remaining = list(range(len(unit_rows)))
        remaining.sort(
            key=lambda i: (-self.units[i].num_edges, -len(unit_rows[i][0]))
        )
        first = remaining.pop(0)
        cur_vertices, cur_rows = unit_rows[first]

        while remaining:
            remaining.sort(
                key=lambda i: -len(
                    set(unit_rows[i][0]) & set(cur_vertices)
                )
            )
            nxt = remaining.pop(0)
            rv, rr = unit_rows[nxt]
            shuffled = len(cur_rows) + len(rr)
            shuffled_bytes = (
                len(cur_rows) * len(cur_vertices) + len(rr) * len(rv)
            ) * VERTEX_BYTES
            cur_vertices, cur_rows = self._join(
                cur_vertices, cur_rows, rv, rr, self._conditions
            )
            rounds.append(
                JoinRound(
                    description=f"join on {set(rv) & set(cur_vertices)}",
                    output_tuples=len(cur_rows),
                    shuffled_tuples=shuffled,
                    shuffled_bytes=shuffled_bytes,
                )
            )

        matches = None
        if collect:
            # Normalize column order to sorted pattern vertices.
            perm = [cur_vertices.index(v) for v in self.pattern.vertices]
            matches = [tuple(row[i] for i in perm) for row in cur_rows]
        return JoinResult(
            count=len(cur_rows),
            matches=matches,
            rounds=rounds,
            wall_seconds=_time.perf_counter() - t0,
        )


def run_join_baseline(
    pattern: PatternGraph,
    data: Graph,
    strategy: str = "star",
    collect: bool = False,
    max_tuples: Optional[int] = None,
) -> JoinResult:
    """Convenience wrapper: decompose, enumerate, join.

    ``max_tuples`` bounds any single materialized result; exceeding it
    raises :class:`JoinOverflowError` — the CRASH rows of Table V.
    """
    return JoinBaseline(pattern, data, strategy, max_tuples=max_tuples).run(
        collect=collect
    )
