"""Pattern decomposition into join units (the BFS-style substrate).

The BFS-style literature differs mostly in its *join unit* (Section VI):
single edges (StarJoin/EdgeJoin), TwinTwigs — stars with at most two edges
(Lai et al., PVLDB'15) — general stars (SEED), and cliques/crystals
(SEED/CBF).  This module implements the decompositions; ``joins.py``
assembles unit matches with hash joins.

A decomposition is a list of :class:`JoinUnit` whose edge sets partition
E(P).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Set, Tuple

from ..graph.graph import Edge, Graph, Vertex


@dataclass(frozen=True)
class JoinUnit:
    """One join unit: a small subgraph of the pattern.

    ``kind`` is "edge", "twintwig", "star" or "clique" (diagnostic only).
    """

    vertices: Tuple[Vertex, ...]
    edges: Tuple[Edge, ...]
    kind: str

    @property
    def num_edges(self) -> int:
        return len(self.edges)


def _uncovered_incident(
    pattern: Graph, v: Vertex, uncovered: Set[FrozenSet[Vertex]]
) -> List[Edge]:
    return [
        (v, w) for w in sorted(pattern.neighbors(v)) if frozenset((v, w)) in uncovered
    ]


def star_decomposition(pattern: Graph, max_edges: int = None) -> List[JoinUnit]:
    """Greedy star decomposition (SEED's unit; TwinTwig when capped at 2).

    Repeatedly pick the vertex covering the most uncovered edges and emit
    the star of those edges (capped at ``max_edges`` if given).
    """
    uncovered: Set[FrozenSet[Vertex]] = {
        frozenset(e) for e in pattern.edges()
    }
    units: List[JoinUnit] = []
    while uncovered:
        center = max(
            pattern.vertices,
            key=lambda v: (len(_uncovered_incident(pattern, v, uncovered)), -v),
        )
        incident = _uncovered_incident(pattern, center, uncovered)
        if not incident:
            raise AssertionError("uncovered edges but no incident vertex")
        if max_edges is not None:
            incident = incident[:max_edges]
        for e in incident:
            uncovered.discard(frozenset(e))
        leaves = tuple(w for _, w in incident)
        kind = "edge" if len(incident) == 1 else (
            "twintwig" if len(incident) == 2 else "star"
        )
        units.append(
            JoinUnit(vertices=(center, *leaves), edges=tuple(incident), kind=kind)
        )
    return units


def twintwig_decomposition(pattern: Graph) -> List[JoinUnit]:
    """TwinTwig decomposition: stars with at most two edges."""
    return star_decomposition(pattern, max_edges=2)


def edge_decomposition(pattern: Graph) -> List[JoinUnit]:
    """One unit per edge (the most join-heavy decomposition)."""
    return [
        JoinUnit(vertices=(u, v), edges=((u, v),), kind="edge")
        for u, v in pattern.edges()
    ]


def clique_decomposition(pattern: Graph) -> List[JoinUnit]:
    """Greedy clique decomposition (SEED's clique units / CBF-style).

    Repeatedly grow a maximal clique over vertices with uncovered edges,
    emit its *uncovered* edges as one unit, and fall back to stars for
    leftovers that are not cliques.
    """
    uncovered: Set[FrozenSet[Vertex]] = {frozenset(e) for e in pattern.edges()}
    units: List[JoinUnit] = []
    while uncovered:
        # Seed with the uncovered edge whose endpoints have max degree.
        seed = max(
            uncovered,
            key=lambda e: sum(pattern.degree(v) for v in e),
        )
        clique = set(seed)
        for v in sorted(pattern.vertices, key=pattern.degree, reverse=True):
            if v in clique:
                continue
            if all(pattern.has_edge(v, w) for w in clique):
                clique.add(v)
        edges = tuple(
            (u, v)
            for u in sorted(clique)
            for v in sorted(clique)
            if u < v and frozenset((u, v)) in uncovered
        )
        for e in edges:
            uncovered.discard(frozenset(e))
        touched = tuple(sorted({v for e in edges for v in e}))
        kind = "clique" if len(touched) > 2 else "edge"
        units.append(JoinUnit(vertices=touched, edges=edges, kind=kind))
    return units


DECOMPOSITIONS = {
    "edge": edge_decomposition,
    "twintwig": twintwig_decomposition,
    "star": star_decomposition,
    "clique": clique_decomposition,
}


def decompose(pattern: Graph, strategy: str = "star") -> List[JoinUnit]:
    """Decompose ``pattern`` with the named strategy."""
    try:
        fn = DECOMPOSITIONS[strategy]
    except KeyError:
        raise KeyError(
            f"unknown decomposition {strategy!r}; options: {sorted(DECOMPOSITIONS)}"
        ) from None
    units = fn(pattern)
    covered = {frozenset(e) for u in units for e in u.edges}
    assert covered == {frozenset(e) for e in pattern.edges()}, "decomposition must cover E(P)"
    return units
