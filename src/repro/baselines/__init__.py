"""Baseline enumerators: QFrag-, SEED/CBF-, BiGJoin- and Afrati-style."""

from .decompose import (
    DECOMPOSITIONS,
    JoinUnit,
    clique_decomposition,
    decompose,
    edge_decomposition,
    star_decomposition,
    twintwig_decomposition,
)
from .inmemory import InMemoryResult, run_inmemory
from .joins import JoinBaseline, JoinResult, JoinRound, run_join_baseline
from .multiway import MultiwayResult, run_multiway
from .wcoj import MemoryBudgetExceeded, WCOJEnumerator, WCOJResult, run_wcoj

__all__ = [
    "DECOMPOSITIONS",
    "JoinUnit",
    "clique_decomposition",
    "decompose",
    "edge_decomposition",
    "star_decomposition",
    "twintwig_decomposition",
    "InMemoryResult",
    "run_inmemory",
    "JoinBaseline",
    "JoinResult",
    "JoinRound",
    "run_join_baseline",
    "MultiwayResult",
    "run_multiway",
    "MemoryBudgetExceeded",
    "WCOJEnumerator",
    "WCOJResult",
    "run_wcoj",
]
