"""Worst-case-optimal join enumerator — the BiGJoin stand-in.

BiGJoin (Ammar et al., PVLDB'18) evaluates subgraph queries with a
vertex-at-a-time worst-case-optimal join over Timely dataflow: all partial
bindings (prefixes) of the first i pattern vertices are materialized as a
batch, then jointly extended to i+1 by intersecting adjacency lists,
choosing the smallest candidate list first.  Batching bounds memory — the
shared-memory variant that skips it OOMs exactly where Table VI reports.

This implementation reproduces the algorithmic core and its cost profile:

* breadth-first prefix extension with the min-adjacency-list rule;
* configurable batch size (the paper used 100 000) limiting how many
  prefixes are in flight;
* peak-prefix accounting, so benchmarks can flag configurations whose
  peak working set would exceed a memory budget (the "OOM" rows);
* symmetry-breaking conditions applied as soon as both endpoints bind.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.graph import Graph, Vertex
from ..pattern.pattern_graph import PatternGraph

#: Bytes one bound vertex occupies in a prefix row.
VERTEX_BYTES = 4


class MemoryBudgetExceeded(RuntimeError):
    """Raised when the materialized prefixes outgrow the memory budget."""


@dataclass
class WCOJResult:
    """Outcome + cost profile of a WCOJ run."""

    count: int
    matches: Optional[List[Tuple[Vertex, ...]]]
    level_output_tuples: List[int] = field(default_factory=list)
    peak_prefixes: int = 0
    intersections: int = 0
    wall_seconds: float = 0.0

    @property
    def peak_bytes(self) -> int:
        width = len(self.level_output_tuples)
        return self.peak_prefixes * max(1, width) * VERTEX_BYTES

    def simulated_seconds(self, per_tuple_seconds: float = 2e-7) -> float:
        return (
            sum(self.level_output_tuples) + self.intersections
        ) * per_tuple_seconds


def _extension_order(pattern: PatternGraph) -> List[Vertex]:
    """Connectivity-first order: max bound-neighbors, then max degree."""
    graph = pattern.graph
    order = [max(pattern.vertices, key=lambda v: (graph.degree(v), -v))]
    rest = [v for v in pattern.vertices if v != order[0]]
    while rest:
        def bound_neighbors(v: Vertex) -> int:
            return sum(1 for w in graph.neighbors(v) if w in order)

        nxt = max(rest, key=lambda v: (bound_neighbors(v), graph.degree(v), -v))
        order.append(nxt)
        rest.remove(nxt)
    return order


class WCOJEnumerator:
    """Batched worst-case-optimal join over one data graph."""

    def __init__(
        self,
        pattern: PatternGraph,
        data: Graph,
        batch_size: int = 100_000,
        memory_budget_bytes: Optional[int] = None,
        order: Optional[Sequence[Vertex]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        self.pattern = pattern
        self.data = data
        self.batch_size = batch_size
        self.memory_budget_bytes = memory_budget_bytes
        self.order = list(order) if order is not None else _extension_order(pattern)
        if sorted(self.order) != list(pattern.vertices):
            raise ValueError("order must be a permutation of the pattern vertices")

    # ------------------------------------------------------------------
    def run(self, collect: bool = False) -> WCOJResult:
        pattern = self.pattern.graph
        data = self.data
        order = self.order
        pos = {u: i for i, u in enumerate(order)}
        conditions = self.pattern.symmetry_conditions
        # Conditions indexed by the later-bound endpoint.
        checks: List[List[Tuple[int, bool]]] = [[] for _ in order]
        for lo, hi in conditions:
            if pos[lo] < pos[hi]:
                checks[pos[hi]].append((pos[lo], True))   # value > prefix[i]
            else:
                checks[pos[lo]].append((pos[hi], False))  # value < prefix[i]
        # Bound neighbors per level (indices into the prefix).
        bound_nbrs: List[List[int]] = [
            [pos[w] for w in pattern.neighbors(u) if pos[w] < pos[u]]
            for u in order
        ]

        result = WCOJResult(count=0, matches=[] if collect else None)
        result.level_output_tuples = [0] * len(order)
        t0 = _time.perf_counter()

        sorted_vertices = list(data.vertices)
        n = len(order)
        final_perm = [order.index(u) for u in self.pattern.vertices]

        def charge(live: int) -> None:
            result.peak_prefixes = max(result.peak_prefixes, live)
            if (
                self.memory_budget_bytes is not None
                and live * n * VERTEX_BYTES > self.memory_budget_bytes
            ):
                raise MemoryBudgetExceeded(
                    f"{live} prefixes exceed budget "
                    f"{self.memory_budget_bytes} bytes"
                )

        def extend_batch(prefixes: List[Tuple[Vertex, ...]], level: int) -> None:
            if level == n:
                result.count += len(prefixes)
                if result.matches is not None:
                    result.matches.extend(
                        tuple(p[i] for i in final_perm) for p in prefixes
                    )
                return
            nbrs = bound_nbrs[level]
            lvl_checks = checks[level]
            out: List[Tuple[Vertex, ...]] = []
            for prefix in prefixes:
                if nbrs:
                    # Min-size adjacency list first (the WCOJ rule).
                    lists = sorted(
                        (data.neighbors(prefix[i]) for i in nbrs), key=len
                    )
                    pool = lists[0]
                    for other in lists[1:]:
                        pool = pool & other
                        result.intersections += 1
                else:
                    pool = sorted_vertices
                for v in pool:
                    if v in prefix:
                        continue
                    ok = True
                    for i, greater in lvl_checks:
                        if greater:
                            if not v > prefix[i]:
                                ok = False
                                break
                        elif not v < prefix[i]:
                            ok = False
                            break
                    if ok:
                        out.append(prefix + (v,))
                        if len(out) >= self.batch_size:
                            result.level_output_tuples[level] += len(out)
                            charge(len(prefixes) + len(out))
                            extend_batch(out, level + 1)
                            out = []
            if out:
                result.level_output_tuples[level] += len(out)
                charge(len(prefixes) + len(out))
                extend_batch(out, level + 1)

        roots = [(v,) for v in sorted_vertices]
        result.level_output_tuples[0] = len(roots)
        charge(len(roots))
        extend_batch(roots, 1)
        result.wall_seconds = _time.perf_counter() - t0
        return result


def run_wcoj(
    pattern: PatternGraph,
    data: Graph,
    batch_size: int = 100_000,
    memory_budget_bytes: Optional[int] = None,
    collect: bool = False,
) -> WCOJResult:
    """Convenience wrapper around :class:`WCOJEnumerator`."""
    return WCOJEnumerator(
        pattern, data, batch_size=batch_size, memory_budget_bytes=memory_budget_bytes
    ).run(collect=collect)
