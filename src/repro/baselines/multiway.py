"""One-round multiway join — the Afrati et al. (ICDE'13) stand-in.

The other DFS-style baseline: replicate ("shuffle") data edges to a grid of
reducers *before* enumeration, then let each reducer enumerate matches in
its local edge partition with zero further communication.

The hypercube (shares) scheme: give each pattern vertex u a share b_u with
Π b_u = p reducers; a reducer is a coordinate vector; a data edge (v, w)
that could realize pattern edge (u1, u2) must reach every reducer whose
u1/u2 coordinates are (h(v), h(w)) — so each edge is replicated
Π_{u ∉ {u1,u2}} b_u times per pattern edge.  That blind replication is
exactly why the approach "cannot scale to complex pattern graphs" (paper's
Section I) — the replication factor grows with every extra pattern vertex.

We use equal shares b = ⌈p^{1/n}⌉ and account replication exactly; each
reducer enumerates with the in-memory oracle and keeps the matches whose
vertex hashes equal its own coordinate (each match therefore surfaces at
exactly one reducer).
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graph.graph import Graph, Vertex
from ..pattern.isomorphism import enumerate_matches
from ..pattern.pattern_graph import PatternGraph


@dataclass
class MultiwayResult:
    """Outcome + replication accounting of a one-round multiway join."""

    count: int
    matches: Optional[List[Tuple[Vertex, ...]]]
    num_reducers: int
    share: int
    replicated_edges: int
    replication_bytes: int
    wall_seconds: float

    @property
    def replication_factor(self) -> float:
        """Average copies shipped per data edge."""
        return self.replicated_edges / max(1, self._data_edges)

    _data_edges: int = 1


def _share_for(num_reducers: int, n: int) -> int:
    """Equal share b with b^n ≥ num_reducers."""
    b = 1
    while b ** n < num_reducers:
        b += 1
    return b


def run_multiway(
    pattern: PatternGraph,
    data: Graph,
    num_reducers: int = 16,
    collect: bool = False,
) -> MultiwayResult:
    """Enumerate matches with the one-round hypercube multiway join."""
    n = pattern.n
    b = _share_for(num_reducers, n)
    coords = list(itertools.product(range(b), repeat=n))
    vertices = pattern.vertices
    pos = {u: i for i, u in enumerate(vertices)}

    def h(v: Vertex) -> int:
        return hash(v) % b

    t0 = _time.perf_counter()

    # --- Map phase: replicate each data edge to the reducers that may
    # need it for each pattern edge (both orientations).
    reducer_edges: Dict[Tuple[int, ...], set] = {c: set() for c in coords}
    replicated = 0
    pattern_edges = list(pattern.graph.edges())
    free_positions_cache: Dict[Tuple[int, int], List[int]] = {}
    for pu, pv in pattern_edges:
        i, j = pos[pu], pos[pv]
        free_positions_cache[(i, j)] = [k for k in range(n) if k not in (i, j)]

    for v, w in data.edges():
        hv, hw = h(v), h(w)
        for (i, j), free in free_positions_cache.items():
            for orient in ((hv, hw), (hw, hv)):
                for rest in itertools.product(range(b), repeat=len(free)):
                    coord = [0] * n
                    coord[i], coord[j] = orient
                    for k, val in zip(free, rest):
                        coord[k] = val
                    key = tuple(coord)
                    if (v, w) not in reducer_edges[key]:
                        reducer_edges[key].add((v, w))
                        replicated += 1

    # --- Reduce phase: local in-memory enumeration per reducer; a match
    # belongs to the reducer whose coordinate equals its vertex hashes.
    count = 0
    matches: Optional[List[Tuple[Vertex, ...]]] = [] if collect else None
    conditions = pattern.symmetry_conditions
    for coord, edges in reducer_edges.items():
        if not edges:
            continue
        local = Graph(edges)
        for match in enumerate_matches(
            pattern.graph, local, partial_order=conditions
        ):
            if all(h(match[i]) == coord[i] for i in range(n)):
                count += 1
                if matches is not None:
                    matches.append(match)

    result = MultiwayResult(
        count=count,
        matches=matches,
        num_reducers=len(coords),
        share=b,
        replicated_edges=replicated,
        replication_bytes=replicated * 8,
        wall_seconds=_time.perf_counter() - t0,
    )
    result._data_edges = data.num_edges
    return result
