"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``count``      count subgraph instances of a pattern in a data graph
``enumerate``  stream matches as they are found (optionally capped)
``query``      run a declarative BENU-QL query (locally or via --connect)
``serve``      run the resident query service (JSON lines over stdio/TCP)
``run``        run with full telemetry: metrics, tracing, profiling
``stats``      run and print the telemetry metric table
``plan``       generate, optimize and display an execution plan
``patterns``   list the built-in pattern graphs
``datasets``   list the bundled synthetic datasets

Data graphs come from ``--dataset <name>`` (bundled stand-ins) or
``--edges <file>`` (SNAP-style edge list).  ``repro run --trace out.json``
writes a Chrome ``trace_event`` file — open it in ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from .engine.benu import (
    build_plan,
    execute_plan,
    prepare_data,
    prepare_plan,
    run_benu,
)
from .engine.config import ADJACENCY_BACKENDS, EXECUTION_BACKENDS, BenuConfig
from .engine.control import ExecutionControl, QueryCancelled
from .engine.sinks import CallbackSink, JsonlSink, LimitSink
from .graph.datasets import DATASET_ORDER, DATASET_SPECS, load_dataset
from .graph.graph import Graph
from .graph.io import read_edge_list
from .graph.patterns import PATTERNS, get_pattern
from .metrics import format_bytes, format_table
from .pattern.pattern_graph import PatternGraph
from .plan.cost import GraphStats, estimate_plan_cost
from .plan.search import generate_best_plan
from .telemetry import TelemetryConfig, render_prometheus


def _load_data_graph(args: argparse.Namespace) -> Graph:
    if args.dataset and args.edges:
        raise SystemExit("give either --dataset or --edges, not both")
    if args.dataset:
        return load_dataset(args.dataset)
    if args.edges:
        return read_edge_list(args.edges)
    raise SystemExit("a data graph is required: --dataset <name> or --edges <file>")


def _config_from(
    args: argparse.Namespace,
    collect: bool = False,
    telemetry: Optional[TelemetryConfig] = None,
) -> BenuConfig:
    return BenuConfig(
        num_workers=args.workers,
        threads_per_worker=args.threads,
        cache_capacity_bytes=args.cache_bytes,
        adjacency_backend=args.adjacency_backend,
        execution_backend=args.execution_backend,
        split_threshold=args.tau,
        optimization_level=args.level,
        compressed=getattr(args, "compressed", False),
        collect=collect,
        relabel=not args.dataset,  # bundled datasets are pre-relabeled
        telemetry=telemetry,
        task_retries=getattr(args, "task_retries", 2),
        faults=getattr(args, "faults", None),
    )


def _add_run_options(
    parser: argparse.ArgumentParser, pattern_required: bool = True
) -> None:
    parser.add_argument("--pattern", required=pattern_required,
                        help="pattern name (see `patterns`)")
    parser.add_argument("--dataset", help="bundled dataset name (see `datasets`)")
    parser.add_argument("--edges", help="path to a SNAP-style edge list")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--cache-bytes", type=int, default=None)
    parser.add_argument("--tau", type=int, default=64, help="task-splitting threshold")
    parser.add_argument("--level", type=int, default=3, help="optimization level 0-3")
    parser.add_argument("--execution-backend", choices=EXECUTION_BACKENDS,
                        default="simulated",
                        help="runtime: simulated cluster (default), inline "
                             "interpreter, or real OS worker processes")
    parser.add_argument("--adjacency-backend", choices=ADJACENCY_BACKENDS,
                        default="frozenset",
                        help="adjacency layout: frozenset (default) or csr")
    parser.add_argument("--task-retries", type=int, default=2,
                        help="process backend: re-run lost task slices this "
                             "many times after a worker crash before failing")
    parser.add_argument("--faults", default=None, metavar="SCHEDULE",
                        help="deterministic fault-injection schedule, e.g. "
                             "'seed=7,worker.task:crash@3' (also honours the "
                             "BENU_FAULTS env var)")


def cmd_count(args: argparse.Namespace) -> int:
    data = _load_data_graph(args)
    pattern = get_pattern(args.pattern)
    result = run_benu(pattern, data, _config_from(args))
    print(result.count)
    if args.verbose:
        print(result.summary(), file=sys.stderr)
    return 0


def cmd_enumerate(args: argparse.Namespace) -> int:
    data = _load_data_graph(args)
    pattern = PatternGraph(get_pattern(args.pattern), args.pattern)
    config = _config_from(args)
    prepared = prepare_data(data, config)
    plan = prepare_plan(pattern, prepared, config)
    if args.output == "jsonl":
        out: object = JsonlSink(sys.stdout)
    else:
        out = CallbackSink(
            lambda match: print("\t".join(map(str, match)))
        )
    control = ExecutionControl()
    sink = (
        LimitSink(out, args.limit, control) if args.limit is not None else out
    )
    try:
        execute_plan(plan, prepared, config, sink=sink, control=control)
    except QueryCancelled as exc:
        if exc.reason != LimitSink.REASON:
            raise
        print(f"... (stopped after {args.limit} matches)", file=sys.stderr)
    return 0


def _format_metric_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def cmd_run(args: argparse.Namespace) -> int:
    data = _load_data_graph(args)
    pattern = PatternGraph(get_pattern(args.pattern), args.pattern)
    telemetry = TelemetryConfig(
        trace=args.trace is not None,
        profile=args.profile,
        sample_every=args.sample_every,
    )
    result = run_benu(pattern, data, _config_from(args, telemetry=telemetry))
    print(result.count)
    print(result.summary(), file=sys.stderr)
    if args.trace:
        result.telemetry.write_trace(args.trace, format=args.trace_format)
        target = (
            "chrome://tracing" if args.trace_format == "chrome" else "nested JSON"
        )
        print(f"trace written to {args.trace} ({target})", file=sys.stderr)
    if args.metrics:
        result.telemetry.write_metrics(args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    return 0


def _print_metric_table(registry) -> None:
    rows = []
    for metric in registry.metrics():
        for labels, value in metric.samples():
            label_text = ",".join(f"{k}={v}" for k, v in labels.items())
            if metric.kind == "histogram":
                rendered = (
                    f"count={value.count} mean={value.mean:.3g} "
                    f"min={value.min:.3g} max={value.max:.3g}"
                    if value.count
                    else "count=0"
                )
            else:
                rendered = _format_metric_value(value)
            rows.append([metric.name, metric.kind, label_text, rendered])
    print(format_table(["metric", "kind", "labels", "value"], rows))


def _service_request(connect: str, payload: dict) -> dict:
    """One request/response round-trip against ``benu serve --port``."""
    import socket

    host, _, port = connect.rpartition(":")
    if not port.isdigit():
        raise SystemExit(f"bad --connect address {connect!r}; expected HOST:PORT")
    with socket.create_connection((host or "127.0.0.1", int(port)), timeout=30) as sock:
        fh = sock.makefile("rw", encoding="utf-8", newline="\n")
        fh.write(json.dumps(payload) + "\n")
        fh.flush()
        line = fh.readline()
    if not line:
        raise SystemExit("service closed the connection")
    response = json.loads(line)
    if not response.get("ok"):
        raise SystemExit(f"service error: {response.get('message')}")
    return response


def _print_service_stats(stats: dict) -> None:
    sched = stats.get("scheduler", {})
    events = stats.get("events", {})
    print(
        f"queries: running={sched.get('running')} queued={sched.get('queued')}"
        f"  events: emitted={events.get('emitted')} dropped={events.get('dropped')}"
    )
    faults = stats.get("faults", {})
    if faults.get("enabled"):
        print(f"faults: injected={faults.get('injected')} (chaos schedule armed)")
    replicas = stats.get("replicas")
    if replicas:
        dead = sorted(ep for ep, state in replicas.items() if state != "alive")
        if dead:
            print(f"replicas marked dead: {', '.join(dead)}")
    progress = stats.get("progress", {})
    if progress:
        rows = []
        for query_id, p in sorted(progress.items()):
            eta = p.get("eta_seconds")
            rows.append([
                query_id,
                f"{p.get('tasks_done')}/{p.get('total_tasks') or '?'}",
                f"{p.get('fraction', 0.0):.1%}",
                p.get("embeddings"),
                f"{eta:.1f}s" if eta is not None else "?",
            ])
        print(format_table(["query", "tasks", "done", "embeddings", "eta"], rows))
    slow = stats.get("slow_queries", [])
    if slow:
        print(f"slow queries ({len(slow)}):")
        for entry in slow:
            print(
                f"  {entry.get('query_id')} {entry.get('pattern')}@"
                f"{entry.get('graph')} {entry.get('wall_seconds', 0.0):.2f}s"
                f" (threshold {entry.get('threshold_seconds')}s)"
            )


def _stats_from_service(args: argparse.Namespace) -> int:
    while True:
        if args.format == "prometheus":
            response = _service_request(args.connect, {"op": "metrics"})
            print(response["metrics"], end="")
        else:
            response = _service_request(args.connect, {"op": "stats"})
            stats = response["stats"]
            if args.format == "json":
                print(json.dumps(stats, indent=1, sort_keys=True))
            else:
                _print_service_stats(stats)
        if not args.watch:
            return 0
        time.sleep(args.watch)


def cmd_stats(args: argparse.Namespace) -> int:
    if args.connect:
        return _stats_from_service(args)
    if args.watch:
        raise SystemExit("--watch needs --connect HOST:PORT (a live service)")
    if not args.pattern:
        raise SystemExit("--pattern is required (unless using --connect)")
    data = _load_data_graph(args)
    pattern = PatternGraph(get_pattern(args.pattern), args.pattern)
    telemetry = TelemetryConfig(trace=False, profile=args.profile)
    result = run_benu(pattern, data, _config_from(args, telemetry=telemetry))
    if args.format == "prometheus":
        print(render_prometheus(result.telemetry.registry), end="")
    elif args.format == "json":
        print(json.dumps(result.telemetry.as_dict(), indent=1, sort_keys=True))
    else:
        _print_metric_table(result.telemetry.registry)
    print(result.summary(), file=sys.stderr)
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    pattern = PatternGraph(get_pattern(args.pattern), args.pattern)
    stats = GraphStats(args.vertices, args.edges_count)
    if args.order:
        order = [int(x) for x in args.order.split(",")]
        plan = build_plan(pattern, order=order, optimization_level=args.level,
                          compressed=args.compressed)
        print(plan)
    else:
        result = generate_best_plan(
            pattern, stats, optimization_level=args.level, compressed=args.compressed
        )
        plan = result.plan
        print(plan)
        s = result.stats
        print(
            f"\nsearch: alpha={s.alpha} ({s.relative_alpha:.1%}) "
            f"beta={s.beta} ({s.relative_beta:.2%}) "
            f"time={s.elapsed_seconds * 1000:.1f}ms",
            file=sys.stderr,
        )
    cost = estimate_plan_cost(plan, stats)
    print(
        f"\nestimated cost: communication={cost.communication:.4g} "
        f"computation={cost.computation:.4g}",
        file=sys.stderr,
    )
    return 0


def _parse_graph_spec(spec: str) -> tuple:
    name, sep, source = spec.partition("=")
    if not sep or not name or not source:
        raise SystemExit(f"bad graph spec {spec!r}; expected NAME=SOURCE")
    return name, source


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import BenuService, serve_socket, serve_stdio
    from .service.protocol import ShardIdentity

    identity = None
    if args.shard_index is not None or args.shard_count is not None:
        if args.shard_index is None or args.shard_count is None:
            raise SystemExit(
                "--shard-index and --shard-count must be given together"
            )
        identity = ShardIdentity(
            shard_index=args.shard_index,
            shard_count=args.shard_count,
            epoch=args.epoch,
        )
    config = BenuConfig(
        num_workers=args.workers,
        threads_per_worker=args.threads,
        cache_capacity_bytes=args.cache_bytes,
        adjacency_backend=args.adjacency_backend,
        execution_backend=args.execution_backend,
        split_threshold=args.tau,
        optimization_level=args.level,
        task_retries=args.task_retries,
        faults=args.faults,
    )
    service = BenuService(
        config=config,
        max_concurrent=args.max_concurrent,
        max_queued=args.max_queued,
        memory_budget_bytes=args.memory_budget_bytes,
        catalog_capacity_bytes=args.catalog_bytes,
        max_worker_processes=args.max_worker_processes,
        event_log_path=args.event_log,
        slow_query_seconds=args.slow_query_seconds,
    )
    partition = identity.partition_info() if identity is not None else None
    try:
        for spec in args.graph or []:
            name, dataset = _parse_graph_spec(spec)
            info = service.register_graph(
                name, load_dataset(dataset), relabel=False,
                partition=partition,
            )
            print(f"registered {name}: {info}", file=sys.stderr)
        for spec in args.edges_graph or []:
            name, path = _parse_graph_spec(spec)
            info = service.register_graph(
                name, read_edge_list(path), partition=partition
            )
            print(f"registered {name}: {info}", file=sys.stderr)
        if args.port is not None:
            server = serve_socket(
                service, host=args.host, port=args.port, identity=identity
            )
            host, port = server.server_address[:2]
            role = (
                f"shard {identity.shard_index}/{identity.shard_count}"
                if identity is not None else "node"
            )
            print(f"serving on {host}:{port} as {role}", file=sys.stderr)
            try:
                server.serve_forever(poll_interval=0.2)
            except KeyboardInterrupt:
                pass
            finally:
                server.server_close()
            return 0
        return serve_stdio(service, identity=identity)
    finally:
        service.close()


def cmd_route(args: argparse.Namespace) -> int:
    from .shard import RouterProtocol, ShardRouter, TCPShardClient, route_stdio

    clients = []
    for spec in args.shard:
        host, sep, port = spec.rpartition(":")
        if not sep:
            raise SystemExit(f"bad shard address {spec!r}; expected HOST:PORT")
        clients.append(
            TCPShardClient(
                host,
                int(port),
                connect_timeout=args.connect_timeout,
                read_timeout=args.read_timeout,
            )
        )
    router = ShardRouter(clients, expected_epoch=args.epoch)
    print(
        f"routing over {router.shard_count} partitions "
        f"({len(clients)} nodes, epoch {router.epoch})",
        file=sys.stderr,
    )
    try:
        for spec in args.graph or []:
            name, dataset = _parse_graph_spec(spec)
            responses = router.register(name, dataset=dataset)
            print(
                f"registered {name} on {len(responses)} nodes",
                file=sys.stderr,
            )
        if args.port is not None:
            import socketserver
            import threading

            protocol_holder = router

            class _RouteHandler(socketserver.StreamRequestHandler):
                def handle(self) -> None:
                    protocol = RouterProtocol(protocol_holder)
                    for raw in self.rfile:
                        line = raw.decode("utf-8", "replace").strip()
                        if not line:
                            continue
                        self.wfile.write(
                            (protocol.handle_line_json(line) + "\n").encode()
                        )
                        if protocol.shutdown_requested:
                            threading.Thread(
                                target=self.server.shutdown, daemon=True
                            ).start()
                            return

            class _RouteServer(socketserver.ThreadingTCPServer):
                allow_reuse_address = True
                daemon_threads = True

            server = _RouteServer((args.host, args.port), _RouteHandler)
            host, port = server.server_address[:2]
            print(f"router listening on {host}:{port}", file=sys.stderr)
            try:
                server.serve_forever(poll_interval=0.2)
            except KeyboardInterrupt:
                pass
            finally:
                server.server_close()
            return 0
        return route_stdio(router)
    finally:
        router.close()


def _load_query_graph(args: argparse.Namespace):
    """The query command's data graph: plain, or labeled via --labels."""
    data = _load_data_graph(args)
    if not args.labels:
        return data
    from .graph.io import read_label_list
    from .labeled.graphs import LabeledGraph

    label_map = read_label_list(args.labels)
    # Vertices absent from the file carry label None (unconstrained) —
    # the same convention the query front-end uses for unlabeled
    # pattern vertices.
    return LabeledGraph(
        data.edges(),
        {v: label_map.get(v) for v in data.vertices},
        vertices=data.vertices,
    )


def _explain_query(args: argparse.Namespace) -> int:
    from .lang import lower_query, pretty_tree
    from .labeled.graphs import LabeledGraph

    lowered = lower_query(args.text)
    print("logical tree:")
    print(pretty_tree(lowered.tree))
    fired = ", ".join(lowered.rules_fired) if lowered.rules_fired else "(none)"
    print(f"\nrules fired: {fired}")
    if lowered.unsatisfiable:
        print(
            "\nquery is unsatisfiable (conflicting label predicates); "
            "it returns an empty result without executing"
        )
        return 0
    data = _load_query_graph(args)
    config = _config_from(args)
    if lowered.is_labeled:
        from .labeled.enumerate import prepare_labeled_data
        from .labeled.plans import labelize_plan

        if not isinstance(data, LabeledGraph):
            raise SystemExit(
                "query uses label predicates; give --labels FILE"
            )
        prepared, labeled = prepare_labeled_data(data, config)
        plan = prepare_plan(lowered.pattern, prepared, config)
        plan = labelize_plan(plan, lowered.pattern, labeled)
    else:
        plain = data.graph if isinstance(data, LabeledGraph) else data
        prepared = prepare_data(plain, config)
        plan = prepare_plan(lowered.pattern, prepared, config)
    print("\nphysical plan:")
    print(plan)
    return 0


def _remote_query(args: argparse.Namespace) -> int:
    """Run one BENU-QL query against a live ``serve``/``route`` endpoint.

    A single persistent connection carries submit and every poll —
    required because both protocols scope query ids to the serving
    process, and the stdio/TCP servers may build per-connection state.
    """
    import socket

    if not args.graph:
        raise SystemExit("--connect needs --graph NAME (a registered graph)")
    host, _, port = args.connect.rpartition(":")
    if not port.isdigit():
        raise SystemExit(
            f"bad --connect address {args.connect!r}; expected HOST:PORT"
        )
    request: dict = {"op": "query", "text": args.text, "graph": args.graph}
    if args.limit is not None:
        request["limit"] = args.limit
    with socket.create_connection(
        (host or "127.0.0.1", int(port)), timeout=120
    ) as sock:
        fh = sock.makefile("rw", encoding="utf-8", newline="\n")

        def ask(payload: dict) -> dict:
            fh.write(json.dumps(payload) + "\n")
            fh.flush()
            line = fh.readline()
            if not line:
                raise SystemExit("service closed the connection")
            response = json.loads(line)
            if not response.get("ok"):
                print(
                    f"query error: {response.get('message')}", file=sys.stderr
                )
                if response.get("snippet"):
                    print(response["snippet"], file=sys.stderr)
                raise SystemExit(1)
            return response

        submitted = ask(request)
        query_id = submitted["query"]
        kind = submitted.get("kind")
        if kind == "stream":
            cursor = 0
            while True:
                page = ask(
                    {
                        "op": "poll",
                        "query": query_id,
                        "limit": 256,
                        "cursor": cursor,
                    }
                )
                for match in page.get("matches", []):
                    print("\t".join(map(str, match)))
                cursor = page.get("cursor", cursor)
                if page.get("done"):
                    return 0
                time.sleep(0.01)
        while True:
            response = ask({"op": "poll", "query": query_id, "wait": 10.0})
            if response.get("done"):
                break
        if kind == "groups":
            for key, value in sorted(
                (response.get("groups") or {}).items(),
                key=lambda kv: str(kv[0]),
            ):
                print(f"{key}\t{value}")
            return 0
        print(response.get("count", 0))
        return 0


def cmd_query(args: argparse.Namespace) -> int:
    from .lang import QueryError, run_query

    try:
        if args.connect:
            return _remote_query(args)
        if args.explain:
            return _explain_query(args)
        data = _load_query_graph(args)
        result = run_query(args.text, data, _config_from(args))
    except QueryError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        snippet = exc.snippet()
        if snippet:
            print(snippet, file=sys.stderr)
        return 1
    if result.kind == "count":
        print(result.count)
        return 0
    rows = result.rows()
    if args.limit is not None and result.kind == "stream":
        rows = rows[: args.limit]
    for row in rows:
        print("\t".join(map(str, row)))
    return 0


def cmd_patterns(args: argparse.Namespace) -> int:
    rows = [
        [name, p.num_vertices, p.num_edges]
        for name, p in sorted(PATTERNS.items())
    ]
    print(format_table(["name", "vertices", "edges"], rows))
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_ORDER:
        spec = DATASET_SPECS[name]
        if args.load:
            g = load_dataset(name)
            rows.append([name, spec.paper_name, g.num_vertices, g.num_edges])
        else:
            rows.append([name, spec.paper_name, spec.num_vertices, "(lazy)"])
    print(format_table(["name", "stands in for", "|V|", "|E|"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BENU distributed subgraph enumeration (ICDE'19 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("count", help="count subgraph instances")
    _add_run_options(p)
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_count)

    p = sub.add_parser("enumerate", help="stream matches as they are found")
    _add_run_options(p)
    p.add_argument("--limit", type=int, default=None,
                   help="stop the run after N matches (early termination)")
    p.add_argument("--output", choices=("tsv", "jsonl"), default="tsv",
                   help="tab-separated ids (default) or one JSON array per line")
    p.set_defaults(func=cmd_enumerate)

    p = sub.add_parser(
        "run", help="run with telemetry: metrics, tracing, profiling"
    )
    _add_run_options(p)
    p.add_argument("--compressed", action="store_true",
                   help="VCBC-compressed output (the paper's default mode)")
    p.add_argument("--trace", metavar="FILE",
                   help="write a trace of the run to FILE")
    p.add_argument("--trace-format", choices=("chrome", "json"),
                   default="chrome",
                   help="chrome trace_event (chrome://tracing) or nested JSON")
    p.add_argument("--metrics", metavar="FILE",
                   help="write the full metric registry to FILE as JSON")
    p.add_argument("--profile", action="store_true",
                   help="compile sampling probes into the hot loop")
    p.add_argument("--sample-every", type=int, default=64,
                   help="profile every Nth instruction execution")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("stats", help="run and print the telemetry metrics")
    _add_run_options(p, pattern_required=False)
    p.add_argument("--compressed", action="store_true")
    p.add_argument("--profile", action="store_true",
                   help="include sampled per-instruction timings")
    p.add_argument("--format", choices=("table", "prometheus", "json"),
                   default="table",
                   help="metric table (default), Prometheus text "
                        "exposition, or the full JSON export")
    p.add_argument("--connect", metavar="HOST:PORT",
                   help="read stats from a running `serve --port` service "
                        "instead of executing a query")
    p.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                   help="with --connect: refresh every SECONDS (live "
                        "progress and ETA per in-flight query)")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("plan", help="show an execution plan")
    p.add_argument("--pattern", required=True)
    p.add_argument("--order", help="comma-separated matching order, e.g. 1,3,2")
    p.add_argument("--level", type=int, default=3)
    p.add_argument("--compressed", action="store_true")
    p.add_argument("--vertices", type=int, default=1_000_000,
                   help="assumed |V| for the cost model")
    p.add_argument("--edges-count", type=int, default=10_000_000,
                   help="assumed |E| for the cost model")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser(
        "serve", help="run the resident query service (JSON-lines protocol)"
    )
    p.add_argument("--graph", action="append", metavar="NAME=DATASET",
                   help="register a bundled dataset at startup (repeatable)")
    p.add_argument("--edges-graph", action="append", metavar="NAME=FILE",
                   help="register a SNAP-style edge list at startup (repeatable)")
    p.add_argument("--port", type=int, default=None,
                   help="serve on a local TCP socket instead of stdio (0 = ephemeral)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--max-concurrent", type=int, default=4,
                   help="queries executing at once")
    p.add_argument("--max-queued", type=int, default=16,
                   help="queries parked beyond that before fast-reject")
    p.add_argument("--memory-budget-bytes", type=int, default=None,
                   help="cap on reserved result-buffer bytes across queries")
    p.add_argument("--catalog-bytes", type=int, default=None,
                   help="graph catalog capacity (LRU eviction beyond it)")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--cache-bytes", type=int, default=None)
    p.add_argument("--tau", type=int, default=64)
    p.add_argument("--level", type=int, default=3)
    p.add_argument("--execution-backend", choices=EXECUTION_BACKENDS,
                   default="simulated",
                   help="runtime queries execute on; 'process' fans each "
                        "query out over real OS worker processes")
    p.add_argument("--adjacency-backend", choices=ADJACENCY_BACKENDS,
                   default="frozenset")
    p.add_argument("--max-worker-processes", type=int, default=None,
                   help="machine-wide cap on worker processes across all "
                        "concurrent process-backend queries (default: cores)")
    p.add_argument("--event-log", metavar="FILE", default=None,
                   help="append every lifecycle event to FILE as JSON lines")
    p.add_argument("--slow-query-seconds", type=float, default=None,
                   help="log queries slower than this (stats.slow_queries "
                        "and a slow_query event with a trace summary)")
    p.add_argument("--task-retries", type=int, default=2,
                   help="process backend: re-run lost task slices this many "
                        "times after a worker crash before failing")
    p.add_argument("--faults", default=None, metavar="SCHEDULE",
                   help="deterministic fault-injection schedule for chaos "
                        "testing (also honours the BENU_FAULTS env var)")
    p.add_argument("--shard-index", type=int, default=None,
                   help="serve as shard I of a sharded deployment "
                        "(registrations keep only the owned task slice)")
    p.add_argument("--shard-count", type=int, default=None,
                   help="total shards N in the deployment")
    p.add_argument("--epoch", type=int, default=0,
                   help="deployment generation; a router refuses to mix epochs")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "route",
        help="fan-out/merge router over `serve --shard-index` nodes",
    )
    p.add_argument("--shard", action="append", metavar="HOST:PORT",
                   required=True,
                   help="a shard node to route over (repeatable; nodes "
                        "sharing a shard index are replicas)")
    p.add_argument("--graph", action="append", metavar="NAME=DATASET",
                   help="register a bundled dataset on every shard at startup")
    p.add_argument("--epoch", type=int, default=None,
                   help="required deployment epoch (default: first node's)")
    p.add_argument("--connect-timeout", type=float, default=None,
                   help="per-hop TCP connect timeout in seconds (default 5)")
    p.add_argument("--read-timeout", type=float, default=None,
                   help="per-request shard read timeout in seconds "
                        "(default 30)")
    p.add_argument("--port", type=int, default=None,
                   help="serve the merged protocol on TCP instead of stdio")
    p.add_argument("--host", default="127.0.0.1")
    p.set_defaults(func=cmd_route)

    p = sub.add_parser(
        "query", help="run a declarative BENU-QL query"
    )
    p.add_argument("text", metavar="QUERY",
                   help='e.g. "MATCH (a)-(b), (b)-(c), (a)-(c) '
                        'RETURN COUNT(*)"')
    p.add_argument("--dataset", help="bundled dataset name (see `datasets`)")
    p.add_argument("--edges", help="path to a SNAP-style edge list")
    p.add_argument("--labels", metavar="FILE",
                   help="vertex label file ('vertex label' per line); "
                        "required for queries with label predicates")
    p.add_argument("--limit", type=int, default=None,
                   help="cap the number of returned matches")
    p.add_argument("--explain", action="store_true",
                   help="print the logical tree, fired optimizer rules and "
                        "the physical plan instead of executing")
    p.add_argument("--connect", metavar="HOST:PORT",
                   help="run against a live `serve --port` node or "
                        "`route --port` router instead of locally")
    p.add_argument("--graph", default=None,
                   help="with --connect: name of the registered graph")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--cache-bytes", type=int, default=None)
    p.add_argument("--tau", type=int, default=64)
    p.add_argument("--level", type=int, default=3)
    p.add_argument("--execution-backend", choices=EXECUTION_BACKENDS,
                   default="simulated")
    p.add_argument("--adjacency-backend", choices=ADJACENCY_BACKENDS,
                   default="frozenset")
    p.add_argument("--task-retries", type=int, default=2)
    p.add_argument("--faults", default=None, metavar="SCHEDULE")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("patterns", help="list built-in patterns")
    p.set_defaults(func=cmd_patterns)

    p = sub.add_parser("datasets", help="list bundled datasets")
    p.add_argument("--load", action="store_true", help="materialize to show |E|")
    p.set_defaults(func=cmd_datasets)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
