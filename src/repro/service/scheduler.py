"""Admission control and concurrent execution of service queries.

RADS-style robustness: the service never falls over from load — it
bounds it.  The scheduler runs at most ``max_concurrent`` queries on a
shared worker pool, parks at most ``max_queued`` more in a bounded
queue, and *fast-rejects* everything beyond that with a typed
:class:`~repro.service.errors.AdmissionError`, synchronously at submit
time, without touching in-flight queries.  An optional memory budget
does the same for reserved result-buffer bytes.

Deadlines compose with queueing: a query whose deadline expires while
parked is failed without ever running (its first control check fires
before any work).  Deadline accounting is *absolute*, not local: submit
takes the caller's wall-clock deadline (``deadline_at``, epoch seconds)
rather than starting a fresh budget at enqueue, so on a remote shard the
time a query already spent at the router — and will spend parked in this
queue — counts against the one global budget.  A query arriving with an
exhausted budget is fast-rejected synchronously, before taking a slot.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional

from ..engine.control import DeadlineExpired
from ..faults import NULL_INJECTOR, SITE_SCHEDULER_ADMIT
from ..telemetry.snapshot import (
    G_SERVICE_QUEUED,
    G_SERVICE_RUNNING,
    M_SERVICE_REJECTED,
)
from .errors import AdmissionError, ServiceClosedError


class WorkerSlotPool:
    """Caps the machine's *total* OS worker processes across queries.

    Process-backend queries each want a pool of worker processes; running
    ``max_concurrent`` of them with ``num_workers`` each would oversubscribe
    the machine ``max_concurrent``-fold.  This pool makes the cap global:
    a query :meth:`acquire`\\ s before forking and is granted *up to* its
    requested worker count — possibly fewer under contention, never less
    than one — so concurrent queries share the cores instead of stacking
    pools.  Waits are control-checked: a cancel or an expired deadline
    interrupts a query still parked at the slot gate.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("need at least one worker slot")
        self.max_workers = max_workers
        self._free = max_workers
        self._cond = threading.Condition()

    @property
    def in_use(self) -> int:
        with self._cond:
            return self.max_workers - self._free

    def acquire(self, requested: int, control=None) -> int:
        """Block until ≥1 slot frees; return the granted worker count."""
        if requested < 1:
            raise ValueError("need at least one worker")
        with self._cond:
            while self._free < 1:
                if control is not None:
                    control.check()
                self._cond.wait(timeout=0.05)
            granted = min(requested, self._free)
            self._free -= granted
            return granted

    def release(self, granted: int) -> None:
        with self._cond:
            self._free += granted
            if self._free > self.max_workers:
                raise ValueError("released more worker slots than acquired")
            self._cond.notify_all()


class QueryScheduler:
    """Bounded concurrent executor with fast-reject admission control."""

    def __init__(
        self,
        max_concurrent: int = 4,
        max_queued: int = 16,
        memory_budget_bytes: Optional[int] = None,
        registry=None,
        injector=NULL_INJECTOR,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("need at least one concurrent slot")
        if max_queued < 0:
            raise ValueError("queue bound must be non-negative")
        self.max_concurrent = max_concurrent
        self.max_queued = max_queued
        self.memory_budget_bytes = memory_budget_bytes
        self._registry = registry
        self._injector = injector
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="benu-query"
        )
        self._lock = threading.Lock()
        self._running = 0
        self._queued = 0
        self._reserved_bytes = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    @property
    def reserved_bytes(self) -> int:
        with self._lock:
            return self._reserved_bytes

    def _gauges(self) -> None:
        if self._registry is None:
            return
        self._registry.gauge(G_SERVICE_RUNNING, "queries executing now").set(
            self._running
        )
        self._registry.gauge(G_SERVICE_QUEUED, "queries parked in the queue").set(
            self._queued
        )

    def _reject(self, message: str, kind: str) -> AdmissionError:
        if self._registry is not None:
            self._registry.counter(
                M_SERVICE_REJECTED,
                "queries fast-rejected at admission",
                ("kind",),
            ).inc(kind=kind)
        return AdmissionError(message, running=self._running, queued=self._queued)

    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[[], object],
        estimated_bytes: int = 0,
        deadline_at: Optional[float] = None,
    ) -> Future:
        """Admit and eventually run ``fn``; raise typed errors otherwise.

        ``estimated_bytes`` is the query's reserved buffer memory,
        checked against the memory budget while the query is in flight.
        ``deadline_at`` is the caller's absolute wall deadline (epoch
        seconds): already exhausted at enqueue means a synchronous
        :class:`~repro.engine.control.DeadlineExpired` — no slot, no
        queue entry, no work.
        """
        if self._injector.enabled:
            self._injector.hit(SITE_SCHEDULER_ADMIT)
        if deadline_at is not None and time.time() >= deadline_at:
            if self._registry is not None:
                self._registry.counter(
                    M_SERVICE_REJECTED,
                    "queries fast-rejected at admission",
                    ("kind",),
                ).inc(kind="deadline")
            raise DeadlineExpired(0.0)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            in_flight = self._running + self._queued
            if in_flight >= self.max_concurrent + self.max_queued:
                raise self._reject(
                    f"query load is at capacity ({self._running} running, "
                    f"{self._queued} queued); retry later",
                    kind="concurrency",
                )
            if (
                self.memory_budget_bytes is not None
                and estimated_bytes > 0
                and in_flight > 0
                and self._reserved_bytes + estimated_bytes
                > self.memory_budget_bytes
            ):
                raise self._reject(
                    f"memory budget exhausted ({self._reserved_bytes} of "
                    f"{self.memory_budget_bytes} bytes reserved)",
                    kind="memory",
                )
            self._queued += 1
            self._reserved_bytes += estimated_bytes
            self._gauges()

        def wrapped():
            with self._lock:
                self._queued -= 1
                self._running += 1
                self._gauges()
            try:
                return fn()
            finally:
                with self._lock:
                    self._running -= 1
                    self._reserved_bytes -= estimated_bytes
                    self._gauges()

        try:
            return self._executor.submit(wrapped)
        except RuntimeError as exc:  # executor shut down under us
            with self._lock:
                self._queued -= 1
                self._reserved_bytes -= estimated_bytes
                self._gauges()
            raise ServiceClosedError("service is shut down") from exc

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=wait)
