"""The resident query service: catalog, plan cache, scheduler, streaming.

One-shot :func:`~repro.engine.benu.run_benu` pays the whole pipeline per
call; this package is the long-lived engine that amortizes it — register
data graphs once (:class:`GraphCatalog`), share plan search across
isomorphic patterns (:class:`PlanCache`), bound concurrency and memory
(:class:`QueryScheduler`), and stream matches in bounded batches
(:class:`QueryHandle`).  :class:`BenuService` ties them together;
``python -m repro serve`` exposes it over a line-delimited JSON protocol.
"""

from .catalog import CatalogEntry, GraphCatalog
from .errors import (
    AdmissionError,
    DeadlineExpired,
    InvalidQueryError,
    QueryCancelled,
    ServiceClosedError,
    ServiceError,
    UnknownGraphError,
    UnknownQueryError,
)
from .plan_cache import PlanCache, PlanCacheKey
from .protocol import (
    PROTOCOL_VERSION,
    ServiceProtocol,
    ShardIdentity,
    serve_socket,
    serve_stdio,
)
from .scheduler import QueryScheduler
from .service import BenuService
from .streaming import FetchResult, QueryHandle, QueryStatus, StreamBuffer

__all__ = [
    "BenuService",
    "CatalogEntry",
    "GraphCatalog",
    "PlanCache",
    "PlanCacheKey",
    "QueryScheduler",
    "QueryHandle",
    "QueryStatus",
    "StreamBuffer",
    "FetchResult",
    "PROTOCOL_VERSION",
    "ServiceProtocol",
    "ShardIdentity",
    "serve_stdio",
    "serve_socket",
    "AdmissionError",
    "DeadlineExpired",
    "InvalidQueryError",
    "QueryCancelled",
    "ServiceClosedError",
    "ServiceError",
    "UnknownGraphError",
    "UnknownQueryError",
]
