"""BenuService: the resident, concurrent subgraph-query engine.

One service instance owns the shared state every query reuses — the
graph catalog, the canonical plan cache, the scheduler and a telemetry
registry — and exposes the in-process API the CLI's ``serve`` command,
the tests and the benchmarks all drive:

    service = BenuService()
    service.register_graph("g", my_graph)
    handle = service.submit("triangle", "g")
    for match in handle.matches():
        ...

Queries run on the scheduler's worker pool; each one pins its catalog
entry, checks out a warm cache pool, resolves its plan through the
cache, executes with a cooperative control (deadline + cancel, checked
at task boundaries) and streams matches — translated to original ids —
through a bounded buffer.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import replace as _replace
from typing import Dict, Optional, Union

from ..engine.benu import execute_plan
from ..engine.cluster import SimulatedCluster
from ..engine.config import BenuConfig
from ..engine.control import (
    DeadlineExpired,
    ExecutionControl,
    QueryCancelled,
)
from ..engine.granularity import task_cost_key
from ..engine.sinks import GroupCountSink, LimitSink, ProjectingSink
from ..faults import get_injector, resolve_faults
from ..graph.graph import Graph
from ..graph.patterns import get_pattern
from ..labeled.plans import labelize_plan, start_label_pool
from ..lang.errors import QuerySemanticError
from ..lang.lowering import LoweredQuery, lower_query
from ..pattern.pattern_graph import PatternGraph
from ..telemetry.events import (
    EV_FAULT_INJECTED,
    EV_PLAN_LOWERED,
    EV_PLAN_RESOLVED,
    EV_QUERY_CANCELLED,
    EV_QUERY_FINISHED,
    EV_QUERY_QERROR,
    EV_QUERY_REJECTED,
    EV_QUERY_STARTED,
    EV_QUERY_SUBMITTED,
    EV_SLOW_QUERY,
    EventLog,
    FileEventSink,
)
from ..telemetry.progress import QueryProgress
from ..telemetry.registry import MetricsRegistry
from ..telemetry.runtime import Telemetry, TelemetryConfig
from ..telemetry.snapshot import (
    H_QUERY_QERROR,
    H_QUERY_WALL_SECONDS,
    M_FAULTS_INJECTED,
    M_LANG_RULES,
    M_SERVICE_QUERIES,
    QERROR_BUCKETS,
)
from .catalog import GraphCatalog
from .errors import InvalidQueryError, UnknownQueryError
from .plan_cache import PlanCache
from .scheduler import QueryScheduler, WorkerSlotPool
from .streaming import QueryHandle, QueryStatus, StreamBuffer

PatternLike = Union[str, Graph, PatternGraph]

#: Rough per-match buffer cost used by memory admission (tuple of ints).
_BYTES_PER_MATCH_SLOT = 8


class BenuService:
    """A long-lived query service over registered data graphs."""

    def __init__(
        self,
        config: Optional[BenuConfig] = None,
        max_concurrent: int = 4,
        max_queued: int = 16,
        memory_budget_bytes: Optional[int] = None,
        catalog_capacity_bytes: Optional[int] = None,
        batch_size: int = 256,
        max_buffered_batches: int = 64,
        trace_queries: bool = False,
        max_worker_processes: Optional[int] = None,
        event_log_capacity: int = 4096,
        event_log_path: Optional[str] = None,
        slow_query_seconds: Optional[float] = None,
    ) -> None:
        self.default_config = config or BenuConfig()
        self.batch_size = batch_size
        self.max_buffered_batches = max_buffered_batches
        self.trace_queries = trace_queries
        self.registry = MetricsRegistry()
        #: The service flight recorder: every query's lifecycle, ring-
        #: buffered in memory, optionally mirrored to a JSONL file.
        self.events = EventLog(
            capacity=event_log_capacity, registry=self.registry
        )
        self._event_file_sink: Optional[FileEventSink] = None
        if event_log_path is not None:
            self._event_file_sink = FileEventSink(event_log_path)
            self.events.add_sink(self._event_file_sink)
        #: Wall-time threshold past which a query lands in the slow-query
        #: log (None = disabled).
        self.slow_query_seconds = slow_query_seconds
        self._slow_queries: "deque" = deque(maxlen=32)
        #: One deterministic fault injector for the whole service, built
        #: from the default config (or the BENU_FAULTS env var).  When no
        #: schedule is configured this is the no-op NULL_INJECTOR and
        #: every site's guard is a single attribute check.
        self.injector = get_injector(
            resolve_faults(self.default_config.faults),
            on_fire=self._on_fault_fired,
        )
        self.catalog = GraphCatalog(
            capacity_bytes=catalog_capacity_bytes,
            registry=self.registry,
            events=self.events,
            injector=self.injector,
        )
        self.plan_cache = PlanCache(registry=self.registry)
        self.scheduler = QueryScheduler(
            max_concurrent=max_concurrent,
            max_queued=max_queued,
            memory_budget_bytes=memory_budget_bytes,
            registry=self.registry,
            injector=self.injector,
        )
        # Machine-wide cap on OS worker processes, shared by every
        # process-backend query in flight (not a per-query allowance).
        self.worker_slots = WorkerSlotPool(
            max_worker_processes
            if max_worker_processes is not None
            else max(2, os.cpu_count() or 2)
        )
        self._queries: Dict[str, QueryHandle] = {}
        self._seq = 0
        self._lock = threading.Lock()
        self._closed = False

    def _on_fault_fired(self, site: str, action: str, hit: int) -> None:
        """Every injected fault is a first-class lifecycle event."""
        self.events.emit(
            EV_FAULT_INJECTED, site=site, action=action, hit=hit
        )
        self.registry.counter(
            M_FAULTS_INJECTED, "deterministic faults injected", ("site",)
        ).inc(site=site)

    # ------------------------------------------------------------- catalog
    def register_graph(
        self,
        name: str,
        graph: Graph,
        relabel: bool = True,
        replace: bool = False,
        partition=None,
        labels=None,
    ) -> dict:
        """Register a data graph; relabeling and store builds happen once.

        ``partition`` (a :class:`~repro.storage.partition.PartitionInfo`)
        registers the graph as one shard's slice of a sharded deployment:
        queries enumerate only the owned start vertices, so N shards
        holding the same graph under complementary partitions cover the
        single-node match set exactly, disjointly.  ``labels`` (vertex →
        label, original ids) attaches a labeled view for BENU-QL label
        predicates.
        """
        entry = self.catalog.register(
            name, graph, relabel=relabel, replace=replace,
            partition=partition, labels=labels,
        )
        out = {
            "graph": name,
            "vertices": entry.graph.num_vertices,
            "edges": entry.graph.num_edges,
            "relabeled": entry.prepared.relabeled,
            "labeled": entry.labeled is not None,
        }
        if entry.partition is not None:
            out["partition"] = {
                **entry.partition.to_dict(),
                "owned_vertices": len(entry.owned_start_vertices()),
            }
        return out

    # ------------------------------------------------------------- queries
    def _resolve_pattern(self, pattern: PatternLike) -> PatternGraph:
        if isinstance(pattern, PatternGraph):
            return pattern
        if isinstance(pattern, Graph):
            return PatternGraph(pattern, name="pattern")
        if isinstance(pattern, str):
            return PatternGraph(get_pattern(pattern), name=pattern)
        raise InvalidQueryError(
            f"pattern must be a name, Graph or PatternGraph, not {type(pattern).__name__}"
        )

    def submit(
        self,
        pattern: PatternLike,
        graph: str,
        config: Optional[BenuConfig] = None,
        stream: bool = True,
        limit: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        deadline_at: Optional[float] = None,
        lowered: Optional[LoweredQuery] = None,
    ) -> QueryHandle:
        """Admit a query; returns its handle or raises a typed error.

        ``stream=True`` delivers matches through the handle (bounded
        memory, pagination); ``stream=False`` runs a count-only query
        whose ``handle.result()`` carries the totals.  ``limit`` caps
        delivered matches and stops the run early; ``deadline_seconds``
        arms a wall-clock deadline covering queue time and execution.
        ``deadline_at`` is the absolute form (epoch seconds) a deadline
        takes across hops: a router stamps one global deadline and every
        shard debits the same budget — time already spent upstream, and
        time this query will spend parked in the local queue, all count.
        An exhausted budget fast-rejects synchronously.  Both given, the
        earlier wins.  ``lowered`` (a BENU-QL :class:`LoweredQuery`,
        normally via :meth:`submit_query`) threads label pools,
        projection and grouping through the run.
        """
        if self._closed:
            from .errors import ServiceClosedError

            raise ServiceClosedError("service is shut down")
        pattern_graph = self._resolve_pattern(pattern)
        query_config = config or self.default_config
        if stream and query_config.compressed:
            raise InvalidQueryError(
                "streaming delivers full matches; compressed codes are "
                "count-only (submit with stream=False)"
            )
        if limit is not None and limit < 0:
            raise InvalidQueryError("limit must be non-negative")
        # Fail fast on unknown graphs — before taking a scheduler slot.
        self.catalog.get(graph)

        control = ExecutionControl(
            deadline_seconds=deadline_seconds, deadline_at=deadline_at
        )
        buffer: Optional[StreamBuffer] = None
        estimated_bytes = 0
        if stream:
            buffer = StreamBuffer(
                batch_size=self.batch_size,
                max_batches=self.max_buffered_batches,
                control=control,
            )
            estimated_bytes = (
                self.batch_size
                * self.max_buffered_batches
                * pattern_graph.n
                * _BYTES_PER_MATCH_SLOT
            )

        with self._lock:
            self._seq += 1
            query_id = f"q-{self._seq}"
        handle = QueryHandle(
            query_id,
            pattern_name=pattern_graph.name,
            graph_name=graph,
            control=control,
            buffer=buffer,
            limit=limit,
        )
        handle.progress = QueryProgress()
        if lowered is not None:
            handle.lang_kind = lowered.kind
            handle.lang_columns = lowered.columns
        self.events.emit(
            EV_QUERY_SUBMITTED,
            query_id=query_id,
            pattern=pattern_graph.name,
            graph=graph,
            stream=stream,
            limit=limit,
            deadline_seconds=deadline_seconds,
        )

        try:
            future = self.scheduler.submit(
                lambda: self._run_query(
                    handle, pattern_graph, query_config, lowered
                ),
                estimated_bytes=estimated_bytes,
                deadline_at=control.deadline_at,
            )
        except Exception as exc:
            self.events.emit(
                EV_QUERY_REJECTED, query_id=query_id, reason=str(exc)
            )
            raise
        handle.future = future
        with self._lock:
            self._queries[query_id] = handle
        return handle

    def submit_query(
        self,
        text: str,
        graph: str,
        config: Optional[BenuConfig] = None,
        limit: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        deadline_at: Optional[float] = None,
    ) -> QueryHandle:
        """Admit a BENU-QL query (text in, handle out).

        The text is parsed, optimized through the rule-based logical
        optimizer and lowered onto the same plan pipeline ``submit``
        uses; the result shape follows the query's RETURN clause —
        matches stream through the handle, ``COUNT(*)`` runs count-only,
        ``GROUP BY`` lands in ``handle.lang_groups``.  Syntax/semantic
        problems raise :class:`~repro.lang.QuerySyntaxError` /
        :class:`~repro.lang.QuerySemanticError` synchronously, before a
        scheduler slot is taken.
        """
        lowered = lower_query(text)
        if lowered.is_labeled:
            # Fail fast, synchronously: label predicates need a labeled
            # registration (register_graph(..., labels=...)).
            if self.catalog.get(graph).labeled is None:
                raise QuerySemanticError(
                    f"query uses label predicates but graph {graph!r} was "
                    "registered without labels"
                )
        handle = self.submit(
            lowered.pattern,
            graph,
            config=config,
            stream=lowered.kind == "stream",
            limit=limit,
            deadline_seconds=deadline_seconds,
            deadline_at=deadline_at,
            lowered=lowered,
        )
        self.events.emit(
            EV_PLAN_LOWERED,
            query_id=handle.query_id,
            text=text,
            kind=lowered.kind,
            labeled=lowered.is_labeled,
            unsatisfiable=lowered.unsatisfiable,
            rules=list(lowered.rules_fired),
            logical_size=lowered.logical_size,
        )
        if lowered.rules_fired:
            counter = self.registry.counter(
                M_LANG_RULES,
                "BENU-QL logical-optimizer rule firings",
                ("rule",),
            )
            for rule in lowered.rules_fired:
                counter.inc(rule=rule)
        return handle

    # ------------------------------------------------------------------
    def _run_query(
        self,
        handle: QueryHandle,
        pattern: PatternGraph,
        config: BenuConfig,
        lowered: Optional[LoweredQuery] = None,
    ) -> None:
        control = handle.control
        buffer = handle.buffer
        t0 = time.perf_counter()
        status = QueryStatus.FAILED
        entry = None
        pool_key = pool = None
        granted_workers = 0
        events = self.events.bound(handle.query_id)
        telemetry = Telemetry(
            TelemetryConfig(trace=True) if self.trace_queries else None,
            events=events,
        )
        result = None
        try:
            handle._mark(QueryStatus.RUNNING)
            events.emit(EV_QUERY_STARTED)
            control.check()  # queued past the deadline → never runs
            entry = self.catalog.pin(handle.graph_name)
            with telemetry.tracer.span(
                "query",
                args={
                    "query_id": handle.query_id,
                    "pattern": pattern.name,
                    "graph": handle.graph_name,
                },
            ):
                with telemetry.tracer.span("plan") as span:
                    plan, outcome = self.plan_cache.get_or_build(
                        pattern,
                        entry.prepared,
                        handle.graph_name,
                        config,
                        tracer=telemetry.tracer,
                    )
                    span.args["plan_cache"] = outcome
                    span.args["query_id"] = handle.query_id
                events.emit(
                    EV_PLAN_RESOLVED,
                    outcome=outcome,
                    order=[str(v) for v in plan.order],
                )
                control.check()

                labeled_data = None
                if lowered is not None and lowered.is_labeled:
                    # The cached plan is label-aware structurally (the
                    # pattern's symmetry conditions are); pools are a
                    # per-graph rewrite applied here, outside the cache.
                    labeled_data = entry.labeled
                    predicted = plan.predicted_counts
                    plan = labelize_plan(plan, pattern, labeled_data)
                    plan.predicted_counts = predicted

                sink = None
                group_sink = None
                if buffer is not None:
                    sink = (
                        LimitSink(buffer, handle.limit, control)
                        if handle.limit is not None
                        else buffer
                    )
                    if lowered is not None and lowered.projection is not None:
                        sink = ProjectingSink(sink, lowered.projection)
                elif lowered is not None and lowered.kind == "groups":
                    group_sink = GroupCountSink(lowered.group_by)
                    sink = group_sink
                # A partitioned entry runs only this shard's slice of the
                # start-vertex task space; None means the whole graph.
                start_vertices = entry.owned_start_vertices()
                if lowered is not None and lowered.unsatisfiable:
                    # Proven empty by the logical optimizer: run the
                    # ordinary machinery over zero tasks (uniform across
                    # backends and shards).
                    start_vertices = []
                elif labeled_data is not None:
                    pool = start_label_pool(plan, pattern, labeled_data)
                    if pool is not None:
                        base = (
                            start_vertices
                            if start_vertices is not None
                            else entry.prepared.graph.vertices
                        )
                        start_vertices = [v for v in base if v in pool]
                if config.execution_backend == "process":
                    # The cap is on *total* worker processes across all
                    # in-flight queries: block until slots free up, and
                    # run with however many this query was granted.
                    granted_workers = self.worker_slots.acquire(
                        config.num_workers, control=control
                    )
                    # Warm runs re-chunk from the measured task cost of
                    # previous runs of this plan profile (the cost key is
                    # worker-count independent).
                    cost_key = task_cost_key(
                        plan,
                        config.split_threshold,
                        "collect" if (config.collect or sink is not None)
                        else "count",
                    )
                    result = execute_plan(
                        plan,
                        entry.prepared,
                        _replace(config, num_workers=granted_workers),
                        telemetry=telemetry,
                        sink=sink,
                        control=control,
                        progress=handle.progress,
                        task_cost_hint=entry.task_costs.hint(cost_key),
                        start_vertices=start_vertices,
                    )
                    entry.task_costs.record(
                        cost_key, result.mean_task_wall_seconds
                    )
                else:
                    pool_key, pool = entry.checkout_pool(config)
                    cluster = SimulatedCluster(
                        entry.prepared.graph,
                        config,
                        telemetry=telemetry,
                        store=entry.store_for(config),
                    )
                    result = execute_plan(
                        plan,
                        entry.prepared,
                        config,
                        telemetry=telemetry,
                        cluster=cluster,
                        sink=sink,
                        control=control,
                        worker_caches=pool.caches,
                        progress=handle.progress,
                        start_vertices=start_vertices,
                    )
            if group_sink is not None:
                # Keys already carry original ids (the executor wraps
                # the sink in a TranslatingSink when the graph was
                # relabeled).
                handle.lang_groups = dict(group_sink.counts)
            handle._result = result
            status = QueryStatus.SUCCEEDED
        except QueryCancelled as exc:
            if exc.reason == LimitSink.REASON:
                # The limit stopping the run early is a success.
                handle.truncated = True
                status = QueryStatus.SUCCEEDED
            else:
                handle.error = exc
                status = QueryStatus.CANCELLED
        except DeadlineExpired as exc:
            handle.error = exc
            status = QueryStatus.DEADLINE_EXPIRED
        except BaseException as exc:  # noqa: BLE001 — reported, not swallowed
            handle.error = exc
            status = QueryStatus.FAILED
        finally:
            if granted_workers:
                self.worker_slots.release(granted_workers)
            if pool is not None and entry is not None:
                entry.checkin_pool(pool_key, pool)
            if entry is not None:
                self.catalog.unpin(handle.graph_name)
            # Status before close: consumers at end-of-stream must see a
            # final state (and any error) the moment the stream ends.
            handle._mark(status)
            if buffer is not None:
                buffer.close()
            wall = time.perf_counter() - t0
            self.registry.counter(
                M_SERVICE_QUERIES, "queries by final status", ("status",)
            ).inc(status=status.value)
            self.registry.histogram(
                H_QUERY_WALL_SECONDS,
                help="wall-clock seconds per service query",
                labels=("status",),
            ).observe(wall, status=status.value)
            # The per-query span tree (query → plan → execution …) stays
            # reachable even when the run produced no result object.
            handle.telemetry = telemetry
            self._account_query(handle, result, status, wall, events)
        return None

    def _account_query(
        self, handle, result, status, wall: float, events
    ) -> None:
        """End-of-query observability: q-error, slow-query log, finish event.

        Isolated so a reporting hiccup can never change a query's
        outcome; runs after the handle is marked and the stream closed.
        """
        q_errors = (
            result.telemetry.q_errors if result is not None else {}
        )
        if q_errors:
            qerr_hist = self.registry.histogram(
                H_QUERY_QERROR,
                help="per-query cost-model q-error by instruction type",
                labels=("instr",),
                buckets=QERROR_BUCKETS,
            )
            for instr, qe in q_errors.items():
                qerr_hist.observe(qe, instr=instr)
            events.emit(
                EV_QUERY_QERROR,
                q_errors=q_errors,
                predicted=result.telemetry.predicted_counts,
                actual=result.telemetry.instruction_counts,
            )
        events.emit(
            EV_QUERY_FINISHED,
            status=status.value,
            wall_seconds=wall,
            delivered=handle.delivered,
            truncated=handle.truncated,
        )
        threshold = self.slow_query_seconds
        if threshold is not None and wall > threshold:
            entry = {
                "query_id": handle.query_id,
                "pattern": handle.pattern_name,
                "graph": handle.graph_name,
                "status": status.value,
                "wall_seconds": wall,
                "threshold_seconds": threshold,
                "instruction_counts": (
                    result.telemetry.instruction_counts
                    if result is not None
                    else {}
                ),
                "q_errors": q_errors,
                "trace": self._trace_summary(handle.telemetry),
            }
            self._slow_queries.append(entry)
            events.emit(EV_SLOW_QUERY, **entry)

    @staticmethod
    def _trace_summary(telemetry) -> list:
        """Top-level span names + wall seconds (the slow-log trace view)."""
        tracer = getattr(telemetry, "tracer", None)
        if tracer is None or not tracer.enabled:
            return []

        def walk(span, depth):
            rows = [
                {
                    "span": span.name,
                    "depth": depth,
                    "wall_seconds": span.wall_seconds,
                }
            ]
            if depth < 2:
                for child in span.children:
                    rows.extend(walk(child, depth + 1))
            return rows

        out = []
        for root in tracer.roots:
            out.extend(walk(root, 0))
        return out

    # ------------------------------------------------------------------
    def query(self, query_id: str) -> QueryHandle:
        with self._lock:
            handle = self._queries.get(query_id)
        if handle is None:
            raise UnknownQueryError(f"unknown query {query_id!r}")
        return handle

    def cancel(self, query_id: str, reason: str = "cancelled by client") -> QueryHandle:
        handle = self.query(query_id)
        self.events.emit(EV_QUERY_CANCELLED, query_id=query_id, reason=reason)
        handle.cancel(reason)
        return handle

    def queries(self) -> Dict[str, QueryHandle]:
        with self._lock:
            return dict(self._queries)

    def stats(self) -> dict:
        """A JSON-friendly snapshot of the service's telemetry."""
        statuses: Dict[str, int] = {}
        with self._lock:
            for handle in self._queries.values():
                statuses[handle.status.value] = (
                    statuses.get(handle.status.value, 0) + 1
                )
        return {
            "graphs": self.catalog.names(),
            "catalog_bytes": self.catalog.memory_bytes(),
            "plan_cache": {
                "entries": len(self.plan_cache),
                "hits": self.plan_cache.hits,
                "misses": self.plan_cache.misses,
            },
            "scheduler": {
                "running": self.scheduler.running,
                "queued": self.scheduler.queued,
                "max_concurrent": self.scheduler.max_concurrent,
                "max_queued": self.scheduler.max_queued,
            },
            "execution": {
                "default_backend": self.default_config.execution_backend,
                "worker_processes_in_use": self.worker_slots.in_use,
                "max_worker_processes": self.worker_slots.max_workers,
            },
            "queries": statuses,
            "progress": {
                handle.query_id: handle.progress.describe()
                for handle in self.queries().values()
                if handle.progress is not None and not handle.done
            },
            "events": {
                "emitted": self.events.emitted,
                "retained": len(self.events),
                "dropped": self.events.dropped,
            },
            "slow_queries": list(self._slow_queries),
            "faults": {
                "enabled": self.injector.enabled,
                "injected": self.injector.fired_count,
            },
            "metrics": self.registry.as_dict(),
        }

    def close(self, cancel_running: bool = True) -> None:
        """Shut down: stop admitting, optionally cancel in-flight queries."""
        self._closed = True
        if cancel_running:
            with self._lock:
                handles = list(self._queries.values())
            for handle in handles:
                if not handle.done:
                    handle.cancel("service shutting down")
        self.scheduler.shutdown(wait=True)
        if self._event_file_sink is not None:
            self._event_file_sink.close()
            self._event_file_sink = None

    def __enter__(self) -> "BenuService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
