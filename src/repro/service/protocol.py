"""Line-delimited JSON protocol for ``benu serve``.

One request per line, one JSON response per line — trivially scriptable
(``echo '{"op": ...}' | python -m repro serve``) and transport-agnostic:
the same :class:`ServiceProtocol` handler backs stdio and a local TCP
socket.

Operations
----------
``hello``    {"op":"hello","version":2?,"role":"client"|"router"?}
``submit``   {"op":"submit","pattern":"triangle"|[[u,v],...],"graph":"g",
              "limit":N?, "deadline":sec?, "deadline_at":epoch?,
              "stream":bool?, "config":{}?}
``query``    {"op":"query","text":"MATCH (a)-(b) ... RETURN ...","graph":"g",
              "limit":N?, "deadline":sec?, "deadline_at":epoch?, "config":{}?}
``poll``     {"op":"poll","query":"q-1","limit":100?,"wait":sec?}
``cancel``   {"op":"cancel","query":"q-1"}
``stats``    {"op":"stats"}
``metrics``  {"op":"metrics"}              → Prometheus text exposition
``events``   {"op":"events","type":t?,"query":"q-1"?,"limit":N?}
``graphs``   {"op":"graphs"}
``register`` {"op":"register","name":"g","dataset":"as_sim"|"edges":[[u,v],...],
              "partition":{"index":i,"of":n,"halo":k?}?,
              "labels":{"<vertex>":<label>,...}?}
``queries``  {"op":"queries"}
``shutdown`` {"op":"shutdown"}

Every response is ``{"ok": true, ...}`` or
``{"ok": false, "error": <code>, "message": <text>}`` with the typed
error's code (``rejected``, ``unknown_graph``, ...).

``config`` accepts the common :class:`~repro.engine.config.BenuConfig`
knobs: workers, threads, cache_bytes, tau, level, compressed.

Versioning: ``hello`` is the optional protocol handshake introduced in
version 2 alongside the sharding fields (``deadline_at``, ``partition``,
shard identity).  Version-1 clients that never send ``hello`` keep
working — every v1 request and response shape is unchanged; v2 fields
only appear when the client asks for them.  A node started as one shard
of a deployment answers ``hello`` with its shard id, count and epoch so
a router can verify it is fanning out to the cluster it thinks it is.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
from dataclasses import dataclass, replace
from typing import Optional, TextIO

from ..engine.config import BenuConfig
from ..engine.control import ExecutionInterrupted
from ..faults import InjectedFault
from ..graph.datasets import load_dataset
from ..graph.graph import Graph
from ..lang.errors import QueryError
from ..storage.partition import PartitionInfo
from ..telemetry.prometheus import render_prometheus
from .errors import InvalidQueryError, ServiceError
from .service import BenuService

#: Wire protocol version this node speaks.  v2 added the ``hello``
#: handshake and the sharding fields; v1 requests still work verbatim.
PROTOCOL_VERSION = 2

#: Optional v2 features this node advertises in the handshake.
CAPABILITIES = (
    "deadline_at", "partition", "telemetry_counts", "health", "query"
)


@dataclass(frozen=True)
class ShardIdentity:
    """Who a serving node is within a sharded deployment.

    ``epoch`` is the deployment generation: a router refuses to merge
    streams from shards that disagree on it (a stale node from a
    previous rollout would silently double- or under-count).
    """

    shard_index: int
    shard_count: int
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index {self.shard_index} out of range for "
                f"{self.shard_count} shards"
            )

    def partition_info(self, halo_hops: Optional[int] = None) -> PartitionInfo:
        return PartitionInfo(
            index=self.shard_index, of=self.shard_count, halo_hops=halo_hops
        )

    def to_dict(self) -> dict:
        return {
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "epoch": self.epoch,
        }


#: JSON config field → BenuConfig field.
_CONFIG_FIELDS = {
    "workers": "num_workers",
    "threads": "threads_per_worker",
    "cache_bytes": "cache_capacity_bytes",
    "tau": "split_threshold",
    "level": "optimization_level",
    "compressed": "compressed",
    "degree_filter": "degree_filter",
    "backend": "adjacency_backend",
}


def _json_match(match) -> list:
    return [sorted(s) if isinstance(s, frozenset) else s for s in match]


class ServiceProtocol:
    """Stateless request handler: one JSON request in, one response out.

    ``identity`` binds the handler to a shard of a deployment: ``hello``
    reports it, and ``register`` defaults to partitioning the graph by
    it (so a router can broadcast one register request to every shard
    and each keeps only its slice of the task space).
    """

    def __init__(
        self,
        service: BenuService,
        identity: Optional[ShardIdentity] = None,
    ) -> None:
        self.service = service
        self.identity = identity
        self.shutdown_requested = False

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> dict:
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise InvalidQueryError(f"bad JSON: {exc}") from exc
            if not isinstance(request, dict) or "op" not in request:
                raise InvalidQueryError('requests are objects with an "op" field')
            op = request["op"]
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise InvalidQueryError(f"unknown op {op!r}")
            response = handler(request)
            response.setdefault("ok", True)
            return response
        except QueryError as exc:
            # BENU-QL front-end failures are structured: the machine-
            # readable code plus the position and a caret snippet, so
            # clients point at the offending spot instead of parsing a
            # message.
            response = {"ok": False, "error": exc.code, "message": str(exc)}
            if exc.line is not None:
                response["line"] = exc.line
                response["column"] = exc.column
            snippet = exc.snippet()
            if snippet is not None:
                response["snippet"] = snippet
            return response
        except ServiceError as exc:
            return {"ok": False, "error": exc.code, "message": str(exc)}
        except ExecutionInterrupted as exc:
            # Polling a cancelled/expired stream surfaces its typed status.
            return {"ok": False, "error": exc.status, "message": str(exc)}
        except InjectedFault as exc:
            # A deterministic chaos schedule fired inside this node; name
            # it honestly instead of reporting a generic internal error.
            return {"ok": False, "error": exc.code, "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 — protocol boundary
            return {"ok": False, "error": "internal", "message": str(exc)}

    def handle_line_json(self, line: str) -> str:
        return json.dumps(self.handle_line(line))

    def health(self) -> dict:
        """The ``health`` op's body: cheap liveness, no catalog access.

        Deliberately minimal — the router's circuit breaker probes this
        on possibly-sick nodes, so it must not touch any lock or state a
        wedged query could be holding.
        """
        body = {
            "status": "serving",
            "role": "shard" if self.identity is not None else "node",
            "running": self.service.scheduler.running,
        }
        if self.identity is not None:
            body.update(self.identity.to_dict())
        return body

    # ------------------------------------------------------------------ ops
    def _parse_pattern(self, request: dict):
        pattern = request.get("pattern")
        if isinstance(pattern, str):
            return pattern
        if isinstance(pattern, list):
            try:
                return Graph((int(u), int(v)) for u, v in pattern)
            except (TypeError, ValueError) as exc:
                raise InvalidQueryError(
                    "pattern edge lists are [[u, v], ...] of ints"
                ) from exc
        raise InvalidQueryError('"pattern" must be a name or an edge list')

    def _parse_config(self, request: dict) -> Optional[BenuConfig]:
        raw = request.get("config")
        if raw is None:
            return None
        if not isinstance(raw, dict):
            raise InvalidQueryError('"config" must be an object')
        unknown = set(raw) - set(_CONFIG_FIELDS)
        if unknown:
            raise InvalidQueryError(
                f"unknown config fields: {sorted(unknown)}; "
                f"known: {sorted(_CONFIG_FIELDS)}"
            )
        kwargs = {_CONFIG_FIELDS[k]: v for k, v in raw.items()}
        try:
            return replace(self.service.default_config, **kwargs)
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(f"bad config: {exc}") from exc

    def _op_hello(self, request: dict) -> dict:
        """Version/role handshake (v2).  Optional: v1 clients skip it."""
        asked = request.get("version", 1)
        try:
            asked = int(asked)
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError('"version" must be an integer') from exc
        if asked < 1:
            raise InvalidQueryError(f"bad protocol version {asked}")
        response = {
            "version": min(asked, PROTOCOL_VERSION),
            "server_version": PROTOCOL_VERSION,
            "role": "shard" if self.identity is not None else "node",
            "capabilities": list(CAPABILITIES),
        }
        if self.identity is not None:
            response.update(self.identity.to_dict())
        return response

    def _op_submit(self, request: dict) -> dict:
        deadline_at = request.get("deadline_at")
        handle = self.service.submit(
            self._parse_pattern(request),
            request.get("graph", ""),
            config=self._parse_config(request),
            stream=bool(request.get("stream", True)),
            limit=request.get("limit"),
            deadline_seconds=request.get("deadline"),
            deadline_at=float(deadline_at) if deadline_at is not None else None,
        )
        return {"query": handle.query_id, "status": handle.status.value}

    def _op_query(self, request: dict) -> dict:
        """Submit a BENU-QL text query (v2).

        ``{"op":"query","text":"MATCH ...","graph":"g","limit":N?,
        "deadline":sec?,"deadline_at":epoch?,"config":{}?}`` — the reply
        carries the query id plus the lowered result shape (``kind`` /
        ``columns``); results flow through ``poll`` exactly like
        ``submit``, with GROUP BY counts in the final ``groups`` field.
        """
        text = request.get("text")
        if not isinstance(text, str) or not text.strip():
            raise InvalidQueryError('"text" (a BENU-QL query) is required')
        deadline_at = request.get("deadline_at")
        handle = self.service.submit_query(
            text,
            request.get("graph", ""),
            config=self._parse_config(request),
            limit=request.get("limit"),
            deadline_seconds=request.get("deadline"),
            deadline_at=float(deadline_at) if deadline_at is not None else None,
        )
        return {
            "query": handle.query_id,
            "status": handle.status.value,
            "kind": handle.lang_kind,
            "columns": list(handle.lang_columns or ()),
        }

    def _op_poll(self, request: dict) -> dict:
        handle = self.service.query(str(request.get("query")))
        wait = request.get("wait")
        if wait:
            handle.wait(timeout=float(wait))
        response = handle.describe()
        if handle.streaming:
            cursor = request.get("cursor")
            page = handle.fetch(
                limit=int(request.get("limit", 256)),
                cursor=int(cursor) if cursor is not None else None,
            )
            response.update(
                matches=[_json_match(m) for m in page.matches],
                cursor=page.cursor,
                done=page.done,
                status=handle.status.value,  # may have finished during fetch
            )
        else:
            response["done"] = handle.done
            if handle.done and handle.error is None:
                result = handle.result()
                if handle.lang_groups is not None:
                    # GROUP BY keys serialize as strings (JSON objects
                    # can't have int keys); clients parse them back.
                    response["groups"] = {
                        str(k): v for k, v in handle.lang_groups.items()
                    }
                if result is not None:
                    response["count"] = result.count
                    if result.telemetry is not None:
                        # Per-shard execution counters a router sums;
                        # instruction counts are per-task deterministic,
                        # so shard slices add up to the single-node run.
                        response["telemetry"] = {
                            "instruction_counts": dict(
                                result.telemetry.instruction_counts
                            ),
                            "kernel_counts": dict(
                                result.telemetry.kernel_counts
                            ),
                        }
        return response

    def _op_cancel(self, request: dict) -> dict:
        handle = self.service.cancel(str(request.get("query")))
        return {"query": handle.query_id, "status": handle.status.value}

    def _op_health(self, request: dict) -> dict:
        return self.health()

    def _op_stats(self, request: dict) -> dict:
        return {"stats": self.service.stats()}

    def _op_metrics(self, request: dict) -> dict:
        """Metrics export: Prometheus text, or the registry dict (v2).

        ``{"format": "json"}`` returns :meth:`MetricsRegistry.as_dict` —
        the structured form a router merges across shards.
        """
        if request.get("format") == "json":
            return {"metrics": self.service.registry.as_dict()}
        return {"metrics": render_prometheus(self.service.registry)}

    def _op_events(self, request: dict) -> dict:
        """Recent lifecycle events, optionally filtered."""
        limit = request.get("limit")
        rows = self.service.events.as_dicts(
            type=request.get("type"),
            query_id=request.get("query"),
            limit=int(limit) if limit is not None else None,
        )
        return {
            "events": rows,
            "emitted": self.service.events.emitted,
            "dropped": self.service.events.dropped,
        }

    def _op_graphs(self, request: dict) -> dict:
        return {
            "graphs": self.service.catalog.names(),
            "catalog_bytes": self.service.catalog.memory_bytes(),
        }

    def _op_register(self, request: dict) -> dict:
        name = request.get("name")
        if not isinstance(name, str) or not name:
            raise InvalidQueryError('"name" is required')
        if "dataset" in request:
            graph = load_dataset(request["dataset"])
            relabel = False  # bundled datasets are pre-relabeled
        elif "edges" in request:
            try:
                graph = Graph((int(u), int(v)) for u, v in request["edges"])
            except (TypeError, ValueError) as exc:
                raise InvalidQueryError(
                    '"edges" must be [[u, v], ...] of ints'
                ) from exc
            relabel = bool(request.get("relabel", True))
        else:
            raise InvalidQueryError('register needs "dataset" or "edges"')
        partition = self._parse_partition(request)
        labels = request.get("labels")
        if labels is not None:
            if not isinstance(labels, dict):
                raise InvalidQueryError(
                    '"labels" must be {"<vertex id>": <label>, ...}'
                )
            try:
                labels = {int(v): lbl for v, lbl in labels.items()}
            except (TypeError, ValueError) as exc:
                raise InvalidQueryError(
                    '"labels" keys must be integer vertex ids'
                ) from exc
        return self.service.register_graph(
            name,
            graph,
            relabel=relabel,
            replace=bool(request.get("replace")),
            partition=partition,
            labels=labels,
        )

    def _parse_partition(self, request: dict) -> Optional[PartitionInfo]:
        raw = request.get("partition")
        if raw is None:
            # A shard node partitions every registration by its identity
            # unless the client explicitly asked for a full copy.
            if self.identity is None or request.get("unpartitioned"):
                return None
            return self.identity.partition_info()
        if not isinstance(raw, dict):
            raise InvalidQueryError(
                '"partition" must be {"index": i, "of": n, "halo": k?}'
            )
        try:
            return PartitionInfo.from_dict(raw)
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(f"bad partition: {exc}") from exc

    def _op_queries(self, request: dict) -> dict:
        return {
            "queries": [
                h.describe() for h in self.service.queries().values()
            ]
        }

    def _op_shutdown(self, request: dict) -> dict:
        self.shutdown_requested = True
        return {"bye": True}


# ---------------------------------------------------------------------- I/O
def serve_stdio(
    service: BenuService,
    in_stream: Optional[TextIO] = None,
    out_stream: Optional[TextIO] = None,
    identity: Optional[ShardIdentity] = None,
) -> int:
    """Serve the protocol over stdio until EOF or a shutdown op."""
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    protocol = ServiceProtocol(service, identity=identity)
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        out_stream.write(protocol.handle_line_json(line) + "\n")
        out_stream.flush()
        if protocol.shutdown_requested:
            break
    return 0


class _ProtocolTCPHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        protocol = ServiceProtocol(
            self.server.service,  # type: ignore[attr-defined]
            identity=self.server.identity,  # type: ignore[attr-defined]
        )
        for raw in self.rfile:
            line = raw.decode("utf-8", "replace").strip()
            if not line:
                continue
            self.wfile.write(
                (protocol.handle_line_json(line) + "\n").encode("utf-8")
            )
            if protocol.shutdown_requested:
                self.server.shutdown_requested = True  # type: ignore[attr-defined]
                # shutdown() blocks until serve_forever exits, so stop
                # the server from a helper thread, not this handler.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                break


class ServiceTCPServer(socketserver.ThreadingTCPServer):
    """A local TCP server speaking the line protocol (one service shared)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address,
        service: BenuService,
        identity: Optional[ShardIdentity] = None,
    ) -> None:
        super().__init__(address, _ProtocolTCPHandler)
        self.service = service
        self.identity = identity
        self.shutdown_requested = False


def serve_socket(
    service: BenuService,
    host: str = "127.0.0.1",
    port: int = 0,
    identity: Optional[ShardIdentity] = None,
):
    """A bound (not yet serving) TCP server; caller runs serve_forever."""
    return ServiceTCPServer((host, port), service, identity=identity)
