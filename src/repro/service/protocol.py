"""Line-delimited JSON protocol for ``benu serve``.

One request per line, one JSON response per line — trivially scriptable
(``echo '{"op": ...}' | python -m repro serve``) and transport-agnostic:
the same :class:`ServiceProtocol` handler backs stdio and a local TCP
socket.

Operations
----------
``submit``   {"op":"submit","pattern":"triangle"|[[u,v],...],"graph":"g",
              "limit":N?, "deadline":sec?, "stream":bool?, "config":{}?}
``poll``     {"op":"poll","query":"q-1","limit":100?,"wait":sec?}
``cancel``   {"op":"cancel","query":"q-1"}
``stats``    {"op":"stats"}
``metrics``  {"op":"metrics"}              → Prometheus text exposition
``events``   {"op":"events","type":t?,"query":"q-1"?,"limit":N?}
``graphs``   {"op":"graphs"}
``register`` {"op":"register","name":"g","dataset":"as_sim"|"edges":[[u,v],...]}
``queries``  {"op":"queries"}
``shutdown`` {"op":"shutdown"}

Every response is ``{"ok": true, ...}`` or
``{"ok": false, "error": <code>, "message": <text>}`` with the typed
error's code (``rejected``, ``unknown_graph``, ...).

``config`` accepts the common :class:`~repro.engine.config.BenuConfig`
knobs: workers, threads, cache_bytes, tau, level, compressed.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
from dataclasses import replace
from typing import Optional, TextIO

from ..engine.config import BenuConfig
from ..engine.control import ExecutionInterrupted
from ..graph.datasets import load_dataset
from ..graph.graph import Graph
from ..telemetry.prometheus import render_prometheus
from .errors import InvalidQueryError, ServiceError
from .service import BenuService

#: JSON config field → BenuConfig field.
_CONFIG_FIELDS = {
    "workers": "num_workers",
    "threads": "threads_per_worker",
    "cache_bytes": "cache_capacity_bytes",
    "tau": "split_threshold",
    "level": "optimization_level",
    "compressed": "compressed",
    "degree_filter": "degree_filter",
    "backend": "adjacency_backend",
}


def _json_match(match) -> list:
    return [sorted(s) if isinstance(s, frozenset) else s for s in match]


class ServiceProtocol:
    """Stateless request handler: one JSON request in, one response out."""

    def __init__(self, service: BenuService) -> None:
        self.service = service
        self.shutdown_requested = False

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> dict:
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise InvalidQueryError(f"bad JSON: {exc}") from exc
            if not isinstance(request, dict) or "op" not in request:
                raise InvalidQueryError('requests are objects with an "op" field')
            op = request["op"]
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise InvalidQueryError(f"unknown op {op!r}")
            response = handler(request)
            response.setdefault("ok", True)
            return response
        except ServiceError as exc:
            return {"ok": False, "error": exc.code, "message": str(exc)}
        except ExecutionInterrupted as exc:
            # Polling a cancelled/expired stream surfaces its typed status.
            return {"ok": False, "error": exc.status, "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 — protocol boundary
            return {"ok": False, "error": "internal", "message": str(exc)}

    def handle_line_json(self, line: str) -> str:
        return json.dumps(self.handle_line(line))

    # ------------------------------------------------------------------ ops
    def _parse_pattern(self, request: dict):
        pattern = request.get("pattern")
        if isinstance(pattern, str):
            return pattern
        if isinstance(pattern, list):
            try:
                return Graph((int(u), int(v)) for u, v in pattern)
            except (TypeError, ValueError) as exc:
                raise InvalidQueryError(
                    "pattern edge lists are [[u, v], ...] of ints"
                ) from exc
        raise InvalidQueryError('"pattern" must be a name or an edge list')

    def _parse_config(self, request: dict) -> Optional[BenuConfig]:
        raw = request.get("config")
        if raw is None:
            return None
        if not isinstance(raw, dict):
            raise InvalidQueryError('"config" must be an object')
        unknown = set(raw) - set(_CONFIG_FIELDS)
        if unknown:
            raise InvalidQueryError(
                f"unknown config fields: {sorted(unknown)}; "
                f"known: {sorted(_CONFIG_FIELDS)}"
            )
        kwargs = {_CONFIG_FIELDS[k]: v for k, v in raw.items()}
        try:
            return replace(self.service.default_config, **kwargs)
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(f"bad config: {exc}") from exc

    def _op_submit(self, request: dict) -> dict:
        handle = self.service.submit(
            self._parse_pattern(request),
            request.get("graph", ""),
            config=self._parse_config(request),
            stream=bool(request.get("stream", True)),
            limit=request.get("limit"),
            deadline_seconds=request.get("deadline"),
        )
        return {"query": handle.query_id, "status": handle.status.value}

    def _op_poll(self, request: dict) -> dict:
        handle = self.service.query(str(request.get("query")))
        wait = request.get("wait")
        if wait:
            handle.wait(timeout=float(wait))
        response = handle.describe()
        if handle.streaming:
            page = handle.fetch(limit=int(request.get("limit", 256)))
            response.update(
                matches=[_json_match(m) for m in page.matches],
                cursor=page.cursor,
                done=page.done,
                status=handle.status.value,  # may have finished during fetch
            )
        else:
            response["done"] = handle.done
            if handle.done and handle.error is None:
                result = handle.result()
                if result is not None:
                    response["count"] = result.count
        return response

    def _op_cancel(self, request: dict) -> dict:
        handle = self.service.cancel(str(request.get("query")))
        return {"query": handle.query_id, "status": handle.status.value}

    def _op_stats(self, request: dict) -> dict:
        return {"stats": self.service.stats()}

    def _op_metrics(self, request: dict) -> dict:
        """Prometheus text exposition of the service registry."""
        return {"metrics": render_prometheus(self.service.registry)}

    def _op_events(self, request: dict) -> dict:
        """Recent lifecycle events, optionally filtered."""
        limit = request.get("limit")
        rows = self.service.events.as_dicts(
            type=request.get("type"),
            query_id=request.get("query"),
            limit=int(limit) if limit is not None else None,
        )
        return {
            "events": rows,
            "emitted": self.service.events.emitted,
            "dropped": self.service.events.dropped,
        }

    def _op_graphs(self, request: dict) -> dict:
        return {
            "graphs": self.service.catalog.names(),
            "catalog_bytes": self.service.catalog.memory_bytes(),
        }

    def _op_register(self, request: dict) -> dict:
        name = request.get("name")
        if not isinstance(name, str) or not name:
            raise InvalidQueryError('"name" is required')
        if "dataset" in request:
            graph = load_dataset(request["dataset"])
            relabel = False  # bundled datasets are pre-relabeled
        elif "edges" in request:
            try:
                graph = Graph((int(u), int(v)) for u, v in request["edges"])
            except (TypeError, ValueError) as exc:
                raise InvalidQueryError(
                    '"edges" must be [[u, v], ...] of ints'
                ) from exc
            relabel = bool(request.get("relabel", True))
        else:
            raise InvalidQueryError('register needs "dataset" or "edges"')
        return self.service.register_graph(
            name, graph, relabel=relabel, replace=bool(request.get("replace"))
        )

    def _op_queries(self, request: dict) -> dict:
        return {
            "queries": [
                h.describe() for h in self.service.queries().values()
            ]
        }

    def _op_shutdown(self, request: dict) -> dict:
        self.shutdown_requested = True
        return {"bye": True}


# ---------------------------------------------------------------------- I/O
def serve_stdio(
    service: BenuService,
    in_stream: Optional[TextIO] = None,
    out_stream: Optional[TextIO] = None,
) -> int:
    """Serve the protocol over stdio until EOF or a shutdown op."""
    in_stream = in_stream if in_stream is not None else sys.stdin
    out_stream = out_stream if out_stream is not None else sys.stdout
    protocol = ServiceProtocol(service)
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        out_stream.write(protocol.handle_line_json(line) + "\n")
        out_stream.flush()
        if protocol.shutdown_requested:
            break
    return 0


class _ProtocolTCPHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        protocol = ServiceProtocol(self.server.service)  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", "replace").strip()
            if not line:
                continue
            self.wfile.write(
                (protocol.handle_line_json(line) + "\n").encode("utf-8")
            )
            if protocol.shutdown_requested:
                self.server.shutdown_requested = True  # type: ignore[attr-defined]
                # shutdown() blocks until serve_forever exits, so stop
                # the server from a helper thread, not this handler.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                break


class ServiceTCPServer(socketserver.ThreadingTCPServer):
    """A local TCP server speaking the line protocol (one service shared)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: BenuService) -> None:
        super().__init__(address, _ProtocolTCPHandler)
        self.service = service
        self.shutdown_requested = False


def serve_socket(service: BenuService, host: str = "127.0.0.1", port: int = 0):
    """A bound (not yet serving) TCP server; caller runs serve_forever."""
    return ServiceTCPServer((host, port), service)
