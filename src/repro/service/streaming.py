"""Streaming query results: bounded buffers, handles, pagination.

A service query never materializes its full embedding list (HUGE's
bounded-memory output requirement): the executor emits matches into a
:class:`StreamBuffer` — a bounded queue of fixed-size batches — and the
client drains them through its :class:`QueryHandle`, either as an
iterator (:meth:`QueryHandle.batches` / :meth:`QueryHandle.matches`) or
with cursor pagination (:meth:`QueryHandle.fetch`), which is what the
wire protocol's ``poll`` op uses.

Backpressure: when the buffer is full the *producer* blocks, pacing the
enumeration to the consumer.  A blocked producer still honors
cancellation — the put loop re-checks the query's control, so ``cancel``
(or a deadline) unstick it at the next tick.
"""

from __future__ import annotations

import enum
import queue
import threading
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..engine.control import ExecutionControl, ExecutionInterrupted
from .errors import InvalidQueryError

#: End-of-stream marker (identity-compared).
_DONE = object()


class QueryStatus(str, enum.Enum):
    """Lifecycle of a service query."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    DEADLINE_EXPIRED = "deadline_expired"

    @property
    def finished(self) -> bool:
        return self not in (QueryStatus.QUEUED, QueryStatus.RUNNING)


class StreamBuffer:
    """Bounded match stream between one producer and one consumer.

    ``emit`` is the sink interface the execution engine calls; batches of
    ``batch_size`` matches travel through a queue holding at most
    ``max_batches`` of them, so buffered memory is bounded by
    ``batch_size × max_batches`` matches regardless of result size.
    """

    def __init__(
        self,
        batch_size: int = 256,
        max_batches: int = 64,
        control: Optional[ExecutionControl] = None,
    ) -> None:
        if batch_size < 1 or max_batches < 1:
            raise ValueError("batch_size and max_batches must be positive")
        self.batch_size = batch_size
        self.control = control
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_batches)
        self._batch: List[Tuple] = []
        self._closed = False
        self.count = 0  # matches emitted (producer side)

    # ----------------------------------------------------------- producer
    def _put(self, item) -> None:
        while True:
            try:
                self._queue.put(item, timeout=0.05)
                return
            except queue.Full:
                # Re-check cancellation so a stalled consumer can't wedge
                # the producer (the control raises out of the run).
                if self.control is not None:
                    self.control.check()

    def emit(self, match: Tuple) -> None:
        self._batch.append(match)
        self.count += 1
        if len(self._batch) >= self.batch_size:
            self._put(self._batch)
            self._batch = []

    def close(self) -> None:
        """Flush the partial batch and mark end-of-stream (idempotent).

        The terminal marker is guaranteed to land: if the query was
        cancelled or expired while the queue is full, buffered batches
        are dropped to make room (the results are void anyway), so no
        consumer can block forever on a dead stream.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._batch:
                self._put(self._batch)
                self._batch = []
            self._put(_DONE)
        except ExecutionInterrupted:
            self._batch = []
            while True:
                try:
                    self._queue.put_nowait(_DONE)
                    return
                except queue.Full:
                    try:
                        self._queue.get_nowait()
                    except queue.Empty:
                        pass

    # ----------------------------------------------------------- consumer
    def next_batch(self, timeout: Optional[float] = None) -> Optional[List[Tuple]]:
        """The next batch, ``None`` at end-of-stream.

        Raises ``queue.Empty`` when ``timeout`` elapses first.
        """
        item = self._queue.get(timeout=timeout) if timeout is not None else self._queue.get()
        if item is _DONE:
            self._queue.put(_DONE)  # keep the stream terminal for re-reads
            return None
        return item

    def poll_batch(self) -> Optional[List[Tuple]]:
        """A batch if one is ready now, else ``[]``; ``None`` at end."""
        try:
            item = self._queue.get_nowait()
        except queue.Empty:
            return []
        if item is _DONE:
            self._queue.put(_DONE)
            return None
        return item


@dataclass
class FetchResult:
    """One page of matches (the ``poll`` op's payload)."""

    matches: List[Tuple]
    cursor: int  # position *after* these matches
    done: bool

    def __iter__(self):
        return iter(self.matches)


class QueryHandle:
    """Client-side handle to a submitted query.

    The handle exposes the query's lifecycle (``status``, ``wait``,
    ``result``), its streamed matches (``batches`` / ``matches`` /
    ``fetch``) and cooperative ``cancel``.  Matches arrive already
    translated to original vertex ids.
    """

    def __init__(
        self,
        query_id: str,
        pattern_name: str,
        graph_name: str,
        control: ExecutionControl,
        buffer: Optional[StreamBuffer] = None,
        limit: Optional[int] = None,
    ) -> None:
        self.query_id = query_id
        self.pattern_name = pattern_name
        self.graph_name = graph_name
        self.control = control
        self.buffer = buffer
        self.limit = limit
        self.status = QueryStatus.QUEUED
        self.error: Optional[BaseException] = None
        #: Live progress tracker (set by the service before execution);
        #: ``None`` for handles created outside a service run.
        self.progress = None
        #: True when the stream was cut short by ``limit``.
        self.truncated = False
        #: BENU-QL annotations (set by submit_query): result shape,
        #: output column names, and GROUP BY counts when kind="groups".
        self.lang_kind: Optional[str] = None
        self.lang_columns: Optional[Tuple[str, ...]] = None
        self.lang_groups: Optional[dict] = None
        self._result = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        # Pagination state (fetch): matches pulled off the stream but not
        # yet delivered, and the count delivered so far.
        self._pending: List[Tuple] = []
        self._delivered = 0
        self._exhausted = False
        # One-page replay window: (cursor before the page, the page,
        # its done flag).  A client whose previous poll response was
        # lost in transit retries with the old cursor and gets the same
        # page back — at-least-once delivery over an unreliable hop
        # without ever re-running work.
        self._replay: Optional[Tuple[int, List[Tuple], bool]] = None

    # ------------------------------------------------------------ lifecycle
    def _mark(self, status: QueryStatus) -> None:
        self.status = status
        if status.finished:
            self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the query finishes; True when it did."""
        return self._done.wait(timeout)

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Request cooperative cancellation (noticed at a task boundary)."""
        self.control.cancel(reason)

    def result(self, timeout: Optional[float] = None):
        """The :class:`~repro.engine.results.BenuResult`, or raise.

        Re-raises the typed error for failed / cancelled /
        deadline-expired queries.  For limit-truncated streams the result
        is ``None`` (the matches travelled through the stream).
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"query {self.query_id} still running")
        if self.error is not None:
            raise self.error
        return self._result

    @property
    def streaming(self) -> bool:
        return self.buffer is not None

    # ------------------------------------------------------------- streaming
    def batches(self) -> Iterator[List[Tuple]]:
        """Yield match batches until the stream ends (blocking)."""
        if self.buffer is None:
            raise InvalidQueryError(
                f"query {self.query_id} is a count query; no match stream"
            )
        while True:
            batch = self.buffer.next_batch()
            if batch is None:
                break
            with self._lock:
                self._delivered += len(batch)
            yield batch
        self._raise_if_abnormal()

    def matches(self) -> Iterator[Tuple]:
        """Yield matches one by one until the stream ends (blocking)."""
        for batch in self.batches():
            yield from batch

    def fetch(
        self, limit: int = 256, cursor: Optional[int] = None
    ) -> FetchResult:
        """Up to ``limit`` matches from the current cursor (non-blocking).

        Streams cannot rewind — with one exception: ``cursor`` equal to
        the position *before* the most recent page re-serves that page
        verbatim (the replay window), so a client that lost the previous
        response in transit can retry the poll without losing matches.
        ``done`` goes True once the stream is exhausted *and* every
        match was delivered.
        """
        if self.buffer is None:
            raise InvalidQueryError(
                f"query {self.query_id} is a count query; no match stream"
            )
        if limit < 1:
            raise InvalidQueryError("fetch limit must be positive")
        with self._lock:
            if cursor is not None and cursor != self._delivered:
                replay = self._replay
                if replay is not None and cursor == replay[0]:
                    page, done = list(replay[1]), replay[2]
                    if done:
                        self._raise_if_abnormal()
                    return FetchResult(
                        matches=page, cursor=self._delivered, done=done
                    )
                raise InvalidQueryError(
                    f"cursor {cursor} is not the stream position "
                    f"({self._delivered}); streamed results cannot rewind"
                )
            out: List[Tuple] = []
            while len(out) < limit:
                if self._pending:
                    take = min(limit - len(out), len(self._pending))
                    out.extend(self._pending[:take])
                    del self._pending[:take]
                    continue
                if self._exhausted:
                    break
                batch = self.buffer.poll_batch()
                if batch is None:
                    self._exhausted = True
                    break
                if not batch:
                    # Nothing buffered right now; if the query already
                    # finished, the terminal marker (or a final batch) is
                    # instants away — spin once more via blocking read.
                    if self.done:
                        try:
                            final = self.buffer.next_batch(timeout=0.25)
                        except queue.Empty:
                            break
                        if final is None:
                            self._exhausted = True
                        else:
                            self._pending.extend(final)
                        continue
                    break
                self._pending.extend(batch)
            self._delivered += len(out)
            done = self._exhausted and not self._pending
            self._replay = (self._delivered - len(out), list(out), done)
        if done:
            self._raise_if_abnormal()
        return FetchResult(matches=out, cursor=self._delivered, done=done)

    @property
    def delivered(self) -> int:
        """Matches handed to the consumer so far."""
        with self._lock:
            return self._delivered

    def _raise_if_abnormal(self) -> None:
        """After the stream ends, surface abnormal termination.

        Failed, cancelled and deadline-expired streams re-raise their
        typed error so a consumer cannot mistake a cut-short stream for
        a complete one.  Clean truncation by ``limit`` is a success and
        raises nothing.
        """
        if self.done and self.status.finished and self.error is not None:
            raise self.error

    def describe(self) -> dict:
        """A JSON-friendly snapshot (the protocol's view of the query)."""
        out = {
            "query": self.query_id,
            "pattern": self.pattern_name,
            "graph": self.graph_name,
            "status": self.status.value,
            "streaming": self.streaming,
            "delivered": self.delivered,
            "truncated": self.truncated,
            "limit": self.limit,
            "error": str(self.error) if self.error else None,
        }
        if self.progress is not None:
            out["progress"] = self.progress.describe()
        return out
