"""Typed errors raised by the query service.

Every error carries a machine-readable ``code`` the wire protocol maps
into its ``error`` field, so clients can branch without parsing
messages.  Engine-level interruptions
(:class:`~repro.engine.control.QueryCancelled`,
:class:`~repro.engine.control.DeadlineExpired`) are re-exported here for
convenience — they are the typed statuses a finished query reports.
"""

from __future__ import annotations

from ..engine.backends.process import WorkerCrashed  # noqa: F401  (re-exported)
from ..engine.control import (  # noqa: F401  (re-exported)
    DeadlineExpired,
    ExecutionInterrupted,
    QueryCancelled,
)


class ServiceError(RuntimeError):
    """Base class for service-level failures."""

    code = "error"


class AdmissionError(ServiceError):
    """The query was fast-rejected: concurrency or memory budget exhausted.

    Raised *synchronously* from ``submit`` — a rejected query never gets
    a handle, never occupies a slot, and never affects in-flight work.
    """

    code = "rejected"

    def __init__(self, message: str, running: int = 0, queued: int = 0) -> None:
        super().__init__(message)
        self.running = running
        self.queued = queued


class UnknownGraphError(ServiceError):
    """The referenced data graph is not in the catalog."""

    code = "unknown_graph"


class UnknownQueryError(ServiceError):
    """The referenced query id is not (or no longer) tracked."""

    code = "unknown_query"


class InvalidQueryError(ServiceError):
    """The submission itself is malformed or unsupported."""

    code = "invalid_query"


class ServiceClosedError(ServiceError):
    """The service has been shut down; no new queries are admitted."""

    code = "closed"
