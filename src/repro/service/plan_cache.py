"""The canonical plan cache: isomorphic patterns share one plan search.

Plan search (paper §V, Algorithm 3) dominates latency for small queries
(Table IV), yet its outcome depends only on the pattern's *structure*
and the data graph's statistics — not on how a client happened to label
the pattern's vertices.  The cache therefore keys on the pattern's
canonical form (:mod:`repro.pattern.canonical`) plus the config fields
and data graph that influence the plan.

Cache levels on a hit:

* **exact** — the same labeled pattern was seen before: the fully built
  :class:`~repro.plan.generation.ExecutionPlan` is returned as-is (plans
  are read-only during execution, so sharing is safe);
* **isomorphic** — a relabeled twin was seen: the cached *matching
  order* is translated through the canonical mapping and the plan is
  regenerated for the submitted labels, skipping Algorithm 3 entirely.
  The emitted match set is unchanged either way: it is determined by the
  pattern's symmetry-breaking conditions, which are independent of the
  matching order.

Hits and misses are counted in the service telemetry registry
(``benu_service_plan_cache_{hits,misses}_total``), hits labeled by kind.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..engine.benu import PreparedData, prepare_plan
from ..engine.config import BenuConfig
from ..pattern.canonical import canonical_form
from ..pattern.pattern_graph import PatternGraph
from ..plan.generation import ExecutionPlan
from ..telemetry.snapshot import M_PLAN_CACHE_HITS, M_PLAN_CACHE_MISSES


@dataclass(frozen=True)
class PlanCacheKey:
    """Everything a compiled plan's shape depends on."""

    pattern_key: str  # canonical-form digest (isomorphism class)
    graph: str  # catalog name of the data graph (stats + degree filter)
    optimization_level: int
    compressed: bool
    generalized_clique_cache: bool
    degree_filter: bool

    @staticmethod
    def of(pattern_key: str, graph: str, config: BenuConfig) -> "PlanCacheKey":
        return PlanCacheKey(
            pattern_key=pattern_key,
            graph=graph,
            optimization_level=config.optimization_level,
            compressed=config.compressed,
            generalized_clique_cache=config.generalized_clique_cache,
            degree_filter=config.degree_filter,
        )


def _canonical_digest(canonical) -> str:
    payload = ";".join(
        f"{a},{b}" for a, b in sorted(tuple(sorted(e)) for e in canonical.edges())
    )
    text = f"n={canonical.num_vertices}|{payload}"
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def _exact_signature(pattern: PatternGraph) -> Tuple:
    """Per-exact-pattern memo key: edge set, plus vertex labels if any.

    Labeled patterns compute label-aware symmetry conditions and carry
    pool intersections, so a labeled pattern and its structural twin
    must never share a built plan — the canonical (structure-only) cache
    key may still share the winning matching *order* between them, which
    is safe: the order only affects cost, never the match set.
    """
    edges = tuple(sorted(tuple(sorted(e)) for e in pattern.graph.edges()))
    labels = getattr(pattern, "labels", None)
    if labels is None:
        return edges
    return (
        edges,
        tuple(sorted((u, repr(labels[u])) for u in pattern.graph.vertices)),
    )


@dataclass
class CachedPlanEntry:
    """Cached state for one (isomorphism class, graph, config) key."""

    #: Winning matching order, expressed in canonical vertex ids.
    canonical_order: Tuple[int, ...]
    #: Fully built plans, memoized per exact labeling.
    plans: Dict[Tuple, ExecutionPlan] = field(default_factory=dict)


class PlanCache:
    """Thread-safe canonical plan cache with telemetry counters."""

    def __init__(self, registry=None) -> None:
        self._registry = registry
        self._entries: Dict[PlanCacheKey, CachedPlanEntry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def _count(self, outcome: str) -> None:
        if outcome == "miss":
            self.misses += 1
            if self._registry is not None:
                self._registry.counter(
                    M_PLAN_CACHE_MISSES, "plan-cache misses (full plan search ran)"
                ).inc()
        else:
            self.hits += 1
            if self._registry is not None:
                self._registry.counter(
                    M_PLAN_CACHE_HITS,
                    "plan-cache hits (plan search skipped)",
                    ("kind",),
                ).inc(kind=outcome)

    def get_or_build(
        self,
        pattern: PatternGraph,
        prepared: PreparedData,
        graph_name: str,
        config: BenuConfig,
        tracer=None,
    ) -> Tuple[ExecutionPlan, str]:
        """The plan for ``pattern`` on ``graph_name`` under ``config``.

        Returns ``(plan, outcome)`` with outcome ``"exact"``,
        ``"isomorphic"`` (both hits — no plan search ran) or ``"miss"``.
        """
        canonical, to_canonical = canonical_form(pattern.graph)
        key = PlanCacheKey.of(_canonical_digest(canonical), graph_name, config)
        exact = _exact_signature(pattern)

        with self._lock:
            entry = self._entries.get(key)
            cached_plan = entry.plans.get(exact) if entry is not None else None
            canonical_order = entry.canonical_order if entry is not None else None

        if cached_plan is not None:
            self._count("exact")
            return cached_plan, "exact"

        if canonical_order is not None:
            # Translate the winning order into this labeling and skip
            # Algorithm 3: generation + optimization only.
            from_canonical = {c: u for u, c in to_canonical.items()}
            order = [from_canonical[c] for c in canonical_order]
            plan = prepare_plan(
                pattern, prepared, config, order=order, tracer=tracer
            )
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    entry.plans.setdefault(exact, plan)
            self._count("isomorphic")
            return plan, "isomorphic"

        plan = prepare_plan(pattern, prepared, config, tracer=tracer)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = CachedPlanEntry(
                    canonical_order=tuple(to_canonical[u] for u in plan.order)
                )
                self._entries[key] = entry
            entry.plans.setdefault(exact, plan)
        self._count("miss")
        return plan, "miss"

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
