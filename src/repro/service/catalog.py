"""The graph catalog: each data graph loaded, relabeled and stored once.

A one-shot ``run_benu`` pays graph relabeling and distributed-store
construction on every call; a resident service registers a graph once
and every subsequent query reuses:

* the degree-relabeled graph and its id translation (``PreparedData``);
* the distributed KV store built from it (one per storage profile —
  adjacency backend × partitions × latency model);
* warm per-worker database caches (:class:`~repro.storage.cache.CachePool`),
  checked out exclusively per running query and returned warm.

The catalog accounts its resident bytes (``memory_bytes``) and evicts
least-recently-used, unpinned entries when a capacity is configured —
the service pins an entry for the duration of each query using it.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Tuple

from ..engine.benu import PreparedData, prepare_data
from ..engine.config import BenuConfig
from ..engine.granularity import TaskCostProfile
from ..faults import NULL_INJECTOR, SITE_CATALOG_EVICT
from ..graph.graph import Graph
from ..labeled.graphs import LabeledGraph
from ..plan.cost import GraphStats
from ..storage.cache import CachePool
from ..storage.kvstore import DistributedKVStore
from ..storage.partition import PartitionInfo
from ..telemetry.events import EV_CATALOG_EVICTED, NULL_EVENTS
from ..telemetry.snapshot import G_CATALOG_BYTES, M_CATALOG_EVICTIONS
from .errors import InvalidQueryError, UnknownGraphError

#: Identifies which distributed store a config needs.
StoreKey = Tuple[str, int, object]
#: Identifies which warm cache pool a config needs (on top of a store).
PoolKey = Tuple[StoreKey, int, Optional[int], str]


def _store_key(config: BenuConfig) -> StoreKey:
    return (config.adjacency_backend, config.num_partitions, config.latency)


def _pool_key(config: BenuConfig) -> PoolKey:
    return (
        _store_key(config),
        config.num_workers,
        config.cache_capacity_bytes,
        config.cache_policy,
    )


class CatalogEntry:
    """One registered data graph and its shared, reusable state."""

    def __init__(
        self,
        name: str,
        prepared: PreparedData,
        partition: Optional[PartitionInfo] = None,
        labeled: Optional[LabeledGraph] = None,
    ) -> None:
        self.name = name
        self.prepared = prepared
        self.stats = GraphStats.of(prepared.graph)
        #: Execution-space labeled view (vertex labels following any
        #: relabeling), or None when the graph registered without labels.
        #: BENU-QL label predicates require it.
        self.labeled = labeled
        #: This node's slot in a sharded deployment (shard *i* of *N*);
        #: None for an unpartitioned, single-node registration.  Queries
        #: over a partitioned entry run only the owned start-vertex slice.
        self.partition = partition
        self._owned_starts = None
        self.pins = 0
        self.last_used = 0  # logical clock maintained by the catalog
        self._stores: Dict[StoreKey, DistributedKVStore] = {}
        # Measured task-cost EWMA per plan profile: warm process-backend
        # runs re-chunk from what the previous run actually cost.
        self.task_costs = TaskCostProfile()
        # Pools not currently checked out by a running query.
        self._idle_pools: Dict[PoolKey, List[CachePool]] = {}
        self._checked_out = 0
        self._lock = threading.Lock()

    @property
    def graph(self) -> Graph:
        return self.prepared.graph

    def owned_start_vertices(self):
        """This shard's start-vertex task slice, or None when unpartitioned.

        Ownership is evaluated on *execution-space* ids (after any
        relabeling), so every shard that registered the same full graph
        under the same deterministic relabel computes the same disjoint
        slices without coordination.
        """
        if self.partition is None:
            return None
        if self._owned_starts is None:
            self._owned_starts = self.partition.owned_vertices(
                self.prepared.graph
            )
        return self._owned_starts

    # ------------------------------------------------------------------
    def store_for(self, config: BenuConfig) -> DistributedKVStore:
        """The distributed store for this config's storage profile."""
        key = _store_key(config)
        with self._lock:
            store = self._stores.get(key)
            if store is None:
                store = DistributedKVStore.from_graph(
                    self.prepared.graph,
                    num_partitions=config.num_partitions,
                    latency=config.latency,
                    backend=config.adjacency_backend,
                )
                self._stores[key] = store
            return store

    def checkout_pool(self, config: BenuConfig) -> Tuple[PoolKey, CachePool]:
        """Borrow a warm cache pool (exclusive for one running query).

        An idle warm pool is reused; otherwise a fresh one is created
        (so concurrent queries on the same graph never share mutable
        cache state — up to one pool per concurrent query accumulates).
        """
        store = self.store_for(config)
        key = _pool_key(config)
        with self._lock:
            idle = self._idle_pools.get(key)
            if idle:
                pool = idle.pop()
            else:
                pool = CachePool(
                    store,
                    num_workers=config.num_workers,
                    capacity_bytes=config.cache_capacity_bytes,
                    policy=config.cache_policy,
                )
            self._checked_out += 1
            return key, pool

    def checkin_pool(self, key: PoolKey, pool: CachePool) -> None:
        with self._lock:
            self._idle_pools.setdefault(key, []).append(pool)
            self._checked_out -= 1

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Resident bytes: graph adjacency + stores + idle warm caches.

        Checked-out pools are counted by their owner query, not here.
        """
        with self._lock:
            total = self.prepared.graph.memory_bytes()
            total += sum(store.total_bytes() for store in self._stores.values())
            total += sum(
                pool.memory_bytes()
                for pools in self._idle_pools.values()
                for pool in pools
            )
            return total


class GraphCatalog:
    """Named, memory-accounted registry of prepared data graphs.

    ``capacity_bytes=None`` disables eviction.  All methods are
    thread-safe.
    """

    def __init__(
        self, capacity_bytes: Optional[int] = None, registry=None,
        events=NULL_EVENTS, injector=NULL_INJECTOR,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity must be non-negative or None")
        self.capacity_bytes = capacity_bytes
        self._registry = registry
        self._events = events
        self._injector = injector
        self._entries: Dict[str, CatalogEntry] = {}
        self._clock = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        graph: Graph,
        relabel: bool = True,
        replace: bool = False,
        partition: Optional[PartitionInfo] = None,
        labels: Optional[Mapping] = None,
    ) -> CatalogEntry:
        """Load ``graph`` into the catalog under ``name``.

        The graph is degree-relabeled here, once, unless ``relabel`` is
        False (pre-relabeled sources like the bundled datasets).
        ``partition`` marks the entry as one shard's slice of a
        partitioned deployment — queries against it enumerate only the
        owned start vertices.  Halo-bounded partitions must register
        with ``relabel=False``: shards relabeling different subgraphs
        would disagree on execution ids (and so on ownership).
        ``labels`` (original-id vertex → label) attaches a labeled view
        so BENU-QL label predicates can run against this graph; vertices
        absent from the mapping are unlabeled (label ``None``) and never
        match a label predicate.
        """
        if (
            partition is not None
            and partition.halo_hops is not None
            and relabel
        ):
            raise InvalidQueryError(
                "halo-bounded partitions require relabel=False; shards "
                "relabeling different subgraphs would disagree on ownership"
            )
        prepared = prepare_data(graph, BenuConfig(relabel=relabel))
        labeled = None
        if labels is not None:
            to_exec = prepared.mapping or {}
            exec_labels = {
                to_exec.get(v, v): labels.get(v) for v in graph.vertices
            }
            labeled = LabeledGraph(
                prepared.graph.edges(),
                exec_labels,
                vertices=prepared.graph.vertices,
            )
        with self._lock:
            if name in self._entries and not replace:
                raise InvalidQueryError(
                    f"graph {name!r} is already registered (use replace)"
                )
            entry = CatalogEntry(
                name, prepared, partition=partition, labeled=labeled
            )
            self._clock += 1
            entry.last_used = self._clock
            self._entries[name] = entry
        self._evict_over_capacity(protect=name)
        return entry

    def get(self, name: str) -> CatalogEntry:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                known = ", ".join(sorted(self._entries)) or "(none)"
                raise UnknownGraphError(
                    f"unknown graph {name!r}; registered: {known}"
                )
            self._clock += 1
            entry.last_used = self._clock
            return entry

    def pin(self, name: str) -> CatalogEntry:
        """Get an entry and protect it from eviction until :meth:`unpin`."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                known = ", ".join(sorted(self._entries)) or "(none)"
                raise UnknownGraphError(
                    f"unknown graph {name!r}; registered: {known}"
                )
            self._clock += 1
            entry.last_used = self._clock
            entry.pins += 1
            return entry

    def unpin(self, name: str) -> None:
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None and entry.pins > 0:
                entry.pins -= 1
        self._evict_over_capacity()

    def drop(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)
        self._update_gauge()

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Total resident bytes across all entries."""
        with self._lock:
            entries = list(self._entries.values())
        return sum(entry.memory_bytes() for entry in entries)

    def _update_gauge(self) -> None:
        if self._registry is not None:
            self._registry.gauge(
                G_CATALOG_BYTES, "resident bytes held by the graph catalog"
            ).set(self.memory_bytes())

    def _evict_over_capacity(self, protect: Optional[str] = None) -> int:
        """Evict unpinned LRU entries until within capacity.

        The ``protect`` entry (just registered) is evicted last, so a
        single over-budget graph can still be queried.  Returns the
        number of evictions.
        """
        evicted = 0
        if self.capacity_bytes is None:
            self._update_gauge()
            return evicted
        while self.memory_bytes() > self.capacity_bytes:
            if self._injector.enabled:
                self._injector.hit(SITE_CATALOG_EVICT)
            with self._lock:
                victims = [
                    e
                    for e in self._entries.values()
                    if e.pins == 0 and e._checked_out == 0 and e.name != protect
                ]
                if not victims:
                    break
                victim = min(victims, key=lambda e: e.last_used)
                del self._entries[victim.name]
                evicted += 1
            if self._registry is not None:
                self._registry.counter(
                    M_CATALOG_EVICTIONS, "graphs evicted from the catalog"
                ).inc()
            self._events.emit(EV_CATALOG_EVICTED, graph=victim.name)
        self._update_gauge()
        return evicted
