"""A reference interpreter for execution plans.

Executes instructions one by one with an explicit environment — no code
generation, no peepholes, no early exits beyond the natural empty-loop
skip.  It is deliberately the most literal reading of the plan semantics
(Table III) and serves as the oracle the compiled executor is tested
against: for every plan, graph and start vertex, interpreter and compiled
code must produce identical result multisets.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..plan.codegen import TaskCounters
from ..plan.generation import ExecutionPlan
from ..plan.instructions import VG, FilterKind, Instruction, InstructionType


class _Counters:
    __slots__ = ("int_ops", "trc_ops", "trc_misses", "dbq_ops", "enu_steps", "results")

    def __init__(self) -> None:
        self.int_ops = 0
        self.trc_ops = 0
        self.trc_misses = 0
        self.dbq_ops = 0
        self.enu_steps = 0
        self.results = 0


def _bind_predicates(filters, env) -> list:
    """Resolve each filter to a closed predicate, once per INT execution.

    The environment lookup ``env[f.var]`` and the kind dispatch happen
    here — once per filter — instead of once per candidate × filter
    inside the scan loop.
    """
    checks = []
    for f in filters:
        ref = env[f.var]  # hoisted: the reference is loop-invariant
        kind = f.kind
        if kind is FilterKind.GT:
            checks.append(lambda v, ref=ref: v > ref)
        elif kind is FilterKind.LT:
            checks.append(lambda v, ref=ref: v < ref)
        else:
            checks.append(lambda v, ref=ref: v != ref)
    return checks


def _apply_filters(values, env, filters) -> set:
    checks = _bind_predicates(filters, env)
    if len(checks) == 1:
        chk = checks[0]
        return {v for v in values if chk(v)}
    return {v for v in values if all(chk(v) for chk in checks)}


def interpret_plan(
    plan: ExecutionPlan,
    start: int,
    get_adj: Callable[[int], FrozenSet[int]],
    vset: FrozenSet[int] = frozenset(),
    emit: Optional[Callable] = None,
    tcache: Optional[dict] = None,
    candidate_override: Optional[FrozenSet[int]] = None,
    profiler=None,
) -> TaskCounters:
    """Run one local search task by direct interpretation.

    Mirrors :meth:`repro.plan.codegen.CompiledPlan.run`, including the
    task-splitting override of the second matching-order vertex.

    ``profiler`` (a :class:`repro.telemetry.SamplingProfiler`) samples the
    DBQ round-trips by wrapping ``get_adj`` — the interpreter counterpart
    of the probes codegen compiles into plan functions.
    """
    if profiler is not None:
        get_adj = profiler.timed("DBQ", get_adj)
    instructions = plan.instructions
    counters = _Counters()
    env: Dict[str, object] = {}
    cache = tcache if tcache is not None else {}
    second_fvar = f"f{plan.order[1]}" if len(plan.order) > 1 else None

    constants = plan.constants

    def value_of(name: str):
        if name == VG:
            return vset
        if name in env:
            return env[name]
        return constants[name]

    def execute(pc: int) -> None:
        if pc >= len(instructions):
            return
        inst = instructions[pc]
        kind = inst.type
        if kind is InstructionType.INI:
            env[inst.target] = start
        elif kind is InstructionType.DBQ:
            counters.dbq_ops += 1
            env[inst.target] = get_adj(env[inst.operands[0]])
        elif kind is InstructionType.INT:
            counters.int_ops += 1
            sets = [value_of(op) for op in inst.operands]
            result = set(sets[0])
            for s in sets[1:]:
                result.intersection_update(s)
            if inst.filters:
                result = _apply_filters(result, env, inst.filters)
            env[inst.target] = result
            if not result:
                return  # empty candidate set: backtrack (Section III-A)
        elif kind is InstructionType.TRC:
            counters.trc_ops += 1
            key = tuple(sorted(env[op] for op in inst.operands[:-2]))
            cached = cache.get(key)
            if cached is None:
                counters.trc_misses += 1
                cached = frozenset(value_of(inst.operands[-2])).intersection(
                    value_of(inst.operands[-1])
                )
                cache[key] = cached
            env[inst.target] = cached
            if not cached:
                return  # empty candidate set: backtrack (Section III-A)
        elif kind is InstructionType.ENU:
            pool = value_of(inst.operands[0])
            if inst.target == second_fvar and candidate_override is not None:
                pool = set(pool) & candidate_override
            for v in pool:
                counters.enu_steps += 1
                env[inst.target] = v
                execute(pc + 1)
            env.pop(inst.target, None)
            return  # the loop owns the rest of the program
        elif kind is InstructionType.RES:
            counters.results += 1
            if emit is not None:
                slots = []
                for u, op in zip(plan.pattern.vertices, inst.operands):
                    value = value_of(op)
                    if u in plan.compressed_vertices:
                        slots.append(frozenset(value))
                    else:
                        slots.append(value)
                emit(tuple(slots))
            return
        else:  # pragma: no cover
            raise AssertionError(f"unknown instruction {inst}")
        execute(pc + 1)

    execute(0)
    return TaskCounters(
        counters.int_ops,
        counters.trc_ops,
        counters.trc_misses,
        counters.dbq_ops,
        counters.enu_steps,
        counters.results,
    )


def interpret_all(
    plan: ExecutionPlan,
    data_vertices,
    get_adj: Callable[[int], FrozenSet[int]],
    emit: Optional[Callable] = None,
    profiler=None,
) -> TaskCounters:
    """Interpret the plan for every start vertex; sum the counters."""
    vset = frozenset(data_vertices)
    total = TaskCounters()
    for v in data_vertices:
        total = total + interpret_plan(
            plan, v, get_adj, vset, emit, tcache={}, profiler=profiler
        )
    return total
