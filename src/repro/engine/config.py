"""Configuration for BENU runs.

Defaults mirror the paper's setup (Section VII) scaled to the simulated
environment: the paper used 16 worker machines × 24 threads, a 30 GB
database cache and task-splitting threshold τ = 500 on graphs of 10⁷–10⁹
edges; our stand-in graphs are ~10⁴–10⁵ edges, so the defaults scale
accordingly while keeping every ratio meaningful.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..faults import FaultConfig
from ..storage.kvstore import LatencyModel
from ..telemetry.runtime import TelemetryConfig

#: The adjacency layouts the engine can negotiate end-to-end.
ADJACENCY_BACKENDS = ("frozenset", "csr")

#: The execution runtimes the engine can negotiate end-to-end
#: (see repro.engine.backends): "simulated" — deterministic single-core
#: cluster simulation; "inline" — the literal plan interpreter on the
#: simulated task loop; "process" — real OS worker processes.
EXECUTION_BACKENDS = ("simulated", "inline", "process")


def _default_process_workers() -> int:
    """All cores but one — the process backend's conventional default."""
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass(frozen=True)
class SimulationCostModel:
    """Per-operation costs for the deterministic time simulation.

    Values approximate measured Python/C set-op costs; absolute numbers do
    not matter for any experiment shape, only the INT ≪ cache-hit ≪ DBQ
    ordering the paper's instruction ranking assumes.
    """

    int_seconds: float = 2e-7     # one set intersection / filter pass
    trc_seconds: float = 1e-7     # triangle-cache lookup
    enu_seconds: float = 5e-8     # one loop iteration step
    result_seconds: float = 5e-8  # reporting one match/code
    cache_hit_seconds: float = 2e-7  # shared in-memory cache access


@dataclass
class BenuConfig:
    """Everything tunable about a BENU run."""

    #: Number of simulated worker machines (the paper's reducers).
    num_workers: int = 4
    #: Working threads per worker sharing the DB cache.
    threads_per_worker: int = 4
    #: DB cache capacity in bytes per worker; None = unbounded, 0 = off.
    cache_capacity_bytes: Optional[int] = None
    #: DB cache replacement policy: "lru" (the paper), "fifo", "lfu", "random".
    cache_policy: str = "lru"
    #: Adjacency layout served by the distributed store and consumed by
    #: compiled plans: "frozenset" (hash sets, the historical layout) or
    #: "csr" (packed sorted arrays + adaptive intersection kernels; exact
    #: 8-bytes-per-id accounting, shareable zero-copy between processes).
    adjacency_backend: str = "frozenset"
    #: Execution runtime: "simulated" (deterministic cluster simulation,
    #: the default), "inline" (plan interpreter, the oracle), or
    #: "process" (a pool of OS worker processes — real cores).
    execution_backend: str = "simulated"
    #: Task-splitting degree threshold τ (Section V-B); None disables.
    split_threshold: Optional[int] = 64
    #: Optimization level 0–3 (Fig. 7's x-axis); 3 is the paper's default.
    optimization_level: int = 3
    #: Generalized clique caching — the paper's proposed Opt3 extension
    #: (Section IV-B "future work"); off by default to match the paper.
    generalized_clique_cache: bool = False
    #: Degree filtering (the Section IV-A hook): drop candidates whose data
    #: degree is below the pattern vertex's degree.  Off by default.
    degree_filter: bool = False
    #: Emit VCBC-compressed codes (the paper's default execution mode).
    compressed: bool = False
    #: Collect matches/codes (True) or only count them (False).
    collect: bool = False
    #: Process backend: target wall seconds of work per queue pull when a
    #: measured task cost is available (see ``repro.engine.granularity``).
    chunk_target_seconds: float = 0.02
    #: Relabel the data graph by the (degree, id) total order first.
    #: Disable when the graph is already relabeled (the bundled datasets are).
    relabel: bool = True
    #: Storage partitions of the distributed KV store.
    num_partitions: int = 16
    #: Database latency model.
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: Per-operation simulated costs.
    cost_model: SimulationCostModel = field(default_factory=SimulationCostModel)
    #: Process backend: how many times a query's lost task slices may be
    #: re-executed on a fresh pool after worker crashes before the run
    #: fails with ``WorkerCrashed``.  0 disables recovery.
    task_retries: int = 2
    #: Deterministic fault-injection schedule; None — the default — means
    #: no injection (the ``BENU_FAULTS`` env var, resolved at execution
    #: time, can still supply one for chaos runs).
    faults: Optional[FaultConfig] = None
    #: Telemetry (tracing + hot-loop profiling); None — the default —
    #: disables every hook.  A metrics snapshot is still attached to each
    #: result, built once at end-of-run from the aggregated stats.
    telemetry: Optional[TelemetryConfig] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("need at least one worker")
        if self.threads_per_worker < 1:
            raise ValueError("need at least one thread per worker")
        if self.split_threshold is not None and self.split_threshold < 1:
            raise ValueError("split threshold must be positive")
        if self.chunk_target_seconds <= 0:
            raise ValueError("chunk target seconds must be positive")
        if self.task_retries < 0:
            raise ValueError("task retries must be non-negative")
        if isinstance(self.faults, str):
            # Accept the BENU_FAULTS string grammar directly.
            self.faults = FaultConfig.parse(self.faults)
        if not 0 <= self.optimization_level <= 3:
            raise ValueError("optimization level must be 0..3")
        if self.adjacency_backend not in ADJACENCY_BACKENDS:
            raise ValueError(
                f"unknown adjacency backend {self.adjacency_backend!r}; "
                f"options: {sorted(ADJACENCY_BACKENDS)}"
            )
        if self.execution_backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"unknown execution backend {self.execution_backend!r}; "
                f"options: {sorted(EXECUTION_BACKENDS)}"
            )
        from ..storage.policies import POLICIES

        if self.cache_policy not in POLICIES:
            raise ValueError(
                f"unknown cache policy {self.cache_policy!r}; "
                f"options: {sorted(POLICIES)}"
            )
