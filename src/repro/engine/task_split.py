"""Task splitting for skewed workloads (Section V-B).

Real-world graphs are power-law: a local search task rooted at a hub
vertex can be orders of magnitude heavier than the median task, turning a
few workers into stragglers.  Tasks for start vertices with
``d(start) ≥ τ`` are split into ``⌈|C_{k2}| / τ⌉`` subtasks, each
enumerating a disjoint, equal-sized slice of the second-level candidate
set:

* if u_{k1} and u_{k2} are adjacent in P, C_{k2} ⊆ Γ(start), so the slices
  partition the start vertex's adjacency set;
* otherwise C_{k2} ⊆ V(G) and the slices partition the whole vertex set.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Sequence

from ..graph.graph import Graph, Vertex
from ..plan.generation import ExecutionPlan
from ..plan.instructions import InstructionType, fvar
from ..storage.partition import partition_of
from .local_task import LocalSearchTask


def plan_supports_splitting(plan: ExecutionPlan) -> bool:
    """True when the plan still enumerates the second matching-order vertex.

    VCBC compression can delete that ENU (e.g. star patterns whose cover is
    just the hub); slicing a reported candidate *set* would duplicate codes,
    so such plans fall back to unsplit tasks.
    """
    if len(plan.order) < 2:
        return False
    target = fvar(plan.order[1])
    return any(
        inst.type is InstructionType.ENU and inst.target == target
        for inst in plan.instructions
    )


def split_slices(
    candidates: Sequence[Vertex], num_slices: int
) -> List[FrozenSet[Vertex]]:
    """Partition ``candidates`` into ``num_slices`` near-equal frozensets.

    Slices are strided (round-robin over the id-sorted candidates) rather
    than contiguous: ids correlate with degree under the (degree, id)
    total order, so contiguous ranges would concentrate every hub neighbor
    — and most of the subtask cost — in the last slice.
    """
    if num_slices < 1:
        raise ValueError("need at least one slice")
    ordered = sorted(candidates)
    return [frozenset(ordered[i::num_slices]) for i in range(num_slices)]


def partition_start_vertices(
    data: Graph, shard_index: int, num_shards: int
) -> Sequence[Vertex]:
    """Shard ``shard_index``'s slice of the start-vertex task space.

    BENU's task space is one local search task per data vertex
    (Algorithm 2 line 4); the slices are assigned by the storage tier's
    canonical hash rule (:func:`repro.storage.partition.partition_of`),
    so they are disjoint, cover every vertex, and — crucially — every
    node holding the same graph computes the same slice without
    coordination.  Vertex order within a slice is preserved, keeping a
    shard's enumeration order a subsequence of the single-node run's.
    """
    if not 0 <= shard_index < num_shards:
        raise ValueError(
            f"shard index {shard_index} out of range for {num_shards} shards"
        )
    return tuple(
        v for v in data.vertices if partition_of(v, num_shards) == shard_index
    )


def generate_tasks(
    plan: ExecutionPlan,
    data: Graph,
    split_threshold: int = None,
    start_vertices: Optional[Sequence[Vertex]] = None,
) -> Iterator[LocalSearchTask]:
    """All local search tasks of a BENU job, split where the threshold asks.

    With ``split_threshold=None`` every data vertex yields exactly one task
    (Algorithm 2 line 4).  ``start_vertices`` restricts task generation to
    a slice of the start-vertex space (a shard's owned vertices — see
    :func:`partition_start_vertices`); splitting decisions depend only on
    each start vertex's degree, so a sliced run yields exactly the tasks
    the full run would for those vertices.
    """
    splittable = split_threshold is not None and plan_supports_splitting(plan)
    first, second = plan.order[0], plan.order[1] if len(plan.order) > 1 else None
    adjacent = second is not None and plan.pattern.graph.has_edge(first, second)

    for v in (data.vertices if start_vertices is None else start_vertices):
        degree = data.degree(v)
        if not splittable or degree < split_threshold:
            yield LocalSearchTask(v)
            continue
        pool: Sequence[Vertex] = (
            sorted(data.neighbors(v)) if adjacent else data.vertices
        )
        num_slices = -(-len(pool) // split_threshold)  # ceil division
        if num_slices <= 1:
            yield LocalSearchTask(v)
            continue
        for i, chunk in enumerate(split_slices(pool, num_slices)):
            yield LocalSearchTask(v, chunk, split_index=i, split_total=num_slices)
