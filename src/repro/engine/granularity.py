"""Measured task granularity for the process backend.

How many tasks a worker should receive per queue pull is a trade
between two failure modes: pulls too small and the run is dominated by
IPC (pickling the chunk, waking the parent, the result envelope); pulls
too large and a worker that drew a hub vertex serializes the tail of
the run while its peers idle.  The old heuristic — a fixed number of
pulls per worker — knows nothing about how expensive a task actually
is, so the same pattern could be IPC-bound on a cheap workload and
imbalanced on a heavy one.

This module sizes chunks from *measured* per-task cost instead:

* :func:`measured_chunksize` targets a wall-clock budget per pull
  (``target_seconds``) given the mean task cost observed on a previous
  run, clamped so every worker still gets at least
  ``MIN_PULLS_PER_WORKER`` pulls for load balancing;
* :func:`fallback_chunksize` is the cold-start policy when no
  measurement exists yet;
* :class:`TaskCostProfile` is the EWMA ledger the service's graph
  catalog keeps per (pattern, plan order, split threshold, mode), so a
  resident service re-chunks every warm run from what the last run
  actually cost.

The mean task wall cost itself comes for free: the process backend's
per-task records already carry each task's wall seconds for telemetry,
and the result surfaces their mean as ``mean_task_wall_seconds``.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

__all__ = [
    "MIN_PULLS_PER_WORKER",
    "TaskCostProfile",
    "fallback_chunksize",
    "measured_chunksize",
    "task_cost_key",
]

#: Keep at least this many pulls per worker so the queue stays adaptive
#: under skewed task costs (Fig. 9's heavy-tail motivates the floor).
MIN_PULLS_PER_WORKER = 4

#: Cold-start pulls per worker when no task-cost measurement exists.
FALLBACK_PULLS_PER_WORKER = 8


def fallback_chunksize(num_tasks: int, num_workers: int) -> int:
    """Cold-start chunk size: a fixed pull budget per worker.

    >>> fallback_chunksize(2400, 2)
    150
    """
    return max(1, num_tasks // (num_workers * FALLBACK_PULLS_PER_WORKER))


def measured_chunksize(
    num_tasks: int,
    num_workers: int,
    task_cost_seconds: Optional[float],
    target_seconds: float = 0.02,
    min_pulls_per_worker: int = MIN_PULLS_PER_WORKER,
) -> int:
    """Tasks per queue pull so one pull costs ~``target_seconds`` of work.

    ``task_cost_seconds`` is the measured mean wall cost of one task
    (from a previous run's records); None or non-positive falls back to
    :func:`fallback_chunksize`.  The result is clamped to keep at least
    ``min_pulls_per_worker`` pulls per worker — balance still beats IPC
    amortization once chunks are big enough.

    >>> measured_chunksize(2400, 2, 0.00003)  # 30µs tasks -> ~666/pull
    300
    >>> measured_chunksize(2400, 2, 0.01)  # heavy tasks -> fine-grained
    2
    """
    if not task_cost_seconds or task_cost_seconds <= 0:
        return fallback_chunksize(num_tasks, num_workers)
    size = max(1, int(target_seconds / task_cost_seconds))
    balance_cap = max(1, num_tasks // (num_workers * min_pulls_per_worker))
    return max(1, min(size, balance_cap))


#: Profile key: (pattern name, matching order, split threshold, mode).
CostKey = Tuple[str, Tuple[str, ...], Optional[int], str]


def task_cost_key(plan, split_threshold: Optional[int], mode: str) -> CostKey:
    """The profile key for one plan execution's task-cost measurement.

    Task cost depends on the plan (pattern + matching order), how finely
    tasks were split, and whether matches are collected or only counted
    — not on worker count, so a measurement at one parallelism level
    re-chunks runs at any other.
    """
    return (
        plan.pattern.name,
        tuple(str(v) for v in plan.order),
        split_threshold,
        mode,
    )


class TaskCostProfile:
    """Thread-safe EWMA of mean task cost per :data:`CostKey`.

    >>> profile = TaskCostProfile(alpha=0.5)
    >>> key = ("triangle", ("1", "2", "3"), 64, "count")
    >>> profile.record(key, 0.004)
    >>> profile.record(key, 0.002)
    >>> profile.hint(key)
    0.003
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._costs: Dict[CostKey, float] = {}
        self._lock = threading.Lock()

    def record(self, key: CostKey, mean_task_seconds: float) -> None:
        """Fold one run's measured mean task cost into the profile."""
        if mean_task_seconds <= 0:
            return
        with self._lock:
            previous = self._costs.get(key)
            if previous is None:
                self._costs[key] = mean_task_seconds
            else:
                self._costs[key] = (
                    self.alpha * mean_task_seconds
                    + (1.0 - self.alpha) * previous
                )

    def hint(self, key: CostKey) -> Optional[float]:
        """The smoothed mean task cost, or None before any measurement."""
        with self._lock:
            return self._costs.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._costs)
