"""Compatibility shims over the process execution backend.

The real-multiprocessing executor that used to live here is now the
``process`` :class:`~repro.engine.backends.ExecutionBackend`
(:mod:`repro.engine.backends.process`), selected end-to-end via
``BenuConfig(execution_backend="process")`` — with streaming
enumeration, cooperative cancellation and full telemetry parity, none of
which the old counting-only runner had.  This module keeps the historical
entry points alive as thin wrappers returning the unified
:class:`~repro.engine.results.BenuResult` (``ParallelResult`` is gone —
every field it carried lives on the result object now).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..graph.graph import Graph
from ..plan.generation import ExecutionPlan
from .backends import ExecutionRequest, ProcessBackend
from .config import BenuConfig, _default_process_workers
from .results import BenuResult


@dataclass
class ParallelRunner:
    """Fan a plan's local search tasks over OS processes.

    Thin façade over :class:`~repro.engine.backends.ProcessBackend`; new
    code should go through ``run_benu``/``execute_plan`` with
    ``BenuConfig(execution_backend="process")`` instead.
    """

    plan: ExecutionPlan
    data: Graph
    num_workers: int = 0  # 0 = all cores but one (resolved in run())
    split_threshold: Optional[int] = 64
    backend: str = "frozenset"
    #: Tasks handed to a worker per queue pull; None = auto.
    queue_chunksize: Optional[int] = None

    def run(self) -> BenuResult:
        warnings.warn(
            "ParallelRunner is deprecated; use run_benu/execute_plan with "
            "BenuConfig(execution_backend='process') (the ExecutionBackend "
            "API) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run()

    def _run(self) -> BenuResult:
        config = BenuConfig(
            num_workers=self.num_workers or _default_process_workers(),
            split_threshold=self.split_threshold,
            adjacency_backend=self.backend,
            execution_backend="process",
            relabel=False,
        )
        return ProcessBackend(queue_chunksize=self.queue_chunksize).execute(
            ExecutionRequest(plan=self.plan, graph=self.data, config=config)
        )


def parallel_count(
    plan: ExecutionPlan,
    data: Graph,
    num_workers: Optional[int] = None,
    split_threshold: Optional[int] = 64,
    backend: str = "frozenset",
) -> BenuResult:
    """Count matches of ``plan`` over ``data`` with real OS parallelism."""
    warnings.warn(
        "parallel_count is deprecated; use run_benu/execute_plan with "
        "BenuConfig(execution_backend='process') (the ExecutionBackend "
        "API) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    runner = ParallelRunner(
        plan, data, split_threshold=split_threshold, backend=backend
    )
    if num_workers is not None:
        runner.num_workers = num_workers
    return runner._run()
