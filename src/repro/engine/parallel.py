"""A real multiprocessing executor (true parallelism, not simulation).

The :class:`SimulatedCluster` measures everything deterministically but
runs on one core.  This module actually fans local search tasks out over
OS processes — the closest a single machine gets to the paper's
16-worker deployment — and reports genuine wall-clock speedup.

Design notes
------------
* One process per worker; compiled closures cannot be pickled, so each
  worker compiles the plan in its initializer.
* Adjacency sharing is backend-negotiated.  Under ``backend="frozenset"``
  each worker inherits the graph's hash-set adjacency at fork
  (copy-on-write pages that unshare as refcounts touch them).  Under
  ``backend="csr"`` the parent packs the graph once into one
  ``multiprocessing.shared_memory`` block and workers *attach* by name:
  per-worker memory no longer scales with graph size, because no
  adjacency bytes cross the process boundary or get copied on fault.
* Tasks flow through a work queue (``imap_unordered`` with a small
  chunksize) instead of static round-robin chunks, so a worker that drew
  cheap tasks keeps pulling while another grinds through a hub vertex.
* Counting mode only: counters are tiny and cross the process boundary
  cheaply.  Collected matches would dominate IPC; use the simulated
  cluster (or per-worker files) for collection.
* Every task result carries the worker's kernel-dispatch delta since its
  previous result, so the parent's aggregate kernel counts are exact.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..graph.csr import ATTACH_STATS, CSRAdjacency, CSRShmHandle, ShmAttachStats
from ..graph.graph import Graph
from ..kernels.intersect import STATS as KERNEL_STATS, KernelStats
from ..plan.codegen import TaskCounters, compile_plan
from ..plan.generation import ExecutionPlan
from .config import ADJACENCY_BACKENDS
from .local_task import LocalSearchTask
from .task_split import generate_tasks

# Globals populated inside each worker process by the pool initializer.
_worker_state: dict = {}


def _init_worker(plan: ExecutionPlan, backend: str, payload) -> None:
    """Build per-process state: compiled plan + adjacency access.

    ``payload`` is the :class:`Graph` itself for the frozenset backend
    (inherited via fork) or a :class:`CSRShmHandle` for the csr backend
    (workers attach to the parent's shared block, copying nothing).
    """
    _worker_state["compiled"] = compile_plan(
        plan, mode="count", instrument=True, backend=backend
    )
    if backend == "csr":
        csr = CSRAdjacency.from_shared(payload)
        _worker_state["csr"] = csr  # keeps the mapping alive
        _worker_state["get_adj"] = csr.row
        _worker_state["vset"] = csr.universe()
    else:
        adjacency = payload.adjacency()
        _worker_state["get_adj"] = adjacency.__getitem__
        _worker_state["vset"] = frozenset(payload.vertices)
    _worker_state["kernel_base"] = KERNEL_STATS.as_tuple()


def _run_task(task: LocalSearchTask) -> Tuple[Tuple[int, ...], Tuple[int, ...], int]:
    """Execute one local search task; return (counters, kernel Δ, pid).

    The kernel delta is measured against this worker's previous task, so
    summing deltas across all results reconstructs the exact per-kernel
    totals regardless of how the queue interleaved the work.
    """
    state = _worker_state
    counters = state["compiled"].run(
        task.start,
        state["get_adj"],
        vset=state["vset"],
        tcache={},
        candidate_override=task.candidate_slice,
    )
    base = state["kernel_base"]
    now = KERNEL_STATS.as_tuple()
    state["kernel_base"] = now
    delta = tuple(n - b for n, b in zip(now, base))
    return (
        (
            counters.int_ops,
            counters.trc_ops,
            counters.trc_misses,
            counters.dbq_ops,
            counters.enu_steps,
            counters.results,
        ),
        delta,
        os.getpid(),
    )


@dataclass
class ParallelResult:
    """Outcome of a genuinely parallel run."""

    count: int
    counters: TaskCounters
    num_workers: int
    num_tasks: int
    wall_seconds: float
    #: Adjacency layout the workers ran against.
    backend: str = "frozenset"
    #: Exact per-kernel dispatch counts summed over all workers (csr only).
    kernel_counts: Dict[str, int] = field(default_factory=dict)
    #: Distinct worker processes that attached the shared CSR block.
    shm_attaches: int = 0
    #: Size of the shared block every worker mapped (0 under frozenset).
    shm_bytes: int = 0

    def record_to(self, registry) -> None:
        """Mirror kernel + shared-memory stats into a telemetry registry."""
        KernelStats(**{f: self.kernel_counts.get(f, 0) for f in KernelStats.FIELDS}).record_to(registry)
        ShmAttachStats(self.shm_attaches, self.shm_bytes).record_to(registry)


@dataclass
class ParallelRunner:
    """Fan a plan's local search tasks over OS processes."""

    plan: ExecutionPlan
    data: Graph
    num_workers: int = max(1, (os.cpu_count() or 2) - 1)
    split_threshold: Optional[int] = 64
    backend: str = "frozenset"
    #: Tasks handed to a worker per queue pull; small values keep the
    #: queue adaptive, larger ones amortize IPC.  None = auto.
    queue_chunksize: Optional[int] = None

    def _chunksize(self, num_tasks: int) -> int:
        if self.queue_chunksize is not None:
            return max(1, self.queue_chunksize)
        # ~16 pulls per worker: adaptive enough for skewed task costs,
        # coarse enough that pickling tasks is not the bottleneck.
        return max(1, num_tasks // (self.num_workers * 16))

    def run(self) -> ParallelResult:
        if self.backend not in ADJACENCY_BACKENDS:
            raise ValueError(f"unknown adjacency backend {self.backend!r}")
        tasks = list(
            generate_tasks(self.plan, self.data, self.split_threshold)
        )
        t0 = _time.perf_counter()

        shm = None
        shm_bytes = 0
        if self.backend == "csr":
            handle, shm = self.data.csr().to_shared()
            shm_bytes = handle.nbytes
            payload = handle
        else:
            payload = self.data

        try:
            if self.num_workers == 1:
                attach_base = ATTACH_STATS.attaches
                _init_worker(self.plan, self.backend, payload)
                results = [_run_task(t) for t in tasks]
                attaches = ATTACH_STATS.attaches - attach_base
            else:
                ctx = (
                    mp.get_context("fork")
                    if hasattr(os, "fork")
                    else mp.get_context()
                )
                with ctx.Pool(
                    processes=self.num_workers,
                    initializer=_init_worker,
                    initargs=(self.plan, self.backend, payload),
                ) as pool:
                    results = list(
                        pool.imap_unordered(
                            _run_task, tasks, chunksize=self._chunksize(len(tasks))
                        )
                    )
                # Each worker attaches exactly once, in its initializer.
                attaches = (
                    len({pid for _, _, pid in results})
                    if self.backend == "csr"
                    else 0
                )
        finally:
            if shm is not None:
                if self.num_workers == 1:
                    # The inline "worker" mapped the block in this process;
                    # drop its views so the mapping can actually close.
                    attached = _worker_state.get("csr")
                    _worker_state.clear()
                    if attached is not None:
                        attached.detach()
                shm.close()
                shm.unlink()

        total = TaskCounters()
        kernel_totals = [0] * len(KernelStats.FIELDS)
        for raw, delta, _pid in results:
            total = total + TaskCounters.from_tuple(raw)
            for i, d in enumerate(delta):
                kernel_totals[i] += d
        kernel_counts = {
            f: n for f, n in zip(KernelStats.FIELDS, kernel_totals) if n
        }
        return ParallelResult(
            count=total.results,
            counters=total,
            num_workers=self.num_workers,
            num_tasks=len(tasks),
            wall_seconds=_time.perf_counter() - t0,
            backend=self.backend,
            kernel_counts=kernel_counts,
            shm_attaches=attaches if self.backend == "csr" else 0,
            shm_bytes=shm_bytes,
        )


def parallel_count(
    plan: ExecutionPlan,
    data: Graph,
    num_workers: Optional[int] = None,
    split_threshold: Optional[int] = 64,
    backend: str = "frozenset",
) -> ParallelResult:
    """Count matches of ``plan`` over ``data`` with real OS parallelism."""
    runner = ParallelRunner(
        plan, data, split_threshold=split_threshold, backend=backend
    )
    if num_workers is not None:
        runner.num_workers = num_workers
    return runner.run()
