"""A real multiprocessing executor (true parallelism, not simulation).

The :class:`SimulatedCluster` measures everything deterministically but
runs on one core.  This module actually fans local search tasks out over
OS processes — the closest a single machine gets to the paper's
16-worker deployment — and reports genuine wall-clock speedup.

Design notes
------------
* One process per simulated worker; each builds its own compiled plan and
  in-memory adjacency view from the globals inherited at fork (compiled
  closures cannot be pickled, so compilation happens in the child).
* Counting mode only: counters are tiny and cross the process boundary
  cheaply.  Collected matches would dominate IPC; use the simulated
  cluster (or per-worker files) for collection.
* Start vertices are chunked round-robin, mirroring the simulated
  cluster's task shuffle, so per-worker workloads match the simulation.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time as _time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from ..plan.codegen import TaskCounters, compile_plan
from ..plan.generation import ExecutionPlan
from .local_task import LocalSearchTask
from .task_split import generate_tasks

# Globals populated inside each worker process by the pool initializer.
_worker_state: dict = {}


def _init_worker(plan: ExecutionPlan, graph: Graph) -> None:
    _worker_state["compiled"] = compile_plan(plan, mode="count", instrument=True)
    _worker_state["adjacency"] = graph.adjacency()
    _worker_state["vset"] = frozenset(graph.vertices)


def _run_chunk(tasks: Sequence[LocalSearchTask]) -> Tuple[int, ...]:
    compiled = _worker_state["compiled"]
    adjacency = _worker_state["adjacency"]
    vset = _worker_state["vset"]
    get_adj = adjacency.__getitem__
    total = TaskCounters()
    for task in tasks:
        counters = compiled.run(
            task.start,
            get_adj,
            vset=vset,
            tcache={},
            candidate_override=task.candidate_slice,
        )
        total = total + counters
    return (
        total.int_ops,
        total.trc_ops,
        total.trc_misses,
        total.dbq_ops,
        total.enu_steps,
        total.results,
    )


@dataclass
class ParallelResult:
    """Outcome of a genuinely parallel run."""

    count: int
    counters: TaskCounters
    num_workers: int
    num_tasks: int
    wall_seconds: float


@dataclass
class ParallelRunner:
    """Fan a plan's local search tasks over OS processes."""

    plan: ExecutionPlan
    data: Graph
    num_workers: int = max(1, (os.cpu_count() or 2) - 1)
    split_threshold: Optional[int] = 64
    chunks_per_worker: int = 8

    def run(self) -> ParallelResult:
        tasks = list(
            generate_tasks(self.plan, self.data, self.split_threshold)
        )
        t0 = _time.perf_counter()
        num_chunks = max(1, self.num_workers * self.chunks_per_worker)
        chunks: List[List[LocalSearchTask]] = [[] for _ in range(num_chunks)]
        for i, task in enumerate(tasks):
            chunks[i % num_chunks].append(task)
        chunks = [c for c in chunks if c]

        if self.num_workers == 1:
            _init_worker(self.plan, self.data)
            results = [_run_chunk(c) for c in chunks]
        else:
            ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
            with ctx.Pool(
                processes=self.num_workers,
                initializer=_init_worker,
                initargs=(self.plan, self.data),
            ) as pool:
                results = pool.map(_run_chunk, chunks)

        total = TaskCounters()
        for raw in results:
            total = total + TaskCounters.from_tuple(raw)
        return ParallelResult(
            count=total.results,
            counters=total,
            num_workers=self.num_workers,
            num_tasks=len(tasks),
            wall_seconds=_time.perf_counter() - t0,
        )


def parallel_count(
    plan: ExecutionPlan,
    data: Graph,
    num_workers: Optional[int] = None,
    split_threshold: Optional[int] = 64,
) -> ParallelResult:
    """Count matches of ``plan`` over ``data`` with real OS parallelism."""
    runner = ParallelRunner(plan, data, split_threshold=split_threshold)
    if num_workers is not None:
        runner.num_workers = num_workers
    return runner.run()
