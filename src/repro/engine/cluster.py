"""The simulated shared-nothing cluster (Fig. 2's architecture).

Historically this module held the whole task loop; that now lives in
:mod:`repro.engine.backends` (shared by the simulated, inline and process
runtimes), and :class:`SimulatedCluster` is the façade the rest of the
repo — experiments, benchmarks, the labeled-matching layer, the query
service — drives: it owns the distributed KV store for one data graph
and runs plans through whichever in-process backend the config selects.
"""

from __future__ import annotations

from typing import List, Optional

from ..graph.graph import Graph
from ..plan.generation import ExecutionPlan
from ..storage.kvstore import DistributedKVStore
from ..telemetry.runtime import Telemetry
from .backends import ExecutionRequest, get_backend
from .config import BenuConfig
from .control import ExecutionControl
from .local_task import LocalSearchTask
from .results import BenuResult


class SimulatedCluster:
    """Master + workers over one distributed KV store.

    ``store`` lets a long-lived owner (the query service's graph catalog)
    hand in an already-built distributed store so repeated queries over
    the same data graph skip the rebuild; it must have been built from
    ``data`` with a compatible backend.
    """

    def __init__(
        self,
        data: Graph,
        config: Optional[BenuConfig] = None,
        telemetry: Optional[Telemetry] = None,
        store: Optional[DistributedKVStore] = None,
    ) -> None:
        self.config = config or BenuConfig()
        self.data = data
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(self.config.telemetry)
        )
        self.store = store if store is not None else DistributedKVStore.from_graph(
            data,
            num_partitions=self.config.num_partitions,
            latency=self.config.latency,
            backend=self.config.adjacency_backend,
        )

    # ------------------------------------------------------------------
    def run_plan(
        self,
        plan: ExecutionPlan,
        tasks: Optional[List[LocalSearchTask]] = None,
        sink=None,
        control: Optional[ExecutionControl] = None,
        worker_caches: Optional[List] = None,
        progress=None,
        start_vertices=None,
    ) -> BenuResult:
        """Execute one plan over the whole data graph.

        ``tasks`` overrides task generation (Exp-4 uses this to compare
        splitting on/off over identical plans).  ``sink`` (any object with
        an ``emit`` method, see :mod:`repro.engine.sinks`) streams results
        instead of collecting them in memory; when given, the result's
        ``matches``/``codes`` stay None regardless of ``config.collect``.

        ``control`` is checked once per task boundary: a cancel or an
        expired deadline raises the corresponding typed
        :class:`~repro.engine.control.ExecutionInterrupted` out of this
        method (no partial result is returned).  ``worker_caches`` hands
        each worker an existing database cache to keep warm across runs
        (one per worker, see :class:`~repro.storage.cache.CachePool`).
        """
        name = self.config.execution_backend
        if name == "process":
            raise ValueError(
                "the process backend runs against the raw graph, not a "
                "simulated store — use run_benu/execute_plan, which "
                "dispatch on config.execution_backend"
            )
        backend = get_backend(name)
        request = ExecutionRequest(
            plan=plan,
            graph=self.data,
            config=self.config,
            telemetry=self.telemetry,
            tasks=tasks,
            sink=sink,
            control=control,
            store=self.store,
            worker_caches=worker_caches,
            start_vertices=start_vertices,
        )
        if progress is not None:
            request.progress = progress
        return backend.execute(request)
