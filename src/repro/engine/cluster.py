"""The simulated shared-nothing cluster (Fig. 2's architecture).

The master generates local search tasks and shuffles them evenly across
worker machines (the paper hands them to 16 reducers round-robin); each
worker executes its tasks against its shared database cache, on simulated
threads.  The job makespan is the slowest worker's makespan — exactly the
quantity Figs. 9 and 10 plot.

Telemetry: every ``run_plan`` builds a fresh
:class:`~repro.telemetry.registry.MetricsRegistry`, populated at end-of-run
from the per-worker stats ledgers (so the default, hook-free path stays as
fast as before), and attaches the resulting snapshot to the result.  With
``config.telemetry`` set, the run additionally records a span tree
(codegen → task-generation → execution → per-worker spans), the simulated
schedule timeline, a DB payload-size histogram, and — with ``profile=True``
— sampled per-instruction timings from probes compiled into the plan.
"""

from __future__ import annotations

import time as _time
from typing import Callable, List, Optional

from ..graph.graph import Graph
from ..kernels.intersect import STATS as KERNEL_STATS, KernelStats
from ..plan.codegen import CompiledPlan, TaskCounters, compile_plan
from ..plan.generation import ExecutionPlan
from ..storage.cache import CacheStats
from ..storage.kvstore import DistributedKVStore, QueryStats
from ..telemetry.registry import DEFAULT_BYTES_BUCKETS, MetricsRegistry
from ..telemetry.runtime import Telemetry
from ..telemetry.snapshot import (
    G_CACHE_HIT_RATIO,
    G_MAKESPAN,
    G_WALL,
    G_WORKERS,
    H_DB_QUERY_BYTES,
    H_TASK_SIM_SECONDS,
    M_TASKS,
)
from .config import BenuConfig
from .control import ExecutionControl
from .local_task import LocalSearchTask
from .results import BenuResult
from .task_split import generate_tasks
from .worker import Worker


class SimulatedCluster:
    """Master + workers over one distributed KV store.

    ``store`` lets a long-lived owner (the query service's graph catalog)
    hand in an already-built distributed store so repeated queries over
    the same data graph skip the rebuild; it must have been built from
    ``data`` with a compatible backend.
    """

    def __init__(
        self,
        data: Graph,
        config: Optional[BenuConfig] = None,
        telemetry: Optional[Telemetry] = None,
        store: Optional[DistributedKVStore] = None,
    ) -> None:
        self.config = config or BenuConfig()
        self.data = data
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(self.config.telemetry)
        )
        self.store = store if store is not None else DistributedKVStore.from_graph(
            data,
            num_partitions=self.config.num_partitions,
            latency=self.config.latency,
            backend=self.config.adjacency_backend,
        )
        if self.store.csr is not None:
            # The V operand becomes a sorted view over the packed vertex-id
            # array, so compiled kernels can bounds-slice it like any row.
            self._vset = self.store.csr.universe()
        else:
            self._vset = frozenset(data.vertices)

    # ------------------------------------------------------------------
    def run_plan(
        self,
        plan: ExecutionPlan,
        tasks: Optional[List[LocalSearchTask]] = None,
        sink=None,
        control: Optional[ExecutionControl] = None,
        worker_caches: Optional[List] = None,
    ) -> BenuResult:
        """Execute one plan over the whole data graph.

        ``tasks`` overrides task generation (Exp-4 uses this to compare
        splitting on/off over identical plans).  ``sink`` (any object with
        an ``emit`` method, see :mod:`repro.engine.sinks`) streams results
        instead of collecting them in memory; when given, the result's
        ``matches``/``codes`` stay None regardless of ``config.collect``.

        ``control`` is checked once per task boundary: a cancel or an
        expired deadline raises the corresponding typed
        :class:`~repro.engine.control.ExecutionInterrupted` out of this
        method (no partial result is returned).  ``worker_caches`` hands
        each worker an existing database cache to keep warm across runs
        (one per worker, see :class:`~repro.storage.cache.CachePool`).
        """
        config = self.config
        telemetry = self.telemetry
        tracer = telemetry.tracer
        registry = MetricsRegistry()
        wall0 = _time.perf_counter()

        if tasks is None:
            with tracer.span("task-generation") as span:
                tasks = list(
                    generate_tasks(plan, self.data, config.split_threshold)
                )
                span.args["tasks"] = len(tasks)

        streaming = sink is not None
        mode = "collect" if (config.collect or streaming) else "count"
        profiler = telemetry.make_profiler(registry)
        with tracer.span("codegen") as span:
            compiled = compile_plan(
                plan,
                mode=mode,
                instrument=True,
                profiler=profiler,
                backend=config.adjacency_backend,
            )
            span.args.update(
                mode=mode, source_lines=compiled.source.count("\n")
            )

        collected: Optional[list] = (
            [] if config.collect and not streaming else None
        )
        if streaming:
            emit: Optional[Callable] = sink.emit
        elif collected is not None:
            emit = collected.append
        else:
            emit = None

        if telemetry.enabled:
            payload_hist = registry.histogram(
                H_DB_QUERY_BYTES,
                help="payload size per distributed-store query",
                buckets=DEFAULT_BYTES_BUCKETS,
            )
            self.store.on_query = (
                lambda key, nbytes, cost: payload_hist.observe(nbytes)
            )
        kernel_base = KERNEL_STATS.as_tuple()
        try:
            with tracer.span("execution") as exec_span:
                if worker_caches is not None and len(worker_caches) != config.num_workers:
                    raise ValueError(
                        f"need one cache per worker: got {len(worker_caches)} "
                        f"for {config.num_workers} workers"
                    )
                workers = [
                    Worker(
                        i,
                        self.store,
                        config,
                        tracer=tracer,
                        cache=worker_caches[i] if worker_caches else None,
                    )
                    for i in range(config.num_workers)
                ]
                # Round-robin shuffle, as the paper distributes tasks evenly.
                for i, task in enumerate(tasks):
                    if control is not None:
                        control.check()
                    workers[i % len(workers)].execute_task(
                        compiled, task, self._vset, emit
                    )
                for w in workers:
                    tracer.add_span(
                        f"worker-{w.worker_id}",
                        wall_seconds=w.wall_seconds,
                        sim_seconds=w.busy_seconds,
                        category="execution",
                        track=f"worker-{w.worker_id}",
                        start=getattr(exec_span, "t0", None),
                        args={
                            "tasks": len(w.reports),
                            "makespan_sim_seconds": w.makespan_seconds,
                            "cache_hit_rate": w.cache_stats.hit_rate,
                        },
                    )
                exec_span.args["tasks"] = len(tasks)
        finally:
            self.store.on_query = None
        KernelStats(**KERNEL_STATS.delta_since(kernel_base)).record_to(registry)

        total_counters = TaskCounters()
        communication = QueryStats()
        cache = CacheStats()
        per_task: List[float] = []
        task_hist = registry.histogram(
            H_TASK_SIM_SECONDS,
            help="simulated duration per local search task (Fig. 9 skew)",
            labels=("worker",),
        )
        for w in workers:
            total_counters = total_counters + w.total_counters()
            communication.merge(w.query_stats)
            cache.merge(w.cache_stats)
            per_task.extend(r.sim_seconds for r in w.reports)
            # Registry-backed views of the per-worker ledgers.
            wid = str(w.worker_id)
            w.query_stats.record_to(registry, worker=wid)
            w.cache_stats.record_to(registry, worker=wid)
            w.total_counters().record_to(registry, worker=wid)
            registry.counter(
                M_TASKS, "local search tasks executed", ("worker",)
            ).inc(len(w.reports), worker=wid)
            for r in w.reports:
                task_hist.observe(r.sim_seconds, worker=wid)

        matches = None
        codes = None
        if collected is not None:
            if plan.compressed:
                codes = collected
            else:
                matches = collected

        makespan = max(w.makespan_seconds for w in workers)
        wall = _time.perf_counter() - wall0
        registry.gauge(G_MAKESPAN, "simulated job makespan").set(makespan)
        registry.gauge(G_WALL, "wall-clock run time").set(wall)
        registry.gauge(G_WORKERS, "simulated worker machines").set(len(workers))
        registry.gauge(G_CACHE_HIT_RATIO, "database cache hit ratio").set(
            cache.hit_rate
        )

        return BenuResult(
            plan=plan,
            count=total_counters.results,
            matches=matches,
            codes=codes,
            counters=total_counters,
            communication=communication,
            cache=cache,
            num_tasks=len(tasks),
            num_workers=len(workers),
            makespan_seconds=makespan,
            per_worker_busy_seconds=[w.busy_seconds for w in workers],
            per_task_sim_seconds=per_task,
            wall_seconds=wall,
            telemetry=telemetry.snapshot(registry),
        )
