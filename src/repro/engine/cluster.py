"""The simulated shared-nothing cluster (Fig. 2's architecture).

The master generates local search tasks and shuffles them evenly across
worker machines (the paper hands them to 16 reducers round-robin); each
worker executes its tasks against its shared database cache, on simulated
threads.  The job makespan is the slowest worker's makespan — exactly the
quantity Figs. 9 and 10 plot.
"""

from __future__ import annotations

import time as _time
from typing import Callable, List, Optional

from ..graph.graph import Graph
from ..plan.codegen import CompiledPlan, TaskCounters, compile_plan
from ..plan.generation import ExecutionPlan
from ..storage.cache import CacheStats
from ..storage.kvstore import DistributedKVStore, QueryStats
from .config import BenuConfig
from .local_task import LocalSearchTask
from .results import BenuResult
from .task_split import generate_tasks
from .worker import Worker


class SimulatedCluster:
    """Master + workers over one distributed KV store."""

    def __init__(self, data: Graph, config: Optional[BenuConfig] = None) -> None:
        self.config = config or BenuConfig()
        self.data = data
        self.store = DistributedKVStore.from_graph(
            data,
            num_partitions=self.config.num_partitions,
            latency=self.config.latency,
        )
        self._vset = frozenset(data.vertices)

    # ------------------------------------------------------------------
    def run_plan(
        self,
        plan: ExecutionPlan,
        tasks: Optional[List[LocalSearchTask]] = None,
        sink=None,
    ) -> BenuResult:
        """Execute one plan over the whole data graph.

        ``tasks`` overrides task generation (Exp-4 uses this to compare
        splitting on/off over identical plans).  ``sink`` (any object with
        an ``emit`` method, see :mod:`repro.engine.sinks`) streams results
        instead of collecting them in memory; when given, the result's
        ``matches``/``codes`` stay None regardless of ``config.collect``.
        """
        config = self.config
        wall0 = _time.perf_counter()
        if tasks is None:
            tasks = list(
                generate_tasks(plan, self.data, config.split_threshold)
            )

        streaming = sink is not None
        mode = "collect" if (config.collect or streaming) else "count"
        compiled = compile_plan(plan, mode=mode, instrument=True)

        collected: Optional[list] = (
            [] if config.collect and not streaming else None
        )
        if streaming:
            emit: Optional[Callable] = sink.emit
        elif collected is not None:
            emit = collected.append
        else:
            emit = None

        workers = [Worker(i, self.store, config) for i in range(config.num_workers)]
        # Round-robin shuffle, as the paper distributes tasks evenly.
        for i, task in enumerate(tasks):
            workers[i % len(workers)].execute_task(
                compiled, task, self._vset, emit
            )

        total_counters = TaskCounters()
        communication = QueryStats()
        cache = CacheStats()
        per_task: List[float] = []
        for w in workers:
            total_counters = total_counters + w.total_counters()
            communication.merge(w.query_stats)
            cache.merge(w.cache_stats)
            per_task.extend(r.sim_seconds for r in w.reports)

        matches = None
        codes = None
        if collected is not None:
            if plan.compressed:
                codes = collected
            else:
                matches = collected

        return BenuResult(
            plan=plan,
            count=total_counters.results,
            matches=matches,
            codes=codes,
            counters=total_counters,
            communication=communication,
            cache=cache,
            num_tasks=len(tasks),
            num_workers=len(workers),
            makespan_seconds=max(w.makespan_seconds for w in workers),
            per_worker_busy_seconds=[w.busy_seconds for w in workers],
            per_task_sim_seconds=per_task,
            wall_seconds=_time.perf_counter() - wall0,
        )
