"""The top-level BENU API (Algorithm 2).

``run_benu`` wires the full pipeline: relabel the data graph under the
(degree, id) total order, generate the best execution plan, build the
distributed store, split tasks, execute on the simulated cluster, and
translate results back to the original vertex ids.

Convenience wrappers: ``count_subgraphs`` and ``enumerate_subgraphs``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..graph.graph import Graph, Vertex
from ..graph.order import invert_mapping, relabel_by_degree_order
from ..pattern.pattern_graph import PatternGraph
from ..plan.compression import compress_plan
from ..plan.degree_filter import apply_degree_filter
from ..plan.cost import GraphStats
from ..plan.generation import ExecutionPlan, generate_raw_plan
from ..plan.optimizer import apply_generalized_clique_cache, optimize
from ..plan.search import generate_best_plan
from ..plan.validate import validate_plan
from ..telemetry.runtime import Telemetry
from .cluster import SimulatedCluster
from .config import BenuConfig
from .results import BenuResult

PatternLike = Union[Graph, PatternGraph]


def _as_pattern(pattern: PatternLike, name: str = "pattern") -> PatternGraph:
    if isinstance(pattern, PatternGraph):
        return pattern
    return PatternGraph(pattern, name=name)


def build_plan(
    pattern: PatternLike,
    data: Optional[Graph] = None,
    order: Optional[Sequence[Vertex]] = None,
    optimization_level: int = 3,
    compressed: bool = False,
    generalized_clique_cache: bool = False,
    degree_filter_data: Optional[Graph] = None,
    tracer=None,
) -> ExecutionPlan:
    """Build an execution plan, searched (default) or from a fixed order.

    With ``order`` given, the plan is generated for exactly that matching
    order and optimized; otherwise Algorithm 3 searches for the best one
    using ``data``'s statistics (or the defaults).  ``tracer`` (a
    :class:`repro.telemetry.Tracer`) records the search's phases as spans.
    """
    pattern = _as_pattern(pattern)
    if order is not None:
        plan = optimize(generate_raw_plan(pattern, order), optimization_level)
        if compressed:
            plan = compress_plan(plan)
    else:
        stats = GraphStats.of(data) if data is not None else None
        kwargs = {"stats": stats} if stats is not None else {}
        plan = generate_best_plan(
            pattern,
            optimization_level=optimization_level,
            compressed=compressed,
            tracer=tracer,
            **kwargs,
        ).plan
    if generalized_clique_cache:
        apply_generalized_clique_cache(plan)
    if degree_filter_data is not None:
        plan = apply_degree_filter(plan, degree_filter_data)
    validate_plan(plan)
    return plan


def run_benu(
    pattern: PatternLike,
    data: Graph,
    config: Optional[BenuConfig] = None,
    plan: Optional[ExecutionPlan] = None,
) -> BenuResult:
    """Run the full BENU pipeline and return a :class:`BenuResult`.

    The data graph is relabeled by the (degree, id) total order unless
    ``config.relabel`` is False (the bundled datasets are pre-relabeled);
    collected matches are translated back to the original ids.
    """
    config = config or BenuConfig()
    pattern = _as_pattern(pattern)
    telemetry = Telemetry(config.telemetry)
    tracer = telemetry.tracer

    with tracer.span(
        "benu-job",
        args={
            "pattern": pattern.name,
            "data_vertices": data.num_vertices,
            "data_edges": data.num_edges,
        },
    ):
        mapping: Optional[Dict[Vertex, Vertex]] = None
        if config.relabel:
            with tracer.span("relabel"):
                data, mapping = relabel_by_degree_order(data)

        if plan is None:
            with tracer.span("plan-search") as span:
                plan = build_plan(
                    pattern,
                    data,
                    optimization_level=config.optimization_level,
                    compressed=config.compressed,
                    generalized_clique_cache=config.generalized_clique_cache,
                    degree_filter_data=data if config.degree_filter else None,
                    tracer=tracer,
                )
                span.args["order"] = [str(v) for v in plan.order]
        else:
            validate_plan(plan)

        cluster = SimulatedCluster(data, config, telemetry=telemetry)
        result = cluster.run_plan(plan)

        if mapping is not None:
            inverse = invert_mapping(mapping)
            result.id_mapping = inverse
            if result.matches is not None:
                # Codes stay in the relabeled space (their expansion
                # constraints compare under ≺); plain matches translate
                # eagerly.
                with tracer.span("result-translation"):
                    result.matches = [
                        tuple(inverse[v] for v in match)
                        for match in result.matches
                    ]
    return result


def count_subgraphs(
    pattern: PatternLike, data: Graph, config: Optional[BenuConfig] = None
) -> int:
    """Number of subgraphs of ``data`` isomorphic to ``pattern``.

    Thanks to symmetry breaking this equals the number of matches BENU
    enumerates (Definition 2 + the bijection of Section II-A).

    >>> from repro.graph.graph import complete_graph
    >>> from repro.graph.patterns import TRIANGLE
    >>> count_subgraphs(TRIANGLE, complete_graph(4))
    4
    """
    config = config or BenuConfig()
    if config.compressed:
        raise ValueError("count_subgraphs counts full matches; use compressed=False")
    return run_benu(pattern, data, config).count


def enumerate_subgraphs(
    pattern: PatternLike, data: Graph, config: Optional[BenuConfig] = None
) -> List[Tuple[Vertex, ...]]:
    """All matches ``(f_1, ..., f_n)`` of ``pattern`` in ``data``.

    Each tuple is indexed by sorted pattern vertex; exactly one match per
    isomorphic subgraph is returned (symmetry breaking dedups).
    """
    if config is None:
        config = BenuConfig(collect=True)
    elif not config.collect:
        config = replace(config, collect=True)
    result = run_benu(pattern, data, config)
    if config.compressed:
        return list(result.expanded_matches())
    assert result.matches is not None
    return result.matches
