"""The top-level BENU API (Algorithm 2).

``run_benu`` wires the full pipeline: relabel the data graph under the
(degree, id) total order, generate the best execution plan, build the
distributed store, split tasks, execute on the simulated cluster, and
translate results back to the original vertex ids.

The pipeline is factored into reusable stages so a resident query
service can pay each cost once instead of per query:

* :func:`prepare_data` — relabel a data graph and remember the mapping;
* :func:`prepare_plan` — plan search/generation for a prepared graph;
* :func:`execute_plan` — run a plan on a (possibly pre-built, warm)
  cluster, with optional streaming sink and cooperative control.

Convenience wrappers: ``count_subgraphs`` and ``enumerate_subgraphs``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..graph.graph import Graph, Vertex
from ..graph.order import invert_mapping, relabel_by_degree_order
from ..pattern.pattern_graph import PatternGraph
from ..plan.compression import compress_plan
from ..plan.degree_filter import apply_degree_filter
from ..plan.cost import DEFAULT_STATS, GraphStats, predict_instruction_counts
from ..plan.generation import ExecutionPlan, generate_raw_plan
from ..plan.optimizer import apply_generalized_clique_cache, optimize
from ..plan.search import generate_best_plan
from ..plan.validate import validate_plan
from ..telemetry.runtime import Telemetry
from .cluster import SimulatedCluster
from .config import BenuConfig
from .control import ExecutionControl
from .results import BenuResult
from .sinks import TranslatingSink

PatternLike = Union[Graph, PatternGraph]


def _as_pattern(pattern: PatternLike, name: str = "pattern") -> PatternGraph:
    if isinstance(pattern, PatternGraph):
        return pattern
    return PatternGraph(pattern, name=name)


def build_plan(
    pattern: PatternLike,
    data: Optional[Graph] = None,
    order: Optional[Sequence[Vertex]] = None,
    optimization_level: int = 3,
    compressed: bool = False,
    generalized_clique_cache: bool = False,
    degree_filter_data: Optional[Graph] = None,
    tracer=None,
) -> ExecutionPlan:
    """Build an execution plan, searched (default) or from a fixed order.

    With ``order`` given, the plan is generated for exactly that matching
    order and optimized; otherwise Algorithm 3 searches for the best one
    using ``data``'s statistics (or the defaults).  ``tracer`` (a
    :class:`repro.telemetry.Tracer`) records the search's phases as spans.
    """
    pattern = _as_pattern(pattern)
    stats = GraphStats.of(data) if data is not None else None
    if order is not None:
        plan = optimize(generate_raw_plan(pattern, order), optimization_level)
        if compressed:
            plan = compress_plan(plan)
    else:
        kwargs = {"stats": stats} if stats is not None else {}
        plan = generate_best_plan(
            pattern,
            optimization_level=optimization_level,
            compressed=compressed,
            tracer=tracer,
            **kwargs,
        ).plan
    if generalized_clique_cache:
        apply_generalized_clique_cache(plan)
    if degree_filter_data is not None:
        plan = apply_degree_filter(plan, degree_filter_data)
    validate_plan(plan)
    # Remember what the §IV-C estimator expects each instruction type to
    # execute, so the run can report predicted-vs-actual q-errors.  Plan
    # shape and codegen are untouched — compiled sources stay
    # byte-identical with or without the predictions.
    plan.predicted_counts = predict_instruction_counts(
        plan, stats if stats is not None else DEFAULT_STATS
    )
    return plan


@dataclass
class PreparedData:
    """A data graph readied for execution, with its id translation.

    ``graph`` carries execution-space ids (relabeled under the (degree,
    id) total order when the source wasn't already); ``mapping`` /
    ``inverse`` translate original ↔ execution ids, both None when no
    relabeling happened.
    """

    graph: Graph
    mapping: Optional[Dict[Vertex, Vertex]] = None
    inverse: Optional[Dict[Vertex, Vertex]] = None

    @property
    def relabeled(self) -> bool:
        return self.mapping is not None

    def translate_match(self, match: Tuple[Vertex, ...]) -> Tuple[Vertex, ...]:
        """One match tuple back in original ids."""
        if self.inverse is None:
            return match
        return tuple(self.inverse[v] for v in match)


def prepare_data(
    data: Graph, config: Optional[BenuConfig] = None, tracer=None
) -> PreparedData:
    """Relabel ``data`` per ``config.relabel`` and keep the translation."""
    config = config or BenuConfig()
    if not config.relabel:
        return PreparedData(data)
    if tracer is not None:
        with tracer.span("relabel"):
            relabeled, mapping = relabel_by_degree_order(data)
    else:
        relabeled, mapping = relabel_by_degree_order(data)
    return PreparedData(relabeled, mapping, invert_mapping(mapping))


def prepare_plan(
    pattern: PatternLike,
    prepared: PreparedData,
    config: Optional[BenuConfig] = None,
    order: Optional[Sequence[Vertex]] = None,
    tracer=None,
) -> ExecutionPlan:
    """Build the execution plan for a prepared graph under ``config``.

    With ``order`` given, Algorithm 3's search is skipped and the plan is
    generated for exactly that matching order — the path a plan-cache hit
    takes (the emitted match set is order-independent: it is fixed by the
    pattern's symmetry-breaking conditions alone).
    """
    config = config or BenuConfig()
    return build_plan(
        _as_pattern(pattern),
        prepared.graph,
        order=order,
        optimization_level=config.optimization_level,
        compressed=config.compressed,
        generalized_clique_cache=config.generalized_clique_cache,
        degree_filter_data=prepared.graph if config.degree_filter else None,
        tracer=tracer,
    )


def execute_plan(
    plan: ExecutionPlan,
    prepared: PreparedData,
    config: Optional[BenuConfig] = None,
    telemetry: Optional[Telemetry] = None,
    cluster: Optional[SimulatedCluster] = None,
    sink=None,
    control: Optional[ExecutionControl] = None,
    tasks=None,
    worker_caches=None,
    execution_backend: Optional[str] = None,
    progress=None,
    task_cost_hint: Optional[float] = None,
    start_vertices: Optional[Sequence[Vertex]] = None,
) -> BenuResult:
    """Run ``plan`` over prepared data and translate results back.

    The runtime is ``config.execution_backend`` (or the explicit
    ``execution_backend`` override): the in-process backends (simulated /
    inline) run on a :class:`SimulatedCluster` — ``cluster`` reuses an
    existing one, and with it the distributed store — while the process
    backend fans tasks out over OS worker processes against the raw
    graph (``cluster``/``worker_caches`` are ignored there).

    ``worker_caches`` keeps worker database caches warm across calls;
    ``sink`` streams matches — already translated to original ids —
    instead of collecting them; ``control`` is checked at every task
    boundary, on whichever side of the process boundary the tasks run;
    ``progress`` (a :class:`repro.telemetry.QueryProgress`) is updated at
    the same granularity, so a concurrent poller sees live completion;
    ``task_cost_hint`` (a previous run's ``mean_task_wall_seconds``) lets
    the process backend right-size its queue chunks instead of using the
    cold-start heuristic; ``start_vertices`` restricts task generation to
    a slice of the start-vertex space (a shard's owned vertices).
    """
    config = config or BenuConfig()
    backend_name = (
        execution_backend if execution_backend is not None
        else config.execution_backend
    )
    if telemetry is None:
        telemetry = (
            cluster.telemetry if cluster is not None else Telemetry(config.telemetry)
        )
    if sink is not None and prepared.relabeled and not plan.compressed:
        # Streamed full matches leave in original ids; compressed codes
        # stay in execution space (their expansion constraints compare
        # under ≺), exactly like collected results.
        sink = TranslatingSink(sink, prepared.inverse)
    if backend_name == "process":
        from .backends import ExecutionRequest, get_backend

        request = ExecutionRequest(
            plan=plan,
            graph=prepared.graph,
            config=config,
            telemetry=telemetry,
            tasks=tasks,
            sink=sink,
            control=control,
            task_cost_hint=task_cost_hint,
            start_vertices=start_vertices,
        )
        if progress is not None:
            request.progress = progress
        result = get_backend("process").execute(request)
    else:
        if cluster is None:
            cluster = SimulatedCluster(
                prepared.graph,
                replace(config, execution_backend=backend_name),
                telemetry=telemetry,
            )
        elif cluster.config.execution_backend != backend_name:
            cluster = SimulatedCluster(
                prepared.graph,
                replace(cluster.config, execution_backend=backend_name),
                telemetry=telemetry,
                store=cluster.store,
            )
        result = cluster.run_plan(
            plan,
            tasks=tasks,
            sink=sink,
            control=control,
            worker_caches=worker_caches,
            progress=progress,
            start_vertices=start_vertices,
        )

    if prepared.relabeled:
        result.id_mapping = prepared.inverse
        if result.matches is not None:
            # Codes stay in the relabeled space (their expansion
            # constraints compare under ≺); plain matches translate
            # eagerly.
            with telemetry.tracer.span("result-translation"):
                result.matches = [
                    prepared.translate_match(match) for match in result.matches
                ]
    return result


def run_benu(
    pattern: PatternLike,
    data: Graph,
    config: Optional[BenuConfig] = None,
    plan: Optional[ExecutionPlan] = None,
) -> BenuResult:
    """Run the full BENU pipeline and return a :class:`BenuResult`.

    The data graph is relabeled by the (degree, id) total order unless
    ``config.relabel`` is False (the bundled datasets are pre-relabeled);
    collected matches are translated back to the original ids.
    """
    config = config or BenuConfig()
    pattern = _as_pattern(pattern)
    telemetry = Telemetry(config.telemetry)
    tracer = telemetry.tracer

    with tracer.span(
        "benu-job",
        args={
            "pattern": pattern.name,
            "data_vertices": data.num_vertices,
            "data_edges": data.num_edges,
        },
    ):
        prepared = prepare_data(data, config, tracer=tracer)

        if plan is None:
            with tracer.span("plan-search") as span:
                plan = prepare_plan(pattern, prepared, config, tracer=tracer)
                span.args["order"] = [str(v) for v in plan.order]
        else:
            validate_plan(plan)

        result = execute_plan(plan, prepared, config, telemetry=telemetry)
    return result


def count_subgraphs(
    pattern: PatternLike, data: Graph, config: Optional[BenuConfig] = None
) -> int:
    """Number of subgraphs of ``data`` isomorphic to ``pattern``.

    Thanks to symmetry breaking this equals the number of matches BENU
    enumerates (Definition 2 + the bijection of Section II-A).

    >>> from repro.graph.graph import complete_graph
    >>> from repro.graph.patterns import TRIANGLE
    >>> count_subgraphs(TRIANGLE, complete_graph(4))
    4
    """
    config = config or BenuConfig()
    if config.compressed:
        raise ValueError("count_subgraphs counts full matches; use compressed=False")
    return run_benu(pattern, data, config).count


def enumerate_subgraphs(
    pattern: PatternLike, data: Graph, config: Optional[BenuConfig] = None
) -> List[Tuple[Vertex, ...]]:
    """All matches ``(f_1, ..., f_n)`` of ``pattern`` in ``data``.

    Each tuple is indexed by sorted pattern vertex; exactly one match per
    isomorphic subgraph is returned (symmetry breaking dedups).
    """
    if config is None:
        config = BenuConfig(collect=True)
    elif not config.collect:
        config = replace(config, collect=True)
    result = run_benu(pattern, data, config)
    if config.compressed:
        return list(result.expanded_matches())
    assert result.matches is not None
    return result.matches
