"""The BENU runtime: config, tasks, workers, cluster, public API."""

from .benu import build_plan, count_subgraphs, enumerate_subgraphs, run_benu
from .cluster import SimulatedCluster
from .config import BenuConfig, SimulationCostModel
from .interpreter import interpret_all, interpret_plan
from .local_task import LocalSearchTask
from .parallel import ParallelResult, ParallelRunner, parallel_count
from .results import BenuResult
from .sinks import (
    CallbackSink,
    CollectSink,
    CountSink,
    FileSink,
    ReservoirSink,
)
from .task_split import generate_tasks, plan_supports_splitting, split_slices
from .worker import TaskReport, Worker

__all__ = [
    "build_plan",
    "count_subgraphs",
    "enumerate_subgraphs",
    "run_benu",
    "SimulatedCluster",
    "BenuConfig",
    "SimulationCostModel",
    "interpret_all",
    "interpret_plan",
    "LocalSearchTask",
    "ParallelResult",
    "ParallelRunner",
    "parallel_count",
    "BenuResult",
    "CallbackSink",
    "CollectSink",
    "CountSink",
    "FileSink",
    "ReservoirSink",
    "generate_tasks",
    "plan_supports_splitting",
    "split_slices",
    "TaskReport",
    "Worker",
]
