"""The BENU runtime: config, tasks, workers, cluster, public API."""

from .benu import (
    PreparedData,
    build_plan,
    count_subgraphs,
    enumerate_subgraphs,
    execute_plan,
    prepare_data,
    prepare_plan,
    run_benu,
)
from .backends import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    ExecutionRequest,
    InlineBackend,
    ProcessBackend,
    SimulatedBackend,
    get_backend,
)
from .cluster import SimulatedCluster
from .config import BenuConfig, SimulationCostModel
from .control import (
    DeadlineExpired,
    ExecutionControl,
    ExecutionInterrupted,
    QueryCancelled,
)
from .interpreter import interpret_all, interpret_plan
from .local_task import LocalSearchTask
from .parallel import ParallelRunner, parallel_count
from .results import BenuResult
from .sinks import (
    CallbackSink,
    CollectSink,
    CountSink,
    FileSink,
    JsonlSink,
    LimitSink,
    ReservoirSink,
    TranslatingSink,
)
from .task_split import generate_tasks, plan_supports_splitting, split_slices
from .worker import TaskReport, Worker

__all__ = [
    "PreparedData",
    "build_plan",
    "count_subgraphs",
    "enumerate_subgraphs",
    "execute_plan",
    "prepare_data",
    "prepare_plan",
    "run_benu",
    "DeadlineExpired",
    "ExecutionControl",
    "ExecutionInterrupted",
    "QueryCancelled",
    "SimulatedCluster",
    "BenuConfig",
    "SimulationCostModel",
    "interpret_all",
    "interpret_plan",
    "LocalSearchTask",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "ExecutionRequest",
    "InlineBackend",
    "ProcessBackend",
    "SimulatedBackend",
    "get_backend",
    "ParallelRunner",
    "parallel_count",
    "BenuResult",
    "CallbackSink",
    "CollectSink",
    "CountSink",
    "FileSink",
    "JsonlSink",
    "LimitSink",
    "ReservoirSink",
    "TranslatingSink",
    "generate_tasks",
    "plan_supports_splitting",
    "split_slices",
    "TaskReport",
    "Worker",
]
