"""The BENU runtime: config, tasks, workers, cluster, public API."""

from .benu import (
    PreparedData,
    build_plan,
    count_subgraphs,
    enumerate_subgraphs,
    execute_plan,
    prepare_data,
    prepare_plan,
    run_benu,
)
from .backends import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    ExecutionRequest,
    InlineBackend,
    ProcessBackend,
    SimulatedBackend,
    get_backend,
)
from .cluster import SimulatedCluster
from .config import BenuConfig, SimulationCostModel
from .control import (
    DeadlineExpired,
    ExecutionControl,
    ExecutionInterrupted,
    QueryCancelled,
)
from .interpreter import interpret_all, interpret_plan
from .local_task import LocalSearchTask
from .results import BenuResult
from .sinks import (
    CallbackSink,
    CollectSink,
    CountSink,
    FileSink,
    GroupCountSink,
    JsonlSink,
    LimitSink,
    ProjectingSink,
    ReservoirSink,
    TranslatingSink,
)
from .task_split import generate_tasks, plan_supports_splitting, split_slices
from .worker import TaskReport, Worker


def __getattr__(name: str):
    # Deprecated pre-ExecutionBackend shims; imported lazily so merely
    # importing repro.engine doesn't pull them in (and so nothing under
    # src/repro/ depends on them anymore).
    if name in ("ParallelRunner", "parallel_count"):
        from . import parallel

        return getattr(parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PreparedData",
    "build_plan",
    "count_subgraphs",
    "enumerate_subgraphs",
    "execute_plan",
    "prepare_data",
    "prepare_plan",
    "run_benu",
    "DeadlineExpired",
    "ExecutionControl",
    "ExecutionInterrupted",
    "QueryCancelled",
    "SimulatedCluster",
    "BenuConfig",
    "SimulationCostModel",
    "interpret_all",
    "interpret_plan",
    "LocalSearchTask",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "ExecutionRequest",
    "InlineBackend",
    "ProcessBackend",
    "SimulatedBackend",
    "get_backend",
    "ParallelRunner",
    "parallel_count",
    "BenuResult",
    "CallbackSink",
    "CollectSink",
    "CountSink",
    "FileSink",
    "GroupCountSink",
    "JsonlSink",
    "LimitSink",
    "ProjectingSink",
    "ReservoirSink",
    "TranslatingSink",
    "generate_tasks",
    "plan_supports_splitting",
    "split_slices",
    "TaskReport",
    "Worker",
]
