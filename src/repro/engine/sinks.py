"""Match sinks — where enumeration results go.

The paper's jobs write matches to HDFS; a library needs more options.  A
sink is anything with an ``emit(result)`` method; the cluster calls it once
per RES execution (full match tuple, or VCBC code slots when compressed).

Provided sinks:

* :class:`CountSink` — count only (cheapest; the default mode does this
  without a sink at all);
* :class:`CollectSink` — keep everything in memory;
* :class:`FileSink` — stream matches to a TSV file;
* :class:`ReservoirSink` — a uniform random sample of bounded size, for
  result sets too large to keep (reservoir sampling, seeded);
* :class:`CallbackSink` — adapt any callable.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Callable, List, Optional, Sequence, TextIO, Tuple, Union


class CountSink:
    """Counts emissions; keeps nothing."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, result: Tuple) -> None:
        self.count += 1


class CollectSink:
    """Stores every result in ``results``."""

    def __init__(self) -> None:
        self.results: List[Tuple] = []
        self.count = 0

    def emit(self, result: Tuple) -> None:
        self.results.append(result)
        self.count += 1


class FileSink:
    """Streams results to a TSV file (one line per result).

    Frozenset slots (VCBC image sets) render as comma-joined sorted ids
    in braces, e.g. ``{3,7,9}``.

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[TextIO] = self.path.open("w", encoding="utf-8")
        self.count = 0

    @staticmethod
    def _format_slot(slot) -> str:
        if isinstance(slot, frozenset):
            return "{" + ",".join(map(str, sorted(slot))) + "}"
        return str(slot)

    def emit(self, result: Tuple) -> None:
        assert self._fh is not None, "sink is closed"
        self._fh.write("\t".join(self._format_slot(s) for s in result) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "FileSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ReservoirSink:
    """Keeps a uniform random sample of at most ``capacity`` results.

    Classic reservoir sampling: after N emissions each result is retained
    with probability capacity/N.  Seeded for reproducibility.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.sample: List[Tuple] = []
        self.count = 0
        self._rng = random.Random(seed)

    def emit(self, result: Tuple) -> None:
        self.count += 1
        if len(self.sample) < self.capacity:
            self.sample.append(result)
            return
        j = self._rng.randrange(self.count)
        if j < self.capacity:
            self.sample[j] = result


class CallbackSink:
    """Adapts a plain callable to the sink interface."""

    def __init__(self, callback: Callable[[Tuple], None]) -> None:
        self._callback = callback
        self.count = 0

    def emit(self, result: Tuple) -> None:
        self._callback(result)
        self.count += 1
