"""Match sinks — where enumeration results go.

The paper's jobs write matches to HDFS; a library needs more options.  A
sink is anything with an ``emit(result)`` method; the cluster calls it once
per RES execution (full match tuple, or VCBC code slots when compressed).

Provided sinks:

* :class:`CountSink` — count only (cheapest; the default mode does this
  without a sink at all);
* :class:`CollectSink` — keep everything in memory;
* :class:`FileSink` — stream matches to a TSV file;
* :class:`ReservoirSink` — a uniform random sample of bounded size, for
  result sets too large to keep (reservoir sampling, seeded);
* :class:`CallbackSink` — adapt any callable;
* :class:`JsonlSink` — stream matches as JSON lines to any writable;
* :class:`LimitSink` — stop the run after N results via a control;
* :class:`TranslatingSink` — translate vertex ids before forwarding;
* :class:`ProjectingSink` — narrow match tuples to selected columns;
* :class:`GroupCountSink` — per-group-key match counts (GROUP BY).
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Callable, List, Optional, Sequence, TextIO, Tuple, Union


class CountSink:
    """Counts emissions; keeps nothing."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, result: Tuple) -> None:
        self.count += 1


class CollectSink:
    """Stores every result in ``results``."""

    def __init__(self) -> None:
        self.results: List[Tuple] = []
        self.count = 0

    def emit(self, result: Tuple) -> None:
        self.results.append(result)
        self.count += 1


class FileSink:
    """Streams results to a TSV file (one line per result).

    Frozenset slots (VCBC image sets) render as comma-joined sorted ids
    in braces, e.g. ``{3,7,9}``.

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[TextIO] = self.path.open("w", encoding="utf-8")
        self.count = 0

    @staticmethod
    def _format_slot(slot) -> str:
        if isinstance(slot, frozenset):
            return "{" + ",".join(map(str, sorted(slot))) + "}"
        return str(slot)

    def emit(self, result: Tuple) -> None:
        assert self._fh is not None, "sink is closed"
        self._fh.write("\t".join(self._format_slot(s) for s in result) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "FileSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ReservoirSink:
    """Keeps a uniform random sample of at most ``capacity`` results.

    Classic reservoir sampling: after N emissions each result is retained
    with probability capacity/N.  Seeded for reproducibility.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.sample: List[Tuple] = []
        self.count = 0
        self._rng = random.Random(seed)

    def emit(self, result: Tuple) -> None:
        self.count += 1
        if len(self.sample) < self.capacity:
            self.sample.append(result)
            return
        j = self._rng.randrange(self.count)
        if j < self.capacity:
            self.sample[j] = result


class CallbackSink:
    """Adapts a plain callable to the sink interface."""

    def __init__(self, callback: Callable[[Tuple], None]) -> None:
        self._callback = callback
        self.count = 0

    def emit(self, result: Tuple) -> None:
        self._callback(result)
        self.count += 1


class JsonlSink:
    """Streams each result as one JSON array line to a writable.

    Frozenset slots (VCBC image sets) render as sorted JSON arrays.  The
    writable is borrowed, not owned — handy for ``sys.stdout``.
    """

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream
        self.count = 0

    @staticmethod
    def _json_slot(slot) -> object:
        if isinstance(slot, frozenset):
            return sorted(slot)
        return slot

    def emit(self, result: Tuple) -> None:
        import json

        self._stream.write(
            json.dumps([self._json_slot(s) for s in result]) + "\n"
        )
        self.count += 1


class LimitSink:
    """Forwards at most ``limit`` results, then cancels the run.

    Pairs with an :class:`~repro.engine.control.ExecutionControl` handed
    to the executor: once the limit is reached the control is cancelled,
    so the job stops at the next task boundary instead of enumerating
    everything.  Results past the limit within the current task are
    dropped, keeping the delivered count exact.
    """

    #: Cancel reason the CLI/service recognize as a clean, intended stop.
    REASON = "result limit reached"

    def __init__(self, inner, limit: int, control=None) -> None:
        if limit < 0:
            raise ValueError("limit must be non-negative")
        self.inner = inner
        self.limit = limit
        self.control = control
        self.count = 0

    @property
    def reached(self) -> bool:
        return self.count >= self.limit

    def emit(self, result: Tuple) -> None:
        if self.count >= self.limit:
            # Covers limit=0 too: cancel on the first over-limit emit.
            if self.control is not None:
                self.control.cancel(self.REASON)
            return
        self.inner.emit(result)
        self.count += 1
        if self.count >= self.limit and self.control is not None:
            self.control.cancel(self.REASON)


class TranslatingSink:
    """Translates integer vertex ids through a mapping before forwarding.

    Frozenset slots translate member-wise.  Used by the execution stage
    to deliver streamed matches in original (pre-relabeling) ids.
    """

    def __init__(self, inner, mapping: dict) -> None:
        self.inner = inner
        self.mapping = mapping
        self.count = 0

    def _translate(self, slot):
        if isinstance(slot, frozenset):
            return frozenset(self.mapping[v] for v in slot)
        return self.mapping[slot]

    def emit(self, result: Tuple) -> None:
        self.inner.emit(tuple(self._translate(s) for s in result))
        self.count += 1


class ProjectingSink:
    """Projects match tuples to a fixed set of column indices.

    The BENU-QL ``RETURN a, c`` path: the engine always emits full match
    tuples (indexed by sorted pattern vertex); this sink narrows them to
    the requested columns before forwarding.
    """

    def __init__(self, inner, indices: Sequence[int]) -> None:
        self.inner = inner
        self.indices = tuple(indices)
        self.count = 0

    def emit(self, result: Tuple) -> None:
        self.inner.emit(tuple(result[i] for i in self.indices))
        self.count += 1


class GroupCountSink:
    """Counts matches per value of one match-tuple slot.

    The BENU-QL ``COUNT(*) GROUP BY v`` path: nothing is materialized;
    ``counts`` maps each group key (a vertex id) to its match count.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.counts: dict = {}
        self.count = 0

    def emit(self, result: Tuple) -> None:
        key = result[self.index]
        self.counts[key] = self.counts.get(key, 0) + 1
        self.count += 1
