"""A simulated worker machine (one of the paper's reducers).

Each worker owns a byte-bounded LRU database cache shared by its working
threads, a communication ledger, and per-thread simulated clocks.  Task
execution is real (the compiled plan actually runs); *time* is simulated
deterministically from the measured instruction counters and the latency
model, so scalability and skew figures are reproducible run to run.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional

from ..plan.codegen import CompiledPlan, TaskCounters
from ..storage.cache import CacheStats, LRUDatabaseCache
from ..storage.kvstore import DistributedKVStore, QueryStats
from .config import BenuConfig
from .local_task import LocalSearchTask


@dataclass
class TaskReport:
    """Outcome of one executed local search task."""

    task: LocalSearchTask
    counters: TaskCounters
    sim_seconds: float
    wall_seconds: float
    #: Simulated thread the task was scheduled on, and when it started
    #: there — together they describe the worker's simulated schedule.
    thread_id: int = 0
    sim_start: float = 0.0


class Worker:
    """One simulated worker machine executing local search tasks."""

    def __init__(
        self,
        worker_id: int,
        store: DistributedKVStore,
        config: BenuConfig,
        tracer=None,
        cache: Optional[LRUDatabaseCache] = None,
    ) -> None:
        self.worker_id = worker_id
        self.config = config
        self.query_stats = QueryStats()
        if cache is not None:
            # Adopt a warm cache owned by a longer-lived holder (the query
            # service keeps one per worker slot per graph).  Rebind its
            # ledger so this run's store traffic is accounted here, and
            # remember the running totals so ``cache_stats`` stays per-run.
            cache.query_stats = self.query_stats
            self.cache = cache
            self._cache_base = cache.stats.copy()
        else:
            self.cache = LRUDatabaseCache(
                store,
                capacity_bytes=config.cache_capacity_bytes,
                query_stats=self.query_stats,
                policy=config.cache_policy,
            )
            self._cache_base = CacheStats()
        self.reports: List[TaskReport] = []
        #: Optional telemetry tracer; tasks are recorded as slices on the
        #: simulated timeline (one track per worker thread).
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        # Greedy LPT assignment over a min-heap of (load, thread) pairs;
        # ties break toward the lowest thread id, so the schedule is
        # deterministic for equal loads.
        self._thread_loads: List[float] = [0.0] * config.threads_per_worker
        self._load_heap: List[tuple] = [
            (0.0, t) for t in range(config.threads_per_worker)
        ]

    # ------------------------------------------------------------------
    def execute_task(
        self,
        compiled: CompiledPlan,
        task: LocalSearchTask,
        vset: FrozenSet[int],
        emit: Optional[Callable] = None,
    ) -> TaskReport:
        """Run one task; account simulated and wall time."""
        db_before = self.query_stats.simulated_seconds
        t0 = _time.perf_counter()
        counters = compiled.run(
            task.start,
            self.cache.get,
            vset=vset,
            emit=emit,
            tcache={},
            candidate_override=task.candidate_slice,
        )
        wall = _time.perf_counter() - t0
        db_seconds = self.query_stats.simulated_seconds - db_before

        # Every get_adj is a cache lookup; misses add the DB round-trip
        # captured in db_seconds.
        cm = self.config.cost_model
        sim = (
            counters.int_ops * cm.int_seconds
            + counters.trc_ops * cm.trc_seconds
            + counters.enu_steps * cm.enu_seconds
            + counters.results * cm.result_seconds
            + counters.dbq_ops * cm.cache_hit_seconds
            + db_seconds
        )
        # Assign to the least-loaded simulated thread.
        sim_start, tid = heapq.heappop(self._load_heap)
        heapq.heappush(self._load_heap, (sim_start + sim, tid))
        self._thread_loads[tid] += sim

        report = TaskReport(task, counters, sim, wall, tid, sim_start)
        self.reports.append(report)
        if self._tracer is not None:
            self._tracer.add_sim_slice(
                f"worker-{self.worker_id}/thread-{tid}",
                f"task v={task.start}",
                sim_start,
                sim,
                args={
                    "results": counters.results,
                    "dbq_ops": counters.dbq_ops,
                    "wall_seconds": wall,
                },
            )
        return report

    # ------------------------------------------------------------------
    @property
    def makespan_seconds(self) -> float:
        """Simulated completion time of this worker (max thread load)."""
        return max(self._thread_loads) if self._thread_loads else 0.0

    @property
    def busy_seconds(self) -> float:
        """Total simulated work executed on this worker."""
        return sum(self._thread_loads)

    @property
    def wall_seconds(self) -> float:
        """Total wall time actually spent running this worker's tasks."""
        return sum(r.wall_seconds for r in self.reports)

    @property
    def cache_stats(self) -> CacheStats:
        """This run's cache accounting (deltas, for adopted warm caches)."""
        base = self._cache_base
        stats = self.cache.stats
        return CacheStats(
            hits=stats.hits - base.hits,
            misses=stats.misses - base.misses,
            evictions=stats.evictions - base.evictions,
        )

    def total_counters(self) -> TaskCounters:
        total = TaskCounters()
        for r in self.reports:
            total = total + r.counters
        return total
