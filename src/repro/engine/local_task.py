"""Local search tasks — BENU's unit of parallel work (Section III-A).

One task owns one start vertex: it runs the execution plan with
``f_{k1} = start`` and enumerates every match rooted there.  Task splitting
(Section V-B) additionally restricts the second-level candidate set
C_{k2} to a slice, turning one heavy task into several light subtasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..graph.graph import Vertex


@dataclass(frozen=True)
class LocalSearchTask:
    """One (sub)task of a BENU job.

    ``candidate_slice`` is None for unsplit tasks; for subtasks it is the
    subset of C_{k2} this subtask may enumerate.  ``split_index`` /
    ``split_total`` identify the slice for debugging and metrics.
    """

    start: Vertex
    candidate_slice: Optional[FrozenSet[Vertex]] = None
    split_index: int = 0
    split_total: int = 1

    @property
    def is_split(self) -> bool:
        return self.candidate_slice is not None

    def __repr__(self) -> str:
        if not self.is_split:
            return f"LocalSearchTask(start={self.start})"
        return (
            f"LocalSearchTask(start={self.start}, "
            f"slice={self.split_index + 1}/{self.split_total})"
        )
