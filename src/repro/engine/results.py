"""Result objects for BENU runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..graph.graph import Vertex
from ..plan.codegen import TaskCounters
from ..plan.compression import expand_code
from ..plan.generation import ExecutionPlan
from ..storage.cache import CacheStats
from ..storage.kvstore import QueryStats
from ..telemetry.snapshot import TelemetrySnapshot


@dataclass
class BenuResult:
    """Everything one BENU job produced and measured.

    ``count`` is RES executions: full matches for uncompressed plans,
    compressed codes for VCBC plans (use :meth:`expanded_matches` /
    :meth:`expanded_count` to get full matches from codes).
    """

    plan: ExecutionPlan
    count: int
    matches: Optional[List[Tuple[Vertex, ...]]] = None
    codes: Optional[List[Tuple[object, ...]]] = None
    counters: TaskCounters = field(default_factory=TaskCounters)
    communication: QueryStats = field(default_factory=QueryStats)
    cache: CacheStats = field(default_factory=CacheStats)
    num_tasks: int = 0
    num_workers: int = 0
    makespan_seconds: float = 0.0
    per_worker_busy_seconds: List[float] = field(default_factory=list)
    per_task_sim_seconds: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Measured mean wall seconds per local search task (process backend
    #: only; 0.0 elsewhere).  Feed it back as ``task_cost_hint`` to
    #: right-size queue chunks on the next run of the same plan.
    mean_task_wall_seconds: float = 0.0
    #: Which runtime executed the plan ("simulated", "inline", "process").
    execution_backend: str = "simulated"
    #: Adjacency layout the run used ("frozenset" or "csr").
    adjacency_backend: str = "frozenset"
    #: Shared-memory accounting (process backend with csr adjacency only).
    shm_attaches: int = 0
    shm_bytes: int = 0
    #: Fault-tolerance accounting (process backend only): worker processes
    #: that died mid-query and task slices re-executed to recover.  Both 0
    #: on a fault-free run.
    worker_crashes: int = 0
    tasks_retried: int = 0
    #: relabeled-id → original-id translation; None when no relabeling ran.
    #: Collected ``matches`` are already translated; ``codes`` stay in the
    #: relabeled space (expansion constraints compare under ≺) and are
    #: translated on expansion.
    id_mapping: Optional[dict] = None
    #: The run's telemetry snapshot: registry-backed metrics (always) plus
    #: the span tree / trace exports when tracing was enabled.
    telemetry: Optional[TelemetrySnapshot] = None

    # ------------------------------------------------------------------
    def expanded_matches(self) -> Iterator[Tuple[Vertex, ...]]:
        """Full matches decoded from VCBC codes (or the matches directly)."""
        if not self.plan.compressed:
            if self.matches is None:
                raise ValueError("run with collect=True to keep matches")
            yield from self.matches
            return
        if self.codes is None:
            raise ValueError("run with collect=True to keep compressed codes")
        translate = self.id_mapping
        for code in self.codes:
            for match in expand_code(self.plan, code):
                if translate is not None:
                    yield tuple(translate[v] for v in match)
                else:
                    yield match

    def expanded_count(self) -> int:
        """Total full matches, expanding codes when compressed."""
        if not self.plan.compressed:
            return self.count
        if self.codes is None:
            raise ValueError("run with collect=True to count full matches")
        return sum(1 for _ in self.expanded_matches())

    @property
    def communication_bytes(self) -> int:
        return self.communication.bytes_transferred

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    @property
    def kernel_counts(self) -> dict:
        """Per-kernel intersection dispatch counts from the run's snapshot."""
        if self.telemetry is None:
            return {}
        return self.telemetry.kernel_counts

    def summary(self) -> str:
        """One-paragraph human-readable run report."""
        kind = "codes" if self.plan.compressed else "matches"
        return (
            f"pattern={self.plan.pattern.name} {kind}={self.count} "
            f"tasks={self.num_tasks} workers={self.num_workers} "
            f"makespan={self.makespan_seconds:.3f}s "
            f"comm={self.communication_bytes / 1e6:.2f}MB "
            f"(queries={self.communication.queries}) "
            f"cache_hit_rate={self.cache_hit_rate:.1%} "
            f"int_ops={self.counters.int_ops} dbq_ops={self.counters.dbq_ops}"
        )
