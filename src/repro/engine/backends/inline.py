"""The inline (interpreter) execution backend.

Runs the exact same task loop as the simulated backend — same store,
worker caches, control checks, sinks and telemetry — but executes each
local search task through :func:`repro.engine.interpreter.interpret_plan`
instead of a compiled closure.  It is the slowest backend and the most
literal one: no code generation, no peepholes, no kernel dispatch — the
plan semantics of Table III, instruction by instruction.

Use it as the oracle runtime (the backend-equivalence matrix pins all
three backends to identical match sets), or to debug a plan whose
compiled execution misbehaves.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional

from ...plan.codegen import TaskCounters
from ...plan.generation import ExecutionPlan
from ..interpreter import interpret_plan
from .base import ExecutionRequest
from .simulated import SimulatedBackend


class InterpretedPlan:
    """Adapter giving :func:`interpret_plan` the compiled-plan run protocol.

    Workers call ``runner.run(start, get_adj, ...)`` without caring
    whether the runner is generated code or the interpreter — this class
    is what makes the interpreter a drop-in runtime.
    """

    mode = "interpret"
    backend = "any"

    def __init__(self, plan: ExecutionPlan, profiler=None) -> None:
        self.plan = plan
        self.profiler = profiler

    def run(
        self,
        start: int,
        get_adj: Callable[[int], FrozenSet[int]],
        vset=(),
        emit: Optional[Callable] = None,
        tcache: Optional[dict] = None,
        candidate_override: Optional[FrozenSet[int]] = None,
    ) -> TaskCounters:
        return interpret_plan(
            self.plan,
            start,
            get_adj,
            vset=vset,
            emit=emit,
            tcache=tcache if tcache is not None else {},
            candidate_override=candidate_override,
            profiler=self.profiler,
        )


class InlineBackend(SimulatedBackend):
    """The simulated task loop driven by the plan interpreter."""

    name = "inline"

    def _make_runner(self, request: ExecutionRequest, mode, profiler, tracer):
        with tracer.span("codegen") as span:
            span.args.update(mode=mode, interpreted=True)
        return InterpretedPlan(request.plan, profiler=profiler)
