"""Pluggable execution backends for the BENU task loop.

One logical pipeline — generate local search tasks, run them through a
plan runtime, aggregate worker ledgers into a :class:`BenuResult` — with
the runtime swapped underneath:

==========  ==========================================================
simulated   Deterministic single-core cluster simulation (cost-model
            time, distributed-store modeling, cache experiments).
inline      The literal plan interpreter on the simulated task loop —
            the correctness oracle.
process     A pool of OS worker processes: real cores, shared-memory
            CSR adjacency, streaming enumeration, cancellation.
==========  ==========================================================

Select via ``BenuConfig(execution_backend=...)`` (or ``--execution-backend``
on the CLI); everything above the backend is backend-agnostic.
"""

from __future__ import annotations

from typing import Dict, Type

from .base import (
    ExecutionBackend,
    ExecutionRequest,
    WorkerLedger,
    record_run_gauges,
    record_worker_ledgers,
    resolve_tasks,
    task_sim_seconds,
)
from .inline import InlineBackend, InterpretedPlan
from .process import ProcessBackend
from .simulated import SimulatedBackend, build_store, store_vset

#: Registry keyed by ``BenuConfig.execution_backend`` value.
EXECUTION_BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    SimulatedBackend.name: SimulatedBackend,
    InlineBackend.name: InlineBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate the execution backend registered under ``name``."""
    try:
        cls = EXECUTION_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"options: {sorted(EXECUTION_BACKENDS)}"
        ) from None
    return cls(**options)


__all__ = [
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "ExecutionRequest",
    "InlineBackend",
    "InterpretedPlan",
    "ProcessBackend",
    "SimulatedBackend",
    "WorkerLedger",
    "build_store",
    "get_backend",
    "record_run_gauges",
    "record_worker_ledgers",
    "resolve_tasks",
    "store_vset",
    "task_sim_seconds",
]
