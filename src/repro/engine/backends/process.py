"""The process execution backend: real cores, full feature parity.

Fans local search tasks out over OS processes — the closest a single
machine gets to the paper's 16-worker deployment — while keeping the
whole engine contract: enumeration streams through the ordinary sink
pipeline, cancellation and deadlines interrupt at task boundaries, and
the result's telemetry snapshot uses the same metric names the simulated
backend emits.

Design notes
------------
* One process per worker; compiled closures cannot be pickled, so each
  worker compiles the plan in its initializer.
* Adjacency sharing is backend-negotiated.  Under ``frozenset`` each
  worker inherits the graph's hash-set adjacency at fork (copy-on-write
  pages).  Under ``csr`` the parent packs the graph once into one
  ``multiprocessing.shared_memory`` block and workers *attach* by name:
  per-worker memory no longer scales with graph size.
* Tasks flow through a work queue (``imap_unordered`` with a small
  chunksize) instead of static round-robin chunks, so a worker that drew
  cheap tasks keeps pulling while another grinds through a hub vertex.
  The chunk size is *measured*, not guessed: a cost hint from a previous
  run of the same plan (via :mod:`repro.engine.granularity`) sizes each
  pull to a wall-clock budget; cold runs use a fixed pulls-per-worker
  fallback.  Chunks of plain unsplit tasks ship as flat ``array('q')``
  start-vertex buffers instead of pickled dataclass lists.
* Enumeration crosses the process boundary as bounded per-task batches:
  a worker collects the matches of one (sub)task — task splitting
  already bounds how many that is — and ships them home with the task's
  counters; the parent feeds them to the sink (a ``StreamBuffer``, a
  file, a ``LimitSink``...) in arrival order.  For uncompressed
  int-vertex plans the matches travel *packed*: one flat ``array('q')``
  of fixed-width rows per task instead of a pickled list of tuples, so
  serialization collapses to a single buffer copy (~70x faster than
  per-tuple pickle opcodes) and the parent unpacks rows back into
  tuples at the sink boundary.
* Control is threaded across the boundary as a shared ``Event``: the
  parent polls its :class:`~repro.engine.control.ExecutionControl` while
  draining results and trips the event on cancel/deadline; workers check
  it at every task boundary and skip the remaining work.
* Kernel-dispatch counts are measured per task as before/after snapshots
  of the worker's :data:`~repro.kernels.intersect.STATS`, so every task
  record is self-contained: a pool that restarts its workers (e.g.
  ``maxtasksperchild``) can neither drop nor double-count deltas.
* DB/cache accounting: every worker owns the whole graph locally, so the
  ledgers record zero distributed-store queries and every adjacency
  lookup as a cache hit — same metric names, values reflecting this
  backend's reality.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time as _time
from array import array
from typing import Callable, Dict, List, Optional, Tuple, Union

from ...faults import (
    InjectedFault,
    NULL_INJECTOR,
    SITE_WORKER_IPC,
    SITE_WORKER_TASK,
    get_injector,
    resolve_faults,
)
from ...graph.csr import ATTACH_STATS, CSRAdjacency, ShmAttachStats
from ...kernels import vectorized as _vec
from ...kernels.intersect import STATS as KERNEL_STATS, KernelStats
from ...plan.codegen import COUNTER_FIELDS, TaskCounters, compile_plan
from ...storage.cache import CacheStats
from ...telemetry.events import (
    EV_TASK_DISPATCHED,
    EV_TASK_FINISHED,
    EV_TASK_RETRIED,
    EV_WORKER_CRASHED,
)
from ...telemetry.registry import MetricsRegistry
from ...telemetry.snapshot import M_TASK_RETRIES, M_WORKER_CRASHES
from ..control import ExecutionInterrupted
from ..granularity import fallback_chunksize, measured_chunksize
from ..local_task import LocalSearchTask
from ..results import BenuResult
from .base import (
    ExecutionBackend,
    ExecutionRequest,
    WorkerLedger,
    record_plan_prediction,
    record_run_gauges,
    record_worker_ledgers,
    resolve_tasks,
    task_sim_seconds,
)

#: Result of one task: (counters, kernel Δ, pid, wall seconds, matches|None).
#: In packed collect mode the matches slot is a flat ``array('q')`` of
#: fixed-width rows rather than a list of tuples.  When the parent
#: traces, one trailing element is appended — a list of wire-format span
#: dicts (see ``span_to_wire``) recorded in the worker — so the untraced
#: record stays the exact 5-tuple it always was (zero extra IPC bytes
#: when telemetry is off).
_TaskRecord = Tuple[Tuple[int, ...], Tuple[int, ...], int, float, Optional[list]]

#: One queue pull: (index of the chunk's first task, its tasks).  A chunk
#: of plain unsplit tasks ships its start vertices as one ``array('q')``
#: — ~6x fewer pickled bytes than a list of dataclass instances.
_TaskChunk = Tuple[int, Union[List[LocalSearchTask], array]]

# Globals populated inside each worker process by the pool initializer.
_worker_state: dict = {}

#: Exit code an injected ``crash`` uses inside a pool worker — distinct
#: from 0 (normal / maxtasksperchild recycle) and negative signal codes,
#: so the parent's dead-worker scan attributes it unambiguously.
_CRASH_EXIT_CODE = 70


class WorkerCrashed(RuntimeError):
    """A pool worker died and the retry budget could not recover the query.

    Raised by the process backend after ``config.task_retries`` fresh-pool
    re-executions still left task slices unacknowledged.  Carries the
    dead workers seen (pid → exit code) and the ids of the lost tasks.
    """

    code = "worker_crashed"

    def __init__(self, dead: dict, lost_tasks: list, attempts: int) -> None:
        names = ", ".join(
            f"pid {pid} (exit {code})" for pid, code in sorted(dead.items())
        ) or "worker"
        super().__init__(
            f"{len(lost_tasks)} task(s) lost to crashed {names}; "
            f"gave up after {attempts} attempt(s)"
        )
        self.dead = dict(dead)
        self.lost_tasks = list(lost_tasks)
        self.attempts = attempts


def _init_worker(
    plan, adjacency_backend: str, payload, mode: str, cancel_event,
    trace: bool = False, pack: bool = False, vector_crossover=None,
    faults=None, fault_attempt: int = 0,
) -> None:
    """Build per-process state: compiled plan + adjacency access + control.

    ``payload`` is the :class:`Graph` itself for the frozenset backend
    (inherited via fork) or a :class:`CSRShmHandle` for the csr backend
    (workers attach to the parent's shared block, copying nothing).

    ``pack`` turns on flat ``array('q')`` match buffers (collect mode,
    uncompressed int-vertex plans only — the parent decides eligibility
    once).  ``vector_crossover`` pins the parent's measured vectorized-
    dispatch threshold so every worker's python-vs-numpy kernel mix is
    identical to the parent's regardless of per-process timing noise.

    With ``trace`` on, the initializer times itself and parks the span
    (wire format, absolute ``perf_counter`` instants — fork children
    share the parent's monotonic epoch) for the first task record to
    carry home; the parent stitches it under a per-pid process track.
    """
    t0 = _time.perf_counter() if trace else 0.0
    _vec.set_crossover(vector_crossover)
    _worker_state.clear()
    _worker_state["compiled"] = compile_plan(
        plan, mode=mode, instrument=True, backend=adjacency_backend
    )
    if adjacency_backend == "csr":
        csr = CSRAdjacency.from_shared(payload)
        _worker_state["csr"] = csr  # keeps the mapping alive
        _worker_state["get_adj"] = csr.row
        _worker_state["vset"] = csr.universe()
    else:
        adjacency = payload.adjacency()
        _worker_state["get_adj"] = adjacency.__getitem__
        _worker_state["vset"] = frozenset(payload.vertices)
    _worker_state["collect"] = mode == "collect"
    _worker_state["pack"] = pack
    _worker_state["cancel"] = cancel_event
    _worker_state["trace"] = trace
    # Deterministic fault injection: each worker replays the schedule
    # against its own per-site hit counters; ``fault_attempt`` scopes
    # rules to recovery attempts (a retry pool runs attempt-0 rules
    # clean).  A ``crash`` rule hard-kills the process in a pool worker
    # (the recovery path under test); inline it degrades to raising.
    _worker_state["injector"] = get_injector(faults, attempt=fault_attempt)
    _worker_state["crash"] = (
        (lambda: os._exit(_CRASH_EXIT_CODE)) if cancel_event is not None else None
    )
    if trace:
        _worker_state["pending_spans"] = [
            {
                "name": "worker-init",
                "t0": t0,
                "t1": _time.perf_counter(),
                "category": "worker",
                "args": {"backend": adjacency_backend, "mode": mode},
            }
        ]


def _run_task(task: LocalSearchTask) -> Optional[_TaskRecord]:
    """Execute one local search task; return its self-contained record.

    The kernel delta is snapshotted before/after *this task alone*, so
    summing deltas across all records reconstructs the exact per-kernel
    totals no matter how the queue interleaved the work or how often the
    pool restarted its workers.  Returns None when the shared cancel
    event tripped — the task-boundary check of cooperative control.
    """
    state = _worker_state
    cancel = state["cancel"]
    if cancel is not None and cancel.is_set():
        return None
    injector = state.get("injector", NULL_INJECTOR)
    if injector.enabled:
        injector.hit(SITE_WORKER_TASK, crash=state.get("crash"))
    matches = None
    emit_cb = None
    if state["collect"]:
        if state["pack"]:
            # Flat fixed-width rows: emit(tuple) flattens straight into
            # the int64 buffer; the whole task's matches pickle as one
            # machine-format byte string instead of per-tuple opcodes.
            matches = array("q")
            emit_cb = matches.extend
        else:
            matches = []
            emit_cb = matches.append
    kernel_before = KERNEL_STATS.as_tuple()
    t0 = _time.perf_counter()
    counters = state["compiled"].run(
        task.start,
        state["get_adj"],
        vset=state["vset"],
        emit=emit_cb,
        tcache={},
        candidate_override=task.candidate_slice,
    )
    t1 = _time.perf_counter()
    wall = t1 - t0
    delta = tuple(
        now - before
        for now, before in zip(KERNEL_STATS.as_tuple(), kernel_before)
    )
    record = (
        tuple(getattr(counters, f) for f in COUNTER_FIELDS),
        delta,
        os.getpid(),
        wall,
        matches,
    )
    if not state["trace"]:
        return record
    # Drain whatever spans are parked (the init span rides the first
    # record out) and append this task's own span.
    spans = state.get("pending_spans") or []
    state["pending_spans"] = []
    spans.append(
        {
            "name": f"task[{task.start}]",
            "t0": t0,
            "t1": t1,
            "category": "task",
            "args": {"results": counters.results},
        }
    )
    return record + (spans,)


def _run_chunk(chunk: _TaskChunk) -> Tuple[int, List[Optional[_TaskRecord]]]:
    """One queue pull's worth of tasks, records kept per task.

    Chunking contract: the parent builds explicit chunks and submits them
    with ``imap_unordered(..., chunksize=1)`` — one *pool* task per
    chunk.  Batching via the pool's own ``chunksize`` would swap the
    timeout-pollable result iterator for a plain generator and stall the
    parent's 0.1 s control-poll cadence; doing it here keeps that cadence
    while IPC is still amortized over the chunk.  The chunk's base index
    rides along so the parent can attribute finish events to task ids
    even though chunks complete out of order, and because every task's
    record is self-contained (its own kernel delta and counters), chunk
    arrival order never affects the final accounting.

    A chunk of plain unsplit tasks arrives as a flat ``array('q')`` of
    start vertices and is rehydrated here; its adjacency rows are then
    looked up once up front, so the per-chunk DBQ traffic against the
    shared CSR block is one batched sweep rather than interleaved
    point lookups (the memoized views make the in-task lookups free).
    """
    base, tasks = chunk
    injector = _worker_state.get("injector", NULL_INJECTOR)
    try:
        if isinstance(tasks, array):
            tasks = [LocalSearchTask(start) for start in tasks]
            get_adj = _worker_state["get_adj"]
            for task in tasks:
                get_adj(task.start)
        out = [_run_task(task) for task in tasks]
        if injector.enabled:
            # The IPC-send site: an injected error here simulates a result
            # message lost between a finished worker and the parent.
            injector.hit(SITE_WORKER_IPC, crash=_worker_state.get("crash"))
    except InjectedFault as exc:
        # The chunk's work is lost.  Ship a lost-chunk marker (a plain
        # string — healthy chunks keep their exact historical wire shape)
        # so the parent leaves the chunk pending for the retry pass.
        return base, str(exc)
    return base, out


class ProcessBackend(ExecutionBackend):
    """Fan a plan's local search tasks over OS processes."""

    name = "process"

    def __init__(
        self,
        queue_chunksize: Optional[int] = None,
        maxtasksperchild: Optional[int] = None,
    ) -> None:
        #: Tasks handed to a worker per queue pull; small values keep the
        #: queue adaptive, larger ones amortize IPC.  None = auto.
        self.queue_chunksize = queue_chunksize
        #: Recycle each worker process after N pool tasks (None = never);
        #: mainly a test hook for the restart-robust delta accounting.
        self.maxtasksperchild = maxtasksperchild

    def _chunksize(
        self,
        num_tasks: int,
        num_workers: int,
        task_cost_hint: Optional[float] = None,
        target_seconds: float = 0.02,
    ) -> int:
        """Tasks per queue pull: explicit > measured > cold fallback.

        An explicit ``queue_chunksize`` always wins.  Otherwise a task
        cost hint (the mean task wall seconds measured on a previous run
        of this plan) sizes pulls to ``target_seconds`` of work each;
        without one, a fixed pulls-per-worker fallback applies.
        """
        if self.queue_chunksize is not None:
            return max(1, self.queue_chunksize)
        if task_cost_hint:
            return measured_chunksize(
                num_tasks, num_workers, task_cost_hint, target_seconds
            )
        return fallback_chunksize(num_tasks, num_workers)

    # ------------------------------------------------------------------
    def execute(self, request: ExecutionRequest) -> BenuResult:
        config = request.config
        plan = request.plan
        control = request.control
        telemetry = request.telemetry
        tracer = telemetry.tracer
        registry = MetricsRegistry()
        wall0 = _time.perf_counter()

        tasks = resolve_tasks(request, tracer)
        mode = request.mode
        num_workers = config.num_workers
        adjacency_backend = config.adjacency_backend
        events = telemetry.events
        progress = request.progress
        progress.set_total_tasks(len(tasks))
        trace = bool(tracer.enabled)

        collected: Optional[list] = (
            [] if config.collect and not request.streaming else None
        )
        if request.streaming:
            emit: Optional[Callable] = request.sink.emit
        elif collected is not None:
            emit = collected.append
        else:
            emit = None

        # Packed match shipping: eligible whenever matches are plain
        # fixed-width int tuples — uncompressed plans (compressed ones
        # emit frozensets) over int-vertex graphs.  Decided once here;
        # workers just honor the flag.
        pack = (
            mode == "collect"
            and not plan.compressed
            and all(isinstance(v, int) for v in request.graph.vertices)
        )
        match_width = plan.pattern.n

        shm = None
        shm_bytes = 0
        if adjacency_backend == "csr":
            handle, shm = request.graph.csr().to_shared()
            shm_bytes = handle.nbytes
            payload = handle
        else:
            payload = request.graph

        # One resolved fault schedule for the run: an explicit config wins,
        # the BENU_FAULTS env var covers chaos runs; None stays None and
        # every site below holds the free NULL_INJECTOR.
        faults = resolve_faults(config.faults)

        records: List[_TaskRecord] = []
        attaches = 0
        recovery: Optional[dict] = None
        try:
            with tracer.span("execution") as exec_span:
                if num_workers == 1:
                    attaches = self._run_inline(
                        plan, adjacency_backend, payload, mode, tasks,
                        control, emit, records, trace, events, progress,
                        pack, match_width, faults,
                    )
                else:
                    recovery = self._run_pool(
                        plan, adjacency_backend, payload, mode, tasks,
                        control, emit, records, num_workers, trace, events,
                        progress, pack, match_width,
                        request.task_cost_hint, config.chunk_target_seconds,
                        faults, config.task_retries,
                    )
                    # Each worker attaches exactly once, in its initializer.
                    if adjacency_backend == "csr":
                        attaches = len(
                            {rec[2] for rec in records if rec is not None}
                        )
                exec_span.args["tasks"] = len(tasks)
        finally:
            if shm is not None:
                if num_workers == 1:
                    # The inline "worker" mapped the block in this process;
                    # drop its views so the mapping can actually close.
                    attached = _worker_state.get("csr")
                    _worker_state.clear()
                    if attached is not None:
                        attached.detach()
                shm.close()
                shm.unlink()

        return self._finalize(
            request, registry, tasks, records, attaches, shm_bytes,
            collected, num_workers, wall0, tracer, recovery,
        )

    # ------------------------------------------------------------------
    def _run_inline(
        self, plan, adjacency_backend, payload, mode, tasks, control, emit,
        records, trace, events, progress, pack, match_width, faults=None,
    ) -> int:
        """Degenerate one-worker run in this very process (no fork)."""
        attach_base = ATTACH_STATS.attaches
        _init_worker(
            plan, adjacency_backend, payload, mode, None, trace, pack,
            _vec.CROSSOVER, faults,
        )
        for i, task in enumerate(tasks):
            if control is not None:
                control.check()
            if events.enabled:
                events.emit(EV_TASK_DISPATCHED, task_id=i)
            record = _run_task(task)
            records.append(record)
            self._deliver(record, emit, match_width)
            self._account(record, i, events, progress)
        return ATTACH_STATS.attaches - attach_base

    def _run_pool(
        self, plan, adjacency_backend, payload, mode, tasks, control, emit,
        records, num_workers, trace, events, progress, pack, match_width,
        task_cost_hint=None, chunk_target_seconds=0.02,
        faults=None, task_retries: int = 0,
    ) -> dict:
        """Drive worker pools, recovering lost task slices across crashes.

        Exactly-once accounting across failures:

        * The unit of acknowledgment is the *chunk*, keyed by its base
          task id.  A chunk's records ship atomically (one pool result),
          so a chunk is either fully accounted or not at all — counters
          can never half-count a slice.
        * ``pending`` holds every unacknowledged chunk; a chunk is
          deleted exactly when its result is consumed.  Late duplicates
          (a resubmitted chunk whose original eventually surfaced) are
          dropped by the ``base not in pending`` guard, so no task is
          ever delivered or counted twice.
        * When a pool is abandoned (worker death, lost results), its
          result iterator is never consumed again — whatever it might
          still hold is discarded wholesale and the surviving ``pending``
          set is resubmitted to a *fresh* pool, bounded by
          ``task_retries`` attempts.  Retry pools run with the next
          attempt number, so attempt-scoped fault rules (the default)
          don't re-fire.

        The instruction/kernel sums therefore match the single-node run
        exactly no matter how many workers died on the way.  Returns the
        recovery ledger: ``{"worker_crashes", "tasks_retried", "attempts"}``.
        """
        ctx = mp.get_context("fork") if hasattr(os, "fork") else mp.get_context()
        cancel_event = ctx.Event()
        size = self._chunksize(
            len(tasks), num_workers, task_cost_hint, chunk_target_seconds
        )
        pending: Dict[int, object] = {
            i: self._pack_tasks(tasks[i : i + size])
            for i in range(0, len(tasks), size)
        }
        if events.enabled:
            # The whole queue is handed to the pool up front; dispatch is
            # the enqueue instant, finish events arrive per record below.
            for i in range(len(tasks)):
                events.emit(EV_TASK_DISPATCHED, task_id=i)
        attempt = 0
        crashes: Dict[int, int] = {}
        tasks_retried = 0
        while True:
            dead = self._drive_pool(
                ctx,
                (
                    plan, adjacency_backend, payload, mode, cancel_event,
                    trace, pack, _vec.CROSSOVER, faults, attempt,
                ),
                cancel_event, pending, control, emit, records, events,
                progress, match_width, num_workers,
            )
            if not pending:
                break
            # Chunks survived the pool: their workers died or their
            # results were lost.  Either retry them on a fresh pool or
            # give up with the typed error.
            lost = [
                base + offset
                for base in sorted(pending)
                for offset in range(self._chunk_task_count(pending[base]))
            ]
            for pid, code in dead.items():
                if pid not in crashes and events.enabled:
                    events.emit(
                        EV_WORKER_CRASHED,
                        worker_pid=pid, exit_code=code, attempt=attempt,
                    )
                crashes[pid] = code
            if attempt >= task_retries:
                raise WorkerCrashed(crashes, lost, attempt + 1)
            attempt += 1
            tasks_retried += len(lost)
            if events.enabled:
                for task_id in lost:
                    events.emit(EV_TASK_RETRIED, task_id=task_id, attempt=attempt)
        return {
            "worker_crashes": len(crashes),
            "tasks_retried": tasks_retried,
            "attempts": attempt,
        }

    #: Seconds without any result arrival — with a dead worker on the
    #: books — before the current pool is declared lost and its surviving
    #: chunks are resubmitted.  Class attribute so tests can tighten it.
    worker_grace_seconds = 0.5

    def _drive_pool(
        self, ctx, initargs, cancel_event, pending, control, emit, records,
        events, progress, match_width, num_workers,
    ) -> Dict[int, int]:
        """One pool lifecycle over the pending chunks; ack what arrives.

        Returns pid → exit code for every worker process observed dead
        with a non-zero code (a ``maxtasksperchild`` recycle exits 0 and
        is not a crash).  The pool's own maintenance thread silently
        replaces dead workers but never resubmits the chunk that died
        with one — so after a death, once no result has arrived for
        ``worker_grace_seconds``, the pool is abandoned: the context exit
        terminates it and the caller resubmits the unacknowledged chunks.
        """
        chunks = [(base, pending[base]) for base in sorted(pending)]
        tracked: Dict[int, object] = {}
        dead: Dict[int, int] = {}
        last_arrival = _time.monotonic()
        with ctx.Pool(
            processes=num_workers,
            initializer=_init_worker,
            initargs=initargs,
            maxtasksperchild=self.maxtasksperchild,
        ) as pool:
            # Track the original workers *before* any can die: the pool's
            # maintenance thread joins and replaces dead workers within
            # milliseconds, so a lazy first scan would only ever see the
            # healthy replacements.
            self._scan_workers(pool, tracked, dead)
            results = pool.imap_unordered(_run_chunk, chunks, chunksize=1)
            try:
                while pending:
                    try:
                        base, chunk_records = results.next(timeout=0.1)
                    except StopIteration:
                        # Every submitted chunk reported in, but some may
                        # have reported lost-chunk markers.
                        break
                    except mp.TimeoutError:
                        # Nothing arrived: the deadline can still expire and
                        # a cancel can still land — keep the control live.
                        if control is not None:
                            control.check()
                        self._scan_workers(pool, tracked, dead)
                        if dead and (
                            _time.monotonic() - last_arrival
                            > self.worker_grace_seconds
                        ):
                            break
                        continue
                    last_arrival = _time.monotonic()
                    if base not in pending:
                        # Exactly-once: a stale duplicate of a chunk already
                        # acknowledged on an earlier attempt.
                        continue
                    if isinstance(chunk_records, str):
                        # Injected lost-result marker: the chunk's work is
                        # gone; leave it pending for the retry pass.
                        continue
                    del pending[base]
                    for offset, record in enumerate(chunk_records):
                        records.append(record)
                        self._deliver(record, emit, match_width)
                        self._account(record, base + offset, events, progress)
                    if control is not None:
                        control.check()
            except ExecutionInterrupted:
                # Trip the shared event so workers mid-chunk stop at their
                # next task boundary; leaving the pool context then
                # terminates whatever is left.
                cancel_event.set()
                raise
            self._scan_workers(pool, tracked, dead)
        return dead

    @staticmethod
    def _scan_workers(pool, tracked: Dict[int, object], dead: Dict[int, int]) -> None:
        """Track the pool's worker processes and note non-zero exits.

        References are kept across scans because the pool's maintenance
        thread drops dead workers from ``pool._pool`` when it replaces
        them — holding our own reference keeps ``exitcode`` readable.
        """
        for proc in list(getattr(pool, "_pool", None) or []):
            if proc.pid is not None:
                tracked[proc.pid] = proc
        for pid, proc in tracked.items():
            code = proc.exitcode
            if code is not None and code != 0 and pid not in dead:
                dead[pid] = code

    @staticmethod
    def _chunk_task_count(packed) -> int:
        """How many tasks a packed chunk carries (array or task list)."""
        return len(packed)

    @staticmethod
    def _pack_tasks(tasks: List[LocalSearchTask]):
        """A chunk's wire form: flat start-vertex buffer when possible.

        Only plain unsplit integer-start tasks pack (splitting rewrites a
        task into several carrying ``candidate_slice`` payloads, which
        need the dataclass); mixed chunks ship as-is.
        """
        if all(
            task.candidate_slice is None
            and task.split_total == 1
            and isinstance(task.start, int)
            for task in tasks
        ):
            return array("q", [task.start for task in tasks])
        return tasks

    @staticmethod
    def _deliver(
        record: Optional[_TaskRecord],
        emit: Optional[Callable],
        width: int = 0,
    ) -> None:
        if record is None or emit is None:
            return
        matches = record[4]
        if not matches:
            return
        if isinstance(matches, array):
            # Packed rows: unpack the flat buffer back into tuples at
            # the sink boundary, width ints per match.
            for i in range(0, len(matches), width):
                emit(tuple(matches[i : i + width]))
        else:
            for match in matches:
                emit(match)

    @staticmethod
    def _account(
        record: Optional[_TaskRecord], task_id: int, events, progress
    ) -> None:
        """Parent-side progress/event bookkeeping for one arrived record."""
        if record is None:  # skipped at the boundary after a cancel
            return
        results = record[0][COUNTER_FIELDS.index("results")]
        progress.task_done(embeddings=results)
        if events.enabled:
            events.emit(
                EV_TASK_FINISHED,
                task_id=task_id,
                worker_pid=record[2],
                embeddings=results,
                wall_seconds=record[3],
            )

    # ------------------------------------------------------------------
    def _finalize(
        self, request, registry, tasks, records, attaches, shm_bytes,
        collected, num_workers, wall0, tracer, recovery=None,
    ) -> BenuResult:
        config = request.config
        cost_model = config.cost_model

        # Fault-tolerance ledger: registered only when something actually
        # happened, so a fault-free run's registry stays byte-identical.
        worker_crashes = recovery["worker_crashes"] if recovery else 0
        tasks_retried = recovery["tasks_retried"] if recovery else 0
        if worker_crashes:
            registry.counter(
                M_WORKER_CRASHES, help="worker processes crashed mid-query"
            ).inc(worker_crashes)
        if tasks_retried:
            registry.counter(
                M_TASK_RETRIES, help="task slices re-executed after a crash"
            ).inc(tasks_retried)

        # Group self-contained task records into per-process ledgers;
        # worker ids are dense, in order of first result arrival.
        worker_index: Dict[int, str] = {}
        ledgers: Dict[str, WorkerLedger] = {}
        remote_spans: Dict[int, list] = {}
        kernel_totals = [0] * len(KernelStats.FIELDS)
        for record in records:
            if record is None:  # skipped at the boundary after a cancel
                continue
            raw, delta, pid, wall, _matches = record[:5]
            if len(record) > 5 and record[5]:
                remote_spans.setdefault(pid, []).extend(record[5])
            wid = worker_index.setdefault(pid, str(len(worker_index)))
            ledger = ledgers.setdefault(wid, WorkerLedger(worker_id=wid))
            counters = TaskCounters.from_tuple(raw)
            sim = task_sim_seconds(counters, cost_model)
            ledger.counters = ledger.counters + counters
            ledger.num_tasks += 1
            ledger.task_sim_seconds.append(sim)
            ledger.busy_seconds += sim
            ledger.wall_seconds += wall
            for i, d in enumerate(delta):
                kernel_totals[i] += d
        # Stitch the workers' own span trees (shipped over the result
        # channel in wire form) under real-pid process tracks.
        for pid, spans in remote_spans.items():
            tracer.add_remote_spans(pid, spans)
        for ledger in ledgers.values():
            # Workers own the whole graph locally: zero store round-trips,
            # every adjacency lookup a local hit (same metric names as the
            # simulated ledgers; values reflect this backend's reality).
            ledger.cache_stats = CacheStats(hits=ledger.counters.dbq_ops)
            tracer.add_span(
                f"worker-{ledger.worker_id}",
                wall_seconds=ledger.wall_seconds,
                sim_seconds=ledger.busy_seconds,
                category="execution",
                track=f"worker-{ledger.worker_id}",
                args={"tasks": ledger.num_tasks},
            )

        ordered = [ledgers[k] for k in sorted(ledgers, key=int)]
        totals = record_worker_ledgers(registry, ordered)
        record_plan_prediction(registry, request.plan, totals["counters"])
        KernelStats(
            **{f: n for f, n in zip(KernelStats.FIELDS, kernel_totals)}
        ).record_to(registry)
        ShmAttachStats(attaches, shm_bytes).record_to(registry)

        matches = None
        codes = None
        if collected is not None:
            if request.plan.compressed:
                codes = collected
            else:
                matches = collected

        makespan = max(
            (ledger.busy_seconds for ledger in ordered), default=0.0
        )
        wall = _time.perf_counter() - wall0
        record_run_gauges(registry, makespan, wall, num_workers, totals["cache"])

        # Measured mean per-task wall cost — the granularity feedback
        # signal a warm re-run (or the service's cost profile) uses to
        # right-size queue pulls.
        walls = [r[3] for r in records if r is not None]
        mean_task_wall = sum(walls) / len(walls) if walls else 0.0

        return BenuResult(
            plan=request.plan,
            count=totals["counters"].results,
            matches=matches,
            codes=codes,
            counters=totals["counters"],
            communication=totals["communication"],
            cache=totals["cache"],
            num_tasks=len(tasks),
            num_workers=num_workers,
            makespan_seconds=makespan,
            per_worker_busy_seconds=[l.busy_seconds for l in ordered],
            per_task_sim_seconds=totals["per_task"],
            wall_seconds=wall,
            mean_task_wall_seconds=mean_task_wall,
            execution_backend=self.name,
            adjacency_backend=config.adjacency_backend,
            shm_attaches=attaches if config.adjacency_backend == "csr" else 0,
            shm_bytes=shm_bytes,
            worker_crashes=worker_crashes,
            tasks_retried=tasks_retried,
            telemetry=request.telemetry.snapshot(registry),
        )
