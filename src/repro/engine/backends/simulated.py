"""The simulated execution backend (Fig. 2's architecture, one core).

The master generates local search tasks and shuffles them evenly across
worker machines (the paper hands them to 16 reducers round-robin); each
worker executes its tasks against its shared database cache, on simulated
threads.  The job makespan is the slowest worker's makespan — exactly the
quantity Figs. 9 and 10 plot.

Telemetry: every run builds a fresh
:class:`~repro.telemetry.registry.MetricsRegistry`, populated at end-of-run
from the per-worker stats ledgers (so the default, hook-free path stays as
fast as before), and attaches the resulting snapshot to the result.  With
``config.telemetry`` set, the run additionally records a span tree
(codegen → task-generation → execution → per-worker spans), the simulated
schedule timeline, a DB payload-size histogram, and — with ``profile=True``
— sampled per-instruction timings from probes compiled into the plan.
"""

from __future__ import annotations

import time as _time
from typing import Callable, List, Optional

from ...kernels.intersect import STATS as KERNEL_STATS, KernelStats
from ...plan.codegen import compile_plan
from ...storage.kvstore import DistributedKVStore
from ...telemetry.registry import DEFAULT_BYTES_BUCKETS, MetricsRegistry
from ...telemetry.snapshot import H_DB_QUERY_BYTES
from ..results import BenuResult
from ..worker import Worker
from ...telemetry.events import EV_TASK_DISPATCHED, EV_TASK_FINISHED
from .base import (
    ExecutionBackend,
    ExecutionRequest,
    WorkerLedger,
    record_plan_prediction,
    record_run_gauges,
    record_worker_ledgers,
    resolve_tasks,
)


def build_store(request: ExecutionRequest) -> DistributedKVStore:
    """The request's store, building a fresh one when no owner handed one in."""
    if request.store is not None:
        return request.store
    config = request.config
    return DistributedKVStore.from_graph(
        request.graph,
        num_partitions=config.num_partitions,
        latency=config.latency,
        backend=config.adjacency_backend,
    )


def store_vset(store: DistributedKVStore, graph):
    """The V(G) operand in the store's adjacency layout."""
    if store.csr is not None:
        # A sorted view over the packed vertex-id array, so compiled
        # kernels can bounds-slice it like any row.
        return store.csr.universe()
    return frozenset(graph.vertices)


class SimulatedBackend(ExecutionBackend):
    """Deterministic single-core execution with simulated time."""

    name = "simulated"

    # ------------------------------------------------------------------
    def _make_runner(self, request: ExecutionRequest, mode, profiler, tracer):
        """Compile the plan (the inline backend overrides this to interpret)."""
        with tracer.span("codegen") as span:
            compiled = compile_plan(
                request.plan,
                mode=mode,
                instrument=True,
                profiler=profiler,
                backend=request.config.adjacency_backend,
            )
            span.args.update(
                mode=mode, source_lines=compiled.source.count("\n")
            )
        return compiled

    # ------------------------------------------------------------------
    def execute(self, request: ExecutionRequest) -> BenuResult:
        config = request.config
        plan = request.plan
        control = request.control
        telemetry = request.telemetry
        tracer = telemetry.tracer
        registry = MetricsRegistry()
        wall0 = _time.perf_counter()

        events = telemetry.events
        progress = request.progress

        store = build_store(request)
        vset = store_vset(store, request.graph)
        tasks = resolve_tasks(request, tracer)
        progress.set_total_tasks(len(tasks))

        mode = request.mode
        profiler = telemetry.make_profiler(registry)
        runner = self._make_runner(request, mode, profiler, tracer)

        collected: Optional[list] = (
            [] if config.collect and not request.streaming else None
        )
        if request.streaming:
            emit: Optional[Callable] = request.sink.emit
        elif collected is not None:
            emit = collected.append
        else:
            emit = None

        if telemetry.enabled:
            payload_hist = registry.histogram(
                H_DB_QUERY_BYTES,
                help="payload size per distributed-store query",
                buckets=DEFAULT_BYTES_BUCKETS,
            )
            store.on_query = (
                lambda key, nbytes, cost: payload_hist.observe(nbytes)
            )
        kernel_base = KERNEL_STATS.as_tuple()
        worker_caches = request.worker_caches
        try:
            with tracer.span("execution") as exec_span:
                if worker_caches is not None and len(worker_caches) != config.num_workers:
                    raise ValueError(
                        f"need one cache per worker: got {len(worker_caches)} "
                        f"for {config.num_workers} workers"
                    )
                workers = [
                    Worker(
                        i,
                        store,
                        config,
                        tracer=tracer,
                        cache=worker_caches[i] if worker_caches else None,
                    )
                    for i in range(config.num_workers)
                ]
                # Round-robin shuffle, as the paper distributes tasks evenly.
                for i, task in enumerate(tasks):
                    if control is not None:
                        control.check()
                    worker = workers[i % len(workers)]
                    if events.enabled:
                        events.emit(
                            EV_TASK_DISPATCHED,
                            task_id=i,
                            worker=worker.worker_id,
                        )
                    report = worker.execute_task(runner, task, vset, emit)
                    progress.task_done(embeddings=report.counters.results)
                    if events.enabled:
                        events.emit(
                            EV_TASK_FINISHED,
                            task_id=i,
                            worker=worker.worker_id,
                            embeddings=report.counters.results,
                            sim_seconds=report.sim_seconds,
                        )
                for w in workers:
                    tracer.add_span(
                        f"worker-{w.worker_id}",
                        wall_seconds=w.wall_seconds,
                        sim_seconds=w.busy_seconds,
                        category="execution",
                        track=f"worker-{w.worker_id}",
                        start=getattr(exec_span, "t0", None),
                        args={
                            "tasks": len(w.reports),
                            "makespan_sim_seconds": w.makespan_seconds,
                            "cache_hit_rate": w.cache_stats.hit_rate,
                        },
                    )
                exec_span.args["tasks"] = len(tasks)
        finally:
            store.on_query = None
        KernelStats(**KERNEL_STATS.delta_since(kernel_base)).record_to(registry)

        ledgers: List[WorkerLedger] = [
            WorkerLedger(
                worker_id=str(w.worker_id),
                counters=w.total_counters(),
                query_stats=w.query_stats,
                cache_stats=w.cache_stats,
                num_tasks=len(w.reports),
                task_sim_seconds=[r.sim_seconds for r in w.reports],
                busy_seconds=w.busy_seconds,
                wall_seconds=w.wall_seconds,
            )
            for w in workers
        ]
        totals = record_worker_ledgers(registry, ledgers)
        record_plan_prediction(registry, plan, totals["counters"])

        matches = None
        codes = None
        if collected is not None:
            if plan.compressed:
                codes = collected
            else:
                matches = collected

        makespan = max(w.makespan_seconds for w in workers)
        wall = _time.perf_counter() - wall0
        record_run_gauges(registry, makespan, wall, len(workers), totals["cache"])

        return BenuResult(
            plan=plan,
            count=totals["counters"].results,
            matches=matches,
            codes=codes,
            counters=totals["counters"],
            communication=totals["communication"],
            cache=totals["cache"],
            num_tasks=len(tasks),
            num_workers=len(workers),
            makespan_seconds=makespan,
            per_worker_busy_seconds=[w.busy_seconds for w in workers],
            per_task_sim_seconds=totals["per_task"],
            wall_seconds=wall,
            execution_backend=self.name,
            adjacency_backend=config.adjacency_backend,
            telemetry=telemetry.snapshot(registry),
        )
