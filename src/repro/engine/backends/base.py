"""The execution-backend contract and the utilities every backend shares.

The paper's Fig. 2 architecture has exactly one execution model — workers
pulling local search tasks against a shared adjacency store — and this
package keeps exactly one *logical* pipeline for it.  What varies is the
runtime underneath: the deterministic simulated cluster, the literal
plan interpreter, or a pool of OS processes.  Each of those is an
:class:`ExecutionBackend`; they all consume the same
:class:`ExecutionRequest` and produce the same
:class:`~repro.engine.results.BenuResult`, with the same telemetry
metric names, so everything above the backend (``run_benu``, the CLI,
the query service) selects one by name and never special-cases it.

Shared here:

* :func:`resolve_tasks` — task generation under the tracer span every
  backend records;
* :func:`task_sim_seconds` — the deterministic cost-model clock (the
  single definition the simulated worker and the process backend both
  use, so their ``benu_task_sim_seconds`` histograms are comparable);
* :func:`record_worker_ledgers` / :func:`record_run_gauges` — the
  end-of-run registry population, keeping metric names identical across
  backends by construction.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...graph.graph import Graph
from ...plan.codegen import TaskCounters
from ...plan.generation import ExecutionPlan
from ...storage.cache import CacheStats
from ...storage.kvstore import DistributedKVStore, QueryStats
from ...plan.cost import q_error
from ...telemetry.progress import NULL_PROGRESS
from ...telemetry.registry import MetricsRegistry
from ...telemetry.runtime import Telemetry
from ...telemetry.snapshot import (
    G_CACHE_HIT_RATIO,
    G_MAKESPAN,
    G_PLAN_PREDICTED,
    G_PLAN_QERROR,
    G_WALL,
    G_WORKERS,
    H_TASK_SIM_SECONDS,
    M_TASKS,
)
from ..config import BenuConfig, SimulationCostModel
from ..control import ExecutionControl
from ..local_task import LocalSearchTask
from ..task_split import generate_tasks


@dataclass
class ExecutionRequest:
    """Everything one backend needs to run one plan over one graph.

    ``store`` and ``worker_caches`` are reuse hooks for long-lived owners
    (the query service's graph catalog); backends that cannot use them
    (the process backend runs against the raw graph) simply ignore them.
    ``tasks`` overrides task generation — Exp-4 compares splitting on/off
    over identical plans this way.
    """

    plan: ExecutionPlan
    graph: Graph
    config: BenuConfig = field(default_factory=BenuConfig)
    telemetry: Optional[Telemetry] = None
    tasks: Optional[List[LocalSearchTask]] = None
    sink: object = None
    control: Optional[ExecutionControl] = None
    store: Optional[DistributedKVStore] = None
    worker_caches: Optional[list] = None
    #: Live progress tracker (the service polls it mid-run); the shared
    #: no-op by default, so backends report unconditionally.
    progress: object = NULL_PROGRESS
    #: Measured mean task wall seconds from a previous run of this plan
    #: (``BenuResult.mean_task_wall_seconds``); the process backend sizes
    #: its queue chunks from it.  None = cold start.
    task_cost_hint: Optional[float] = None
    #: Restrict task generation to these start vertices (a shard's owned
    #: slice of the task space); None runs the whole graph.  Ignored when
    #: an explicit ``tasks`` list is given.
    start_vertices: Optional[Sequence] = None

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = Telemetry(self.config.telemetry)

    @property
    def streaming(self) -> bool:
        return self.sink is not None

    @property
    def mode(self) -> str:
        """Compilation/collection mode: ``collect`` or ``count``."""
        return (
            "collect" if (self.config.collect or self.streaming) else "count"
        )


class ExecutionBackend(abc.ABC):
    """One runtime for the BENU task loop.

    The contract: :meth:`execute` runs every task of ``request.plan``
    over ``request.graph``, emits matches to ``request.sink`` (already
    in execution-space ids — translation happens a layer up), honors
    ``request.control`` at task boundaries (a cancel or expired deadline
    raises the typed :class:`~repro.engine.control.ExecutionInterrupted`
    out of this method; no partial result is returned), and returns a
    :class:`~repro.engine.results.BenuResult` whose ``telemetry``
    snapshot uses the canonical metric names of
    :mod:`repro.telemetry.snapshot`.
    """

    #: Registry key (``BenuConfig.execution_backend`` value).
    name: str = "?"

    @abc.abstractmethod
    def execute(self, request: ExecutionRequest):
        """Run the request; return a :class:`BenuResult`."""


# ----------------------------------------------------------------- helpers
def resolve_tasks(request: ExecutionRequest, tracer) -> List[LocalSearchTask]:
    """The request's task list, generating (under a span) when not given."""
    if request.tasks is not None:
        return list(request.tasks)
    with tracer.span("task-generation") as span:
        tasks = list(
            generate_tasks(
                request.plan,
                request.graph,
                request.config.split_threshold,
                start_vertices=request.start_vertices,
            )
        )
        span.args["tasks"] = len(tasks)
        if request.start_vertices is not None:
            span.args["start_vertices"] = len(request.start_vertices)
    return tasks


def task_sim_seconds(
    counters: TaskCounters,
    cost_model: SimulationCostModel,
    db_seconds: float = 0.0,
) -> float:
    """Deterministic simulated duration of one task (Section IV-C).

    Every ``get_adj`` is a cache lookup; misses add the DB round-trip
    time the caller measured into ``db_seconds`` (zero for backends whose
    workers own the whole graph locally).
    """
    return (
        counters.int_ops * cost_model.int_seconds
        + counters.trc_ops * cost_model.trc_seconds
        + counters.enu_steps * cost_model.enu_seconds
        + counters.results * cost_model.result_seconds
        + counters.dbq_ops * cost_model.cache_hit_seconds
        + db_seconds
    )


@dataclass
class WorkerLedger:
    """One worker's end-of-run accounting, backend-agnostic.

    The simulated backend fills it from its :class:`Worker` objects, the
    process backend from the per-task records its processes sent home —
    either way :func:`record_worker_ledgers` mirrors it into the registry
    under the same metric names.
    """

    worker_id: str
    counters: TaskCounters = field(default_factory=TaskCounters)
    query_stats: QueryStats = field(default_factory=QueryStats)
    cache_stats: CacheStats = field(default_factory=CacheStats)
    num_tasks: int = 0
    task_sim_seconds: List[float] = field(default_factory=list)
    busy_seconds: float = 0.0
    wall_seconds: float = 0.0


def record_worker_ledgers(
    registry: MetricsRegistry, ledgers: List[WorkerLedger]
) -> Dict[str, object]:
    """Mirror per-worker ledgers into ``registry``; return the totals.

    Returns ``{"counters": TaskCounters, "communication": QueryStats,
    "cache": CacheStats, "per_task": [float]}`` — the aggregate the
    result object carries alongside the registry-backed views.
    """
    total_counters = TaskCounters()
    communication = QueryStats()
    cache = CacheStats()
    per_task: List[float] = []
    task_hist = registry.histogram(
        H_TASK_SIM_SECONDS,
        help="simulated duration per local search task (Fig. 9 skew)",
        labels=("worker",),
    )
    tasks_counter = registry.counter(
        M_TASKS, "local search tasks executed", ("worker",)
    )
    for ledger in ledgers:
        total_counters = total_counters + ledger.counters
        communication.merge(ledger.query_stats)
        cache.merge(ledger.cache_stats)
        per_task.extend(ledger.task_sim_seconds)
        wid = ledger.worker_id
        ledger.query_stats.record_to(registry, worker=wid)
        ledger.cache_stats.record_to(registry, worker=wid)
        ledger.counters.record_to(registry, worker=wid)
        tasks_counter.inc(ledger.num_tasks, worker=wid)
        for sim in ledger.task_sim_seconds:
            task_hist.observe(sim, worker=wid)
    return {
        "counters": total_counters,
        "communication": communication,
        "cache": cache,
        "per_task": per_task,
    }


#: Instruction-type name → the :class:`TaskCounters` field that holds the
#: exact executed count it predicts.
PREDICTED_COUNTER_FIELDS: Dict[str, str] = {
    "INT": "int_ops",
    "TRC": "trc_ops",
    "DBQ": "dbq_ops",
    "ENU": "enu_steps",
    "RES": "results",
}


def record_plan_prediction(
    registry: MetricsRegistry,
    plan: ExecutionPlan,
    counters: TaskCounters,
) -> Optional[Dict[str, Dict[str, float]]]:
    """Confront the plan's cost-model estimates with the executed counts.

    Mirrors per-instruction-type predictions and q-errors into the
    registry gauges (``benu_plan_predicted_executions`` /
    ``benu_plan_q_error``) and returns ``{instr: {predicted, actual,
    q_error}}`` for event emission — or None when the plan carries no
    predictions (plans built outside ``build_plan``), keeping the
    no-telemetry path free of new metrics.
    """
    predicted = getattr(plan, "predicted_counts", None)
    if not predicted:
        return None
    pred_gauge = registry.gauge(
        G_PLAN_PREDICTED,
        help="cost-model execution estimate per instruction type (§IV-C)",
        labels=("instr",),
    )
    qerr_gauge = registry.gauge(
        G_PLAN_QERROR,
        help="max(pred/actual, actual/pred) per instruction type",
        labels=("instr",),
    )
    out: Dict[str, Dict[str, float]] = {}
    for instr, pred in predicted.items():
        field_name = PREDICTED_COUNTER_FIELDS.get(instr)
        actual = float(getattr(counters, field_name, 0)) if field_name else 0.0
        qe = q_error(pred, actual)
        pred_gauge.set(pred, instr=instr)
        qerr_gauge.set(qe, instr=instr)
        out[instr] = {"predicted": pred, "actual": actual, "q_error": qe}
    return out


def record_run_gauges(
    registry: MetricsRegistry,
    makespan: float,
    wall: float,
    num_workers: int,
    cache: CacheStats,
) -> None:
    """The end-of-run gauges every backend sets under the same names."""
    registry.gauge(G_MAKESPAN, "simulated job makespan").set(makespan)
    registry.gauge(G_WALL, "wall-clock run time").set(wall)
    registry.gauge(G_WORKERS, "worker machines/processes").set(num_workers)
    registry.gauge(G_CACHE_HIT_RATIO, "database cache hit ratio").set(
        cache.hit_rate
    )
