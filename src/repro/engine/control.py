"""Cooperative execution control: cancellation and deadlines.

A BENU job is a loop over local search tasks; an :class:`ExecutionControl`
is the handle that lets anyone outside that loop stop it *between* tasks
(the paper's tasks are the natural preemption grain — splitting already
bounds how long one runs).  The engine only ever calls :meth:`check`;
whoever owns the query (the service scheduler, a CLI ``--limit``, a test)
calls :meth:`cancel` or arms a deadline.

Cancellation is cooperative and thread-safe: ``cancel`` may be called
from any thread while the query runs on another.
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class ExecutionInterrupted(RuntimeError):
    """Base class for control-initiated stops."""

    #: Machine-readable status the service maps this interruption onto.
    status = "interrupted"


class QueryCancelled(ExecutionInterrupted):
    """The query was cancelled by its owner (client, limit, shutdown)."""

    status = "cancelled"

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


class DeadlineExpired(ExecutionInterrupted):
    """The query ran past its deadline."""

    status = "deadline_expired"

    def __init__(self, deadline_seconds: float) -> None:
        super().__init__(f"deadline of {deadline_seconds:.3f}s expired")
        self.deadline_seconds = deadline_seconds


class ExecutionControl:
    """Cancellation token + optional deadline, checked at task boundaries.

    Deadlines come in two forms that compose (the earlier one wins):

    * ``deadline_seconds`` — a relative budget, armed against the local
      monotonic clock when the control is created;
    * ``deadline_at`` — an *absolute wall-clock* instant (epoch seconds,
      ``time.time()``).  This is the form a deadline takes when it
      crosses a process boundary: a router stamps one global deadline on
      a query and forwards the same instant to every shard on every hop,
      so queue time and network time anywhere debit the one shared
      budget instead of restarting it.  An already-past ``deadline_at``
      arms an *expired* control (the first check raises) rather than
      erroring — a hop that receives an exhausted budget must report
      ``deadline_expired``, not crash.

    >>> control = ExecutionControl()
    >>> control.check()  # no-op while live
    >>> control.cancel("client went away")
    >>> control.check()
    Traceback (most recent call last):
        ...
    repro.engine.control.QueryCancelled: client went away
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        deadline_at: Optional[float] = None,
    ) -> None:
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline must be positive")
        #: The absolute wall deadline (epoch seconds) to forward on the
        #: next hop; derived from ``deadline_seconds`` when only the
        #: relative form was given.
        self.deadline_at = deadline_at
        budget: Optional[float] = deadline_seconds
        if deadline_at is not None:
            remaining = deadline_at - time.time()
            budget = remaining if budget is None else min(budget, remaining)
        elif deadline_seconds is not None:
            self.deadline_at = time.time() + deadline_seconds
        self.deadline_seconds = budget
        self._deadline_at = (
            time.monotonic() + budget if budget is not None else None
        )
        self._cancelled = threading.Event()
        self._reason: str = "cancelled"

    # ------------------------------------------------------------------
    def cancel(self, reason: str = "cancelled") -> None:
        """Request a stop; the running query notices at its next check."""
        self._reason = reason
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def expired(self) -> bool:
        return self._deadline_at is not None and time.monotonic() > self._deadline_at

    @property
    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (None when no deadline is armed)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.monotonic()

    def check(self) -> None:
        """Raise the typed interruption if a stop has been requested."""
        if self._cancelled.is_set():
            raise QueryCancelled(self._reason)
        if self.expired:
            raise DeadlineExpired(self.deadline_seconds)

    def wait(self, seconds: float, interval: float = 0.05) -> None:
        """A control-checked sleep: backoff that still honors cancel/deadline.

        Sleeps ``seconds`` in ``interval``-sized slices, calling
        :meth:`check` between slices so a retry backoff can never outlive
        a cancel request or the deadline.
        """
        end = time.monotonic() + seconds
        while True:
            self.check()
            left = end - time.monotonic()
            if left <= 0:
                return
            if self._cancelled.wait(min(interval, left)):
                self.check()


#: A control that never stops anything — callers may use it instead of None.
NO_CONTROL = ExecutionControl()
