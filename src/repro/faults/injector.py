"""Seeded, deterministic fault injection for the whole serving stack.

Robust systems are only as robust as their failure testing.  This module
is the failure-testing substrate: a registry of *named injection sites*
threaded through the hot paths — process-pool worker task entry, worker
IPC result send, shard TCP connect/read/write, scheduler admission,
catalog eviction — and a declarative, seeded schedule of
:class:`FaultRule`\\ s that decides, purely from per-site hit counters,
exactly when each site misbehaves.  The same
:class:`FaultConfig` therefore reproduces the identical fault sequence
on every run: "crash the worker on its 3rd task" or "drop the shard
connection on the 5th read" are replayable CI assertions, not flaky
hope.

Determinism rules:

* A rule fires on *hit indices* (1-based, counted per site per
  injector), never on wall clock or ambient randomness.
* The only randomness anywhere in the layer — retry backoff jitter —
  is drawn from a :class:`random.Random` seeded with the config's
  ``seed`` (string seeding hashes via SHA-512, stable across processes
  and runs).
* Recovery attempts are first-class: a rule scoped to ``attempt=0``
  (the default) injects only during the initial execution, so retried
  work completes cleanly and tests can pin "crash once, recover,
  finish with identical results".  ``attempt=None`` (spelled ``#*`` in
  the string form) fires on every attempt — the retry-exhaustion case.

Free when off: the resolved injector for "no faults configured" is the
shared :data:`NULL_INJECTOR` singleton whose :meth:`~NullFaultInjector.hit`
is a constant no-op, and every call site guards with ``injector.enabled``
— the default path costs one attribute read per *site*, never per
instruction, and ships zero extra bytes over IPC.

String schedule grammar (the ``BENU_FAULTS`` environment variable and
``FaultConfig.parse``)::

    BENU_FAULTS="worker.task:crash@3,shard.read:error@5x2"

Entries are comma- (or semicolon-) separated.  ``seed=N`` sets the
jitter seed; every other entry is ``site:action`` plus optional
suffixes, in any order:

* ``@N``  — first fire on the Nth hit of the site (default 1);
* ``xK``  — fire at most K times (default 1; consecutive hits unless
  ``/P`` gives a re-fire period);
* ``/P``  — re-fire every P hits after the first;
* ``~S``  — for ``delay``, sleep S seconds per fire (default 0.01);
* ``#A``  — recovery attempt the rule applies to (default 0, the
  initial execution; ``#*`` = every attempt).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "ACTIONS",
    "FaultConfig",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "NULL_INJECTOR",
    "NullFaultInjector",
    "SITES",
    "SITE_CATALOG_EVICT",
    "SITE_SCHEDULER_ADMIT",
    "SITE_SHARD_CONNECT",
    "SITE_SHARD_READ",
    "SITE_SHARD_WRITE",
    "SITE_WORKER_IPC",
    "SITE_WORKER_TASK",
    "get_injector",
    "resolve_faults",
]

# -- the named injection sites ----------------------------------------------
SITE_WORKER_TASK = "worker.task"        #: process-pool worker, task entry
SITE_WORKER_IPC = "worker.ipc_send"     #: worker → parent result send
SITE_SHARD_CONNECT = "shard.connect"    #: shard client TCP connect
SITE_SHARD_READ = "shard.read"          #: shard client response read
SITE_SHARD_WRITE = "shard.write"        #: shard client request write
SITE_SCHEDULER_ADMIT = "scheduler.admit"  #: service admission control
SITE_CATALOG_EVICT = "catalog.evict"    #: graph catalog eviction

#: Every site the stack threads an injector through.
SITES = (
    SITE_WORKER_TASK,
    SITE_WORKER_IPC,
    SITE_SHARD_CONNECT,
    SITE_SHARD_READ,
    SITE_SHARD_WRITE,
    SITE_SCHEDULER_ADMIT,
    SITE_CATALOG_EVICT,
)

#: What a fired rule does: kill the process (pool workers; elsewhere it
#: degrades to ``error``), raise :class:`InjectedFault`, or sleep.
ACTIONS = ("crash", "error", "delay")

#: Environment variable carrying a fault schedule for CI / chaos runs.
FAULTS_ENV = "BENU_FAULTS"


class InjectedFault(ConnectionError):
    """Raised by an ``error`` rule (and by ``crash`` outside a pool worker).

    Subclasses :class:`ConnectionError` (hence :class:`OSError`) so the
    shard transport's existing ``except OSError`` failure paths treat an
    injected drop exactly like a real one.
    """

    code = "fault_injected"

    def __init__(self, site: str, hit: int, action: str = "error") -> None:
        super().__init__(f"injected {action} at {site} (hit {hit})")
        self.site = site
        self.hit = hit
        self.action = action


@dataclass(frozen=True)
class FaultRule:
    """One deterministic misbehavior: *site* does *action* on hit *at*.

    Without ``every``, the rule fires on ``times`` consecutive hits
    starting at ``at``; with ``every`` it re-fires each ``every`` hits
    after ``at``, still capped at ``times`` fires.  ``attempt`` scopes
    the rule to one recovery attempt (0 = the initial execution);
    ``None`` means every attempt.
    """

    site: str
    action: str
    at: int = 1
    every: Optional[int] = None
    times: int = 1
    attempt: Optional[int] = 0
    delay_seconds: float = 0.01

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; options: {ACTIONS}"
            )
        if self.at < 1:
            raise ValueError("fault rules fire on 1-based hit indices")
        if self.every is not None and self.every < 1:
            raise ValueError("re-fire period must be >= 1")
        if self.times < 1:
            raise ValueError("a rule must fire at least once")
        if self.delay_seconds < 0:
            raise ValueError("delay must be non-negative")

    def fires_on(self, hit: int, fired: int) -> bool:
        """Whether the rule fires on this (1-based) hit of its site."""
        if fired >= self.times or hit < self.at:
            return False
        if self.every is not None:
            return (hit - self.at) % self.every == 0
        return hit < self.at + self.times

    def to_spec(self) -> str:
        """The string-grammar form (inverse of :meth:`FaultConfig.parse`)."""
        spec = f"{self.site}:{self.action}@{self.at}"
        if self.every is not None:
            spec += f"/{self.every}"
        if self.times != 1:
            spec += f"x{self.times}"
        if self.action == "delay":
            spec += f"~{self.delay_seconds:g}"
        if self.attempt is None:
            spec += "#*"
        elif self.attempt != 0:
            spec += f"#{self.attempt}"
        return spec


def _parse_rule(entry: str) -> FaultRule:
    head, sep, tail = entry.partition(":")
    if not sep or not head or not tail:
        raise ValueError(
            f"bad fault entry {entry!r}; expected site:action[@N][/P][xK][~S][#A]"
        )
    site = head.strip()
    kwargs: Dict[str, object] = {}
    action = ""
    token = ""
    kind = None  # which suffix the current token belongs to
    _KEYS = {"@": "at", "/": "every", "x": "times", "~": "delay_seconds",
             "#": "attempt"}

    def flush() -> None:
        nonlocal action, token
        if kind is None:
            action = token.strip()
        elif kind == "attempt" and token == "*":
            kwargs["attempt"] = None
        elif kind == "delay_seconds":
            kwargs[kind] = float(token)
        else:
            kwargs[kind] = int(token)
        token = ""

    for ch in tail:
        if ch in _KEYS:
            flush()
            kind = _KEYS[ch]
        else:
            token += ch
    flush()
    return FaultRule(site=site, action=action, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultConfig:
    """A complete, immutable, picklable fault schedule.

    Picklability matters: the process backend ships the config to pool
    workers through the initializer, so worker-side sites replay the
    same schedule the parent resolved.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Build a config from the string grammar (see module docstring).

        >>> cfg = FaultConfig.parse("seed=7; worker.task:crash@3")
        >>> (cfg.seed, cfg.rules[0].site, cfg.rules[0].at)
        (7, 'worker.task', 3)
        """
        seed = 0
        rules: List[FaultRule] = []
        for raw in spec.replace(";", ",").split(","):
            entry = raw.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                seed = int(entry[len("seed="):])
            else:
                rules.append(_parse_rule(entry))
        return cls(seed=seed, rules=tuple(rules))

    def to_spec(self) -> str:
        """Round-trip back to the string grammar."""
        parts = [f"seed={self.seed}"] if self.seed else []
        parts.extend(rule.to_spec() for rule in self.rules)
        return ",".join(parts)

    def rng(self, stream: str) -> random.Random:
        """A deterministic RNG for ``stream`` (stable across processes)."""
        return random.Random(f"benu-faults:{self.seed}:{stream}")


def resolve_faults(
    faults=None, environ=None
) -> Optional[FaultConfig]:
    """An explicit config (or spec string) wins; else ``BENU_FAULTS``."""
    if isinstance(faults, str):
        return FaultConfig.parse(faults)
    if faults is not None:
        return faults
    spec = (environ if environ is not None else os.environ).get(FAULTS_ENV)
    return FaultConfig.parse(spec) if spec else None


class FaultInjector:
    """Counts hits per site and fires the matching rules deterministically.

    ``on_fire(site, action, hit)`` is the observability hook — the
    service wires it to a ``fault_injected`` lifecycle event.  ``crash``
    passed to :meth:`hit` is what a crash rule does *here* (pool workers
    pass ``os._exit``); without one, crash degrades to raising
    :class:`InjectedFault`.

    >>> inj = FaultInjector(FaultConfig.parse("shard.read:error@2"))
    >>> inj.hit("shard.read")
    >>> inj.hit("shard.read")
    Traceback (most recent call last):
        ...
    repro.faults.injector.InjectedFault: injected error at shard.read (hit 2)
    """

    enabled = True

    def __init__(
        self,
        config: FaultConfig,
        attempt: int = 0,
        on_fire: Optional[Callable[[str, str, int], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config
        self.attempt = attempt
        self.on_fire = on_fire
        self._sleep = sleep
        self._hits: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}
        #: Every fire so far, in order: ``(site, action, hit)`` — the
        #: replayable fault sequence the determinism tests compare.
        self.fired_log: List[Tuple[str, str, int]] = []

    @property
    def fired_count(self) -> int:
        return len(self.fired_log)

    def hits(self, site: str) -> int:
        """How many times ``site`` has been hit so far."""
        return self._hits.get(site, 0)

    def hit(
        self, site: str, crash: Optional[Callable[[], None]] = None
    ) -> None:
        """Register one pass through ``site``; misbehave if a rule says so."""
        n = self._hits.get(site, 0) + 1
        self._hits[site] = n
        for i, rule in enumerate(self.config.rules):
            if rule.site != site:
                continue
            if rule.attempt is not None and rule.attempt != self.attempt:
                continue
            if not rule.fires_on(n, self._fired.get(i, 0)):
                continue
            self._fired[i] = self._fired.get(i, 0) + 1
            self.fired_log.append((site, rule.action, n))
            if self.on_fire is not None:
                self.on_fire(site, rule.action, n)
            if rule.action == "delay":
                self._sleep(rule.delay_seconds)
            elif rule.action == "crash" and crash is not None:
                crash()
            else:
                raise InjectedFault(site, n, rule.action)


class NullFaultInjector:
    """Disabled injector: the whole API, none of the work."""

    enabled = False
    attempt = 0
    fired_count = 0
    fired_log: Tuple = ()

    def hits(self, site: str) -> int:
        return 0

    def hit(self, site: str, crash=None) -> None:
        return None


#: The shared disabled injector — the default at every site.
NULL_INJECTOR = NullFaultInjector()


def get_injector(
    faults: Optional[FaultConfig] = None,
    attempt: int = 0,
    on_fire: Optional[Callable[[str, str, int], None]] = None,
    environ=None,
):
    """The injector for ``faults`` (falling back to ``BENU_FAULTS``).

    Returns :data:`NULL_INJECTOR` when nothing is configured, so callers
    can hold the result unconditionally and stay free when off.
    """
    config = resolve_faults(faults, environ=environ)
    if config is None or not config.rules:
        return NULL_INJECTOR
    return FaultInjector(config, attempt=attempt, on_fire=on_fire)
