"""Small reporting helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count ("3.2 MB").

    >>> format_bytes(1536)
    '1.5 KB'
    """
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_count(value: float) -> str:
    """Scientific-ish count formatting matching Table I ("2.9E7").

    Integers below 10_000 in magnitude print verbatim, non-integers keep
    one decimal (never truncated through ``int()``), and anything at or
    above 1e4 switches to scientific notation — signs preserved
    throughout.

    >>> format_count(0)
    '0'
    >>> format_count(123)
    '123'
    >>> format_count(-12)
    '-12'
    >>> format_count(-3.7)
    '-3.7'
    >>> format_count(9999.5)
    '9999.5'
    >>> format_count(29_000_000)
    '2.9E+07'
    >>> format_count(-29_000_000)
    '-2.9E+07'
    >>> format_count(1e4)
    '1.0E+04'
    """
    if value == 0:
        return "0"
    if abs(value) < 10_000:
        if float(value).is_integer():
            return str(int(value))
        return f"{value:.1f}"
    return f"{value:.1E}"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table (benchmark harness output)."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def speedup_series(base_time: float, times: Sequence[float]) -> List[float]:
    """Relative speedups vs ``base_time`` (Fig. 10's y-axis)."""
    return [base_time / t if t > 0 else float("inf") for t in times]
