"""BENU: distributed subgraph enumeration with a backtracking-based framework.

A production-quality reproduction of *BENU: Distributed Subgraph Enumeration
with Backtracking-based Framework* (Wang et al., ICDE 2019).

Quick start::

    from repro import Graph, count_subgraphs, get_pattern

    data = Graph([(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)])
    count_subgraphs(get_pattern("triangle"), data)

See the README for the full API tour and DESIGN.md for the system map.
"""

from .graph import (
    CSRAdjacency,
    Graph,
    get_pattern,
    load_dataset,
    relabel_by_degree_order,
)
from .kernels import KernelStats, intersect_adaptive
from .pattern import PatternGraph
from .plan import (
    GraphStats,
    compile_plan,
    compress_plan,
    generate_best_plan,
    generate_raw_plan,
    optimize,
)
from .engine import (
    BenuConfig,
    BenuResult,
    count_subgraphs,
    enumerate_subgraphs,
    run_benu,
)
from .faults import FaultConfig, InjectedFault
from .telemetry import (
    MetricsRegistry,
    TelemetryConfig,
    TelemetrySnapshot,
    Tracer,
    validate_chrome_trace,
)

__version__ = "1.5.0"

__all__ = [
    "CSRAdjacency",
    "Graph",
    "KernelStats",
    "intersect_adaptive",
    "get_pattern",
    "load_dataset",
    "relabel_by_degree_order",
    "PatternGraph",
    "GraphStats",
    "compile_plan",
    "compress_plan",
    "generate_best_plan",
    "generate_raw_plan",
    "optimize",
    "BenuConfig",
    "BenuResult",
    "count_subgraphs",
    "enumerate_subgraphs",
    "run_benu",
    "FaultConfig",
    "InjectedFault",
    "MetricsRegistry",
    "TelemetryConfig",
    "TelemetrySnapshot",
    "Tracer",
    "validate_chrome_trace",
    "__version__",
]
