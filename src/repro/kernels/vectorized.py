"""numpy-vectorized intersection kernels with measured dispatch crossover.

The pure-Python kernels of :mod:`repro.kernels.intersect` win on the
small adjacency rows that dominate power-law graphs — interpreter
overhead is amortized over a handful of elements and the frozenset
caches intersect at C speed.  On *large* sorted operands (hub rows, big
intermediate candidate sets) the arithmetic itself starts to matter, and
there numpy wins: the CSR layout already stores every row as a flat
int64 buffer, so ``np.frombuffer`` turns an
:class:`~repro.graph.csr.AdjacencyView` into an ``ndarray`` with zero
copying and the whole intersection runs as a few vectorized passes.

Three kernels, mirroring the python trio:

* :func:`np_intersect_merge`  — ``np.intersect1d(assume_unique=True)``,
  the vectorized two-pointer analogue;
* :func:`np_intersect_gallop` — ``searchsorted`` of the smaller operand
  into the larger plus a mask, the vectorized galloping analogue;
* :func:`np_intersect`        — adaptive between the two by the same
  size-ratio rule (:data:`~repro.kernels.intersect.GALLOP_RATIO`).

Bounds (the symmetry-breaking ``v > f_i`` / ``v < f_i`` filters) are
applied as :func:`np_bounds_slice` — two ``searchsorted`` calls and a
slice, never a per-candidate compare — and injectivity exclusions as
O(log n) point removals (:func:`np_exclude`).  Every kernel returns a
**sorted list of Python ints**, element-identical to what the python
kernels produce, so results flow through downstream plan code (and the
cross-backend byte-equivalence matrix) unchanged.

Dispatch crossover
------------------
Vectorization only pays above some operand size: below it, the fixed
cost of numpy call setup loses to the python kernels.  That crossover is
*measured at import time* (:func:`measure_crossover`) on this very
interpreter/BLAS build — typically a few hundred elements — and exposed
as :data:`CROSSOVER`.  ``BENU_VECTOR_CROSSOVER`` overrides it (an
integer size; ``off`` or any negative value disables vectorized dispatch
entirely).  ``CROSSOVER is None`` means "never dispatch" — also the
state when numpy is not installed, so every caller degrades to the
python kernels without a conditional import.

The dispatch decision in :mod:`repro.kernels.intersect` depends only on
operand *types and sizes* plus this module-level constant — never on
mutable cache state — so the python-vs-numpy mix is deterministic for a
given workload and identical across execution backends (the worker
initializer of the process backend re-pins the parent's crossover, so a
pool reproduces the parent's dispatch exactly even under spawn).
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Sequence, Tuple

try:  # numpy is optional: absence simply disables vectorized dispatch
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less CI
    _np = None

__all__ = [
    "CROSSOVER",
    "HAVE_NUMPY",
    "measure_crossover",
    "np_bounds_slice",
    "np_exclude",
    "np_intersect",
    "np_intersect_filtered",
    "np_intersect_gallop",
    "np_intersect_merge",
    "set_crossover",
]

HAVE_NUMPY = _np is not None

#: Same skew threshold as the python adaptive kernel.
_GALLOP_RATIO = 8

#: Fallback when import-time measurement is skipped or unreliable.
DEFAULT_CROSSOVER = 256

#: Environment override: integer size, or "off"/negative to disable.
ENV_CROSSOVER = "BENU_VECTOR_CROSSOVER"


def as_array(op) -> "_np.ndarray":
    """``op`` as an int64 ndarray, zero-copy for buffer-backed operands.

    Accepts :class:`~repro.graph.csr.AdjacencyView` (via its cached
    ``npids()``), ``array('q')``/``memoryview`` (``np.frombuffer``),
    ndarrays (pass-through) and plain sequences (one copy).
    """
    npids = getattr(op, "npids", None)
    if npids is not None:  # AdjacencyView without importing csr here
        return npids()
    if isinstance(op, _np.ndarray):
        return op
    try:
        return _np.frombuffer(op, dtype=_np.int64)
    except TypeError:
        return _np.asarray(op, dtype=_np.int64)


# ----------------------------------------------------------------------
# Base kernels (ndarray in, ndarray out; callers .tolist() at the edge)
# ----------------------------------------------------------------------
def np_intersect_merge(a, b) -> "_np.ndarray":
    """Vectorized merge intersection of two sorted unique int64 arrays.

    >>> import numpy as np  # doctest: +SKIP
    >>> np_intersect_merge(np.array([1, 3, 5, 7]), np.array([2, 3, 7])).tolist()
    ... # doctest: +SKIP
    [3, 7]
    """
    return _np.intersect1d(a, b, assume_unique=True)


def np_intersect_gallop(small, large) -> "_np.ndarray":
    """Vectorized binary-search of ``small``'s elements into ``large``.

    >>> import numpy as np  # doctest: +SKIP
    >>> np_intersect_gallop(np.array([5, 40]), np.arange(0, 100, 2)).tolist()
    ... # doctest: +SKIP
    [40]
    """
    n = len(large)
    if n == 0 or len(small) == 0:
        return small[:0]
    pos = _np.searchsorted(large, small)
    pos[pos == n] = n - 1
    return small[large[pos] == small]


def np_intersect(a, b) -> "_np.ndarray":
    """Merge or gallop, chosen by the python kernels' size-ratio rule."""
    if len(a) > len(b):
        a, b = b, a
    if len(a) * _GALLOP_RATIO <= len(b):
        return np_intersect_gallop(a, b)
    return np_intersect_merge(a, b)


def np_bounds_slice(arr, lo: Optional[int], hi: Optional[int]):
    """Restrict a sorted array to ``lo < v < hi`` — slice arithmetic only."""
    i = int(_np.searchsorted(arr, lo, side="right")) if lo is not None else 0
    j = int(_np.searchsorted(arr, hi, side="left")) if hi is not None else len(arr)
    return arr[i:j]


def np_exclude(arr, exclude: Tuple[int, ...]):
    """Drop the (few) injectivity-excluded points via binary search."""
    n = len(arr)
    if not n:
        return arr
    drop = []
    for e in exclude:
        k = int(_np.searchsorted(arr, e))
        if k < n and arr[k] == e:
            drop.append(k)
    if not drop:
        return arr
    return _np.delete(arr, drop)


def np_intersect_filtered(
    ops: Sequence,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    exclude: Tuple[int, ...] = (),
) -> List[int]:
    """Multi-way filtered intersection, fully vectorized.

    The counterpart of :func:`repro.kernels.intersect.intersect_filtered`
    for all-sorted operands: smallest operand first, bounds as one slice
    of it, each pairwise step adaptive, exclusions applied last.  Returns
    a sorted list of Python ints — element-identical to the python
    kernels.
    """
    arrays = sorted((as_array(op) for op in ops), key=len)
    out = np_bounds_slice(arrays[0], lo, hi)
    for other in arrays[1:]:
        if not len(out):
            break
        out = np_intersect(out, other)
    if exclude:
        out = np_exclude(out, exclude)
    return out.tolist()


# ----------------------------------------------------------------------
# Import-time crossover measurement
# ----------------------------------------------------------------------
def measure_crossover(
    sizes: Tuple[int, ...] = (32, 64, 128, 256, 512, 1024),
    repeats: int = 5,
) -> int:
    """Smallest operand size at which the numpy path beats the python one.

    Times :func:`repro.kernels.intersect.intersect_merge` against
    :func:`np_intersect` (including the ``.tolist()`` the dispatcher
    pays) on half-overlapping sorted operands of each candidate size and
    returns the first size where numpy wins; if it never wins,
    vectorization is left for operands beyond the largest probe.  Total
    measurement cost is a few milliseconds, paid once per process at
    import.
    """
    from .intersect import intersect_merge

    for n in sizes:
        py_a = list(range(0, 2 * n, 2))
        py_b = list(range(n, n + 2 * n, 2))
        np_a = _np.asarray(py_a, dtype=_np.int64)
        np_b = _np.asarray(py_b, dtype=_np.int64)
        best_py = best_np = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            intersect_merge(py_a, py_b)
            best_py = min(best_py, time.perf_counter() - t0)
            t0 = time.perf_counter()
            np_intersect(np_a, np_b).tolist()
            best_np = min(best_np, time.perf_counter() - t0)
        if best_np < best_py:
            return n
    return sizes[-1] * 4


def _compute_crossover() -> Optional[int]:
    if not HAVE_NUMPY:
        return None
    override = os.environ.get(ENV_CROSSOVER)
    if override is not None:
        override = override.strip().lower()
        if override in ("off", "none"):
            return None
        try:
            value = int(override)
        except ValueError:
            value = None
        if value is not None:
            return None if value < 0 else value
    try:
        return measure_crossover()
    except Exception:  # pragma: no cover - measurement must never break import
        return DEFAULT_CROSSOVER


#: Minimum operand size for vectorized dispatch; None = never dispatch.
#: Set by :func:`init_crossover`, which :mod:`repro.kernels.intersect`
#: calls once its python kernels exist (the measurement races them).
CROSSOVER: Optional[int] = None

_calibrated = False


def init_crossover(force: bool = False) -> Optional[int]:
    """Calibrate :data:`CROSSOVER` once per process (idempotent)."""
    global CROSSOVER, _calibrated
    if force or not _calibrated:
        _calibrated = True
        CROSSOVER = _compute_crossover()
    return CROSSOVER


def set_crossover(value: Optional[int]) -> None:
    """Pin the dispatch crossover (process-backend workers mirror the
    parent's value through this, so a pool's dispatch mix is identical to
    the parent's regardless of per-process measurement noise)."""
    global CROSSOVER, _calibrated
    _calibrated = True
    CROSSOVER = value if (value is None or HAVE_NUMPY) else None
