"""Intersection kernels — the INT/TRC hot loop of the CSR backend.

The paper's Table III makes adjacency-set intersection *the* unit of
computation cost; everything here exists to make that one operation cheap
on the packed sorted layout of :mod:`repro.graph.csr`.

Three base kernels, all over ascending-sorted sequences:

* :func:`intersect_merge`   — classic two-pointer merge, O(|A| + |B|);
* :func:`intersect_gallop`  — per-element binary search from the last hit,
  O(|A| log |B|), the winner when |A| ≪ |B|;
* hash probing — iterate the smaller operand through the larger one's
  (lazily cached) frozenset at C speed; the steady-state fast path for
  rows queried repeatedly.

:func:`intersect_adaptive` picks merge vs gallop per call by the size
ratio (``GALLOP_RATIO``).  :func:`intersect_filtered` is what compiled
plans actually call: it reorders multi-way intersections smallest-first,
turns the symmetry-breaking bounds (``v > f_i`` / ``v < f_i``) into
``bisect`` slices on the sorted source operand instead of per-candidate
comparisons, applies injectivity exclusions as O(log n) point removals,
and dispatches each pairwise step to the cheapest kernel.

Large sorted operands additionally dispatch to the numpy kernels of
:mod:`repro.kernels.vectorized` when both sides are CSR row views at
least :data:`repro.kernels.vectorized.CROSSOVER` elements long — a
crossover measured at import time, deterministic per workload (the
decision depends only on operand types and sizes, never on cache state,
so every execution backend reproduces the same dispatch mix).

Every dispatch decision is counted in :data:`STATS` so telemetry can
report which kernel actually served a run (``benu_kernel_calls_total``),
including the python-vs-numpy split (the ``vector`` counter).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..graph.csr import AdjacencyView

__all__ = [
    "GALLOP_RATIO",
    "STATS",
    "KernelStats",
    "ensure_sorted",
    "intersect_adaptive",
    "intersect_count",
    "intersect_filtered",
    "intersect_gallop",
    "intersect_merge",
    "intersect_views",
]

#: Gallop when the larger operand is at least this many times the smaller.
GALLOP_RATIO = 8

_SET_TYPES = (set, frozenset)


@dataclass
class KernelStats:
    """Per-process counts of which kernel served each intersection.

    ``vector`` counts intersections served by the numpy kernels of
    :mod:`repro.kernels.vectorized`; every other field is a python-path
    dispatch, so the python-vs-numpy mix of a run is ``vector`` vs the
    rest.
    """

    merge: int = 0
    gallop: int = 0
    hash: int = 0
    slice: int = 0
    set: int = 0
    vector: int = 0

    FIELDS = ("merge", "gallop", "hash", "slice", "set", "vector")

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.FIELDS}

    def as_tuple(self) -> Tuple[int, ...]:
        return tuple(getattr(self, f) for f in self.FIELDS)

    def total(self) -> int:
        return sum(self.as_tuple())

    def reset(self) -> None:
        for f in self.FIELDS:
            setattr(self, f, 0)

    def delta_since(self, snapshot: Tuple[int, ...]) -> dict:
        return {
            f: now - before
            for f, now, before in zip(self.FIELDS, self.as_tuple(), snapshot)
        }

    def add(self, counts: dict) -> None:
        for f, v in counts.items():
            setattr(self, f, getattr(self, f) + v)

    def record_to(self, registry, **labels) -> None:
        """Mirror the counts into a telemetry registry.

        >>> from repro.telemetry import MetricsRegistry
        >>> reg = MetricsRegistry()
        >>> KernelStats(hash=3, gallop=1).record_to(reg)
        >>> reg.get("benu_kernel_calls_total").value(kernel="hash")
        3
        """
        from ..telemetry.snapshot import M_KERNEL_CALLS

        names = tuple(labels)
        metric = registry.counter(
            M_KERNEL_CALLS,
            "intersections served, by kernel choice",
            ("kernel",) + names,
        )
        for f in self.FIELDS:
            metric.inc(getattr(self, f), kernel=f, **labels)


#: The process-wide ledger compiled plans report into.
STATS = KernelStats()


# ----------------------------------------------------------------------
# Base kernels (pure, sorted-sequence in, sorted list out)
# ----------------------------------------------------------------------
def intersect_merge(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Two-pointer merge intersection of two ascending-sorted sequences.

    >>> intersect_merge([1, 3, 5, 7], [2, 3, 4, 7, 9])
    [3, 7]
    """
    out: List[int] = []
    ap = out.append
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x = a[i]
        y = b[j]
        if x < y:
            i += 1
        elif y < x:
            j += 1
        else:
            ap(x)
            i += 1
            j += 1
    return out


def intersect_gallop(small: Sequence[int], large: Sequence[int]) -> List[int]:
    """Binary-search each element of ``small`` into ``large``.

    The search window's low end advances monotonically (both inputs are
    sorted), so the total work is O(|small| · log |large|) — the right
    kernel when the operand sizes are badly skewed.

    >>> intersect_gallop([5, 40], list(range(0, 100, 2)))
    [40]
    """
    out: List[int] = []
    ap = out.append
    lo, hi = 0, len(large)
    bl = bisect_left
    for x in small:
        lo = bl(large, x, lo, hi)
        if lo == hi:
            break
        if large[lo] == x:
            ap(x)
            lo += 1
    return out


def intersect_adaptive(
    a: Sequence[int], b: Sequence[int], stats: KernelStats = STATS
) -> List[int]:
    """Merge or gallop, chosen per call by the operand size ratio.

    >>> intersect_adaptive([2, 9], list(range(100)))
    [2, 9]
    """
    if len(a) > len(b):
        a, b = b, a
    if len(a) * GALLOP_RATIO <= len(b):
        stats.gallop += 1
        return intersect_gallop(a, b)
    stats.merge += 1
    return intersect_merge(a, b)


# ----------------------------------------------------------------------
# The compiled-plan entry points
# ----------------------------------------------------------------------
def _slice_bounds(op, lo: Optional[int], hi: Optional[int]):
    """Restrict a sorted operand to (lo, hi) exclusive, via bisect."""
    if isinstance(op, AdjacencyView):
        return op.between(lo, hi)
    i = bisect_right(op, lo) if lo is not None else 0
    j = bisect_left(op, hi) if hi is not None else len(op)
    if i == 0 and j == len(op):
        return op
    return op[i:j]


def _probe_form(op):
    """The fastest iterable form of ``op`` for C-level set probing."""
    return op.materialize() if isinstance(op, AdjacencyView) else op


def _hash_form(op):
    """``op`` as a hash set (cached on views, computed for plain lists)."""
    if isinstance(op, _SET_TYPES):
        return op
    if isinstance(op, AdjacencyView):
        return op.fset()
    return frozenset(op)


def _bounds_filter(values: Iterable[int], lo, hi):
    if lo is not None and hi is not None:
        return {v for v in values if lo < v < hi}
    if lo is not None:
        return {v for v in values if v > lo}
    return {v for v in values if v < hi}


def _sorted_contains(seq, x) -> bool:
    i = bisect_left(seq, x)
    return i < len(seq) and seq[i] == x


def _exclude(out, exclude: Tuple[int, ...]):
    """Drop the injectivity-excluded vertices (≤ a few per instruction)."""
    if isinstance(out, _SET_TYPES):
        if out.isdisjoint(exclude):
            return out
        return out.difference(exclude)
    if any(_sorted_contains(out, e) for e in exclude):
        drop = set(exclude)
        return [v for v in out if v not in drop]
    return out


def intersect_filtered(
    ops: Sequence,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    exclude: Tuple[int, ...] = (),
    stats: KernelStats = STATS,
):
    """Multi-way filtered intersection — the generic INT realization.

    ``ops`` may mix sorted operands (:class:`AdjacencyView`, kernel result
    lists/tuples) and hash sets (prior hash-path results, plan constants).
    Operands are reordered smallest-first; bounds are realized by slicing
    a sorted operand whenever one exists.  The result is a sorted sequence
    or a set depending on the chosen kernel — callers only rely on the
    *element multiset*, which is identical either way.
    """
    if len(ops) == 1:
        return _intersect1(ops[0], lo, hi, exclude, stats)
    if len(ops) == 2:
        return _intersect2(ops[0], ops[1], lo, hi, exclude, stats)
    return _intersectn(ops, lo, hi, exclude, stats)


def _intersect1(a, lo, hi, exclude, stats: KernelStats = STATS):
    if isinstance(a, _SET_TYPES):
        stats.set += 1
        out = _bounds_filter(a, lo, hi) if (lo is not None or hi is not None) \
            else a
    else:
        stats.slice += 1
        out = _slice_bounds(a, lo, hi)
    return _exclude(out, exclude) if exclude else out


def _intersect2(a, b, lo, hi, exclude, stats: KernelStats = STATS):
    if len(a) > len(b):
        a, b = b, a
    crossover = _vec.CROSSOVER
    if (
        crossover is not None
        and len(a) >= crossover
        and isinstance(a, AdjacencyView)
        and isinstance(b, AdjacencyView)
    ):
        # Two large sorted row buffers: intersect vectorized, bounds as
        # slice arithmetic.  Size-only dispatch — never cache state — so
        # the mix is deterministic and backend-independent.
        stats.vector += 1
        return _vec.np_intersect_filtered((a, b), lo, hi, exclude)
    bounded = lo is not None or hi is not None
    if not isinstance(a, _SET_TYPES):
        # Sorted smaller operand: bounds become a slice of the source.
        src = _slice_bounds(a, lo, hi) if bounded else _probe_form(a)
        if (
            not isinstance(b, (set, frozenset, AdjacencyView))
            and len(src) * GALLOP_RATIO <= len(b)
        ):
            # Plain sorted sequence with no hash cache to amortize:
            # gallop beats building a throwaway frozenset.
            stats.gallop += 1
            out = intersect_gallop(src, b)
        elif isinstance(b, AdjacencyView) and not b.has_fset() and (
            len(src) * GALLOP_RATIO * GALLOP_RATIO <= len(b)
        ):
            # Extremely skewed vs a cold hub row: probe the raw ids.
            stats.gallop += 1
            out = intersect_gallop(src, b.ids)
        else:
            stats.hash += 1
            out = _hash_form(b).intersection(src)
    elif not isinstance(b, _SET_TYPES):
        # a is a (smaller) hash set, b sorted: slice b, probe a.
        stats.hash += 1
        src = _slice_bounds(b, lo, hi) if bounded else _probe_form(b)
        out = a.intersection(src)
    else:
        stats.set += 1
        out = a & b
        if bounded:
            out = _bounds_filter(out, lo, hi)
    return _exclude(out, exclude) if exclude else out


def _intersectn(ops, lo, hi, exclude, stats: KernelStats = STATS):
    ops = sorted(ops, key=len)  # smallest-first: cheapest source operand
    crossover = _vec.CROSSOVER
    if (
        crossover is not None
        and len(ops[0]) >= crossover
        and all(isinstance(o, AdjacencyView) for o in ops)
    ):
        stats.vector += 1
        return _vec.np_intersect_filtered(ops, lo, hi, exclude)
    src = ops[0]
    bounded = lo is not None or hi is not None
    if not isinstance(src, _SET_TYPES):
        src = _slice_bounds(src, lo, hi) if bounded else _probe_form(src)
        post_filter = False
    else:
        post_filter = bounded
    rest = [_hash_form(o) for o in ops[1:]]
    stats.hash += 1
    out = rest[0].intersection(src, *rest[1:])
    if post_filter:
        out = _bounds_filter(out, lo, hi)
    return _exclude(out, exclude) if exclude else out


def intersect_views(a, b, stats: KernelStats = STATS):
    """Unbounded row ∩ row — the entry behind codegen's inlined INT/TRC sites.

    Small rows intersect through their cached frozensets (C-speed hash
    probing, built once per row per process and reused by every task);
    rows past the vectorized crossover intersect as flat int64 buffers
    without ever building a hash set — the win on cold hub rows, where
    constructing two throwaway frozensets costs more than the
    intersection itself.  Dispatch is by size only, so the python-vs-
    numpy mix is deterministic and identical across execution backends.
    """
    crossover = _vec.CROSSOVER
    if crossover is not None and len(a) >= crossover and len(b) >= crossover:
        stats.vector += 1
        return _vec.np_intersect(a.npids(), b.npids()).tolist()
    stats.hash += 1
    return a.fset() & b.fset()


def ensure_sorted(out):
    """Sort a hash-path result once so later bounds become bisect slices.

    Codegen wraps a producer site with this when static dataflow shows the
    target is re-filtered inside a *deeper* loop — the one-time sort is
    amortized over the consumer's iteration count.  Sorted sequences pass
    through untouched.
    """
    if isinstance(out, _SET_TYPES):
        return sorted(out)
    return out


def intersect_count(
    ops: Sequence,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    exclude: Tuple[int, ...] = (),
    stats: KernelStats = STATS,
) -> int:
    """``len(intersect_filtered(...))`` without building the result.

    The innermost-loop peephole of counting plans: on a sorted operand the
    bounds collapse to two binary searches (O(log n), no allocation); on a
    hash-set operand the filters run as a generator sum — no set build, no
    per-element hashing.
    """
    if len(ops) == 1:
        a = ops[0]
        if not isinstance(a, _SET_TYPES):
            stats.slice += 1
            ids = a.ids if isinstance(a, AdjacencyView) else a
            i = bisect_right(ids, lo) if lo is not None else 0
            j = bisect_left(ids, hi) if hi is not None else len(ids)
            n = j - i
            if n and exclude:
                for e in exclude:
                    k = bisect_left(ids, e, i, j)
                    if k < j and ids[k] == e:
                        n -= 1
            return n
        stats.set += 1
        if exclude:
            if lo is not None and hi is not None:
                return sum(1 for v in a if lo < v < hi and v not in exclude)
            if lo is not None:
                return sum(1 for v in a if v > lo and v not in exclude)
            if hi is not None:
                return sum(1 for v in a if v < hi and v not in exclude)
            return sum(1 for v in a if v not in exclude)
        if lo is not None and hi is not None:
            return sum(1 for v in a if lo < v < hi)
        if lo is not None:
            return sum(1 for v in a if v > lo)
        if hi is not None:
            return sum(1 for v in a if v < hi)
        return len(a)
    return len(intersect_filtered(ops, lo, hi, exclude, stats))


def filter_override(src, override: frozenset):
    """Task splitting: restrict a candidate source to its subtask slice."""
    if isinstance(src, _SET_TYPES):
        return src & override
    return [v for v in src if v in override]


# Imported last: the crossover measurement races the python kernels
# defined above, so it can only run once they exist.
from . import vectorized as _vec  # noqa: E402

_vec.init_crossover()
