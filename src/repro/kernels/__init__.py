"""Hot-loop kernels: adaptive intersections over sorted adjacency arrays."""

from .intersect import (
    GALLOP_RATIO,
    STATS,
    KernelStats,
    ensure_sorted,
    intersect_adaptive,
    intersect_count,
    intersect_filtered,
    intersect_gallop,
    intersect_merge,
)

__all__ = [
    "GALLOP_RATIO",
    "STATS",
    "KernelStats",
    "ensure_sorted",
    "intersect_adaptive",
    "intersect_count",
    "intersect_filtered",
    "intersect_gallop",
    "intersect_merge",
]
