"""Adjacency-set serialization — the byte costs behind communication accounting.

The paper reports cumulative communication in bytes (Table V).  We price
every database answer by the serialized size of the adjacency set it
carries, using the same delta+varint encoding production KV stores use for
posting lists, so cache-capacity numbers (Fig. 8 measures capacity as a
fraction of the data-graph size) are meaningful.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple

from ..graph.graph import Graph


def varint_size(value: int) -> int:
    """Bytes a non-negative int occupies in LEB128 varint encoding."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def encode_adjacency(neighbors: Iterable[int]) -> bytes:
    """Delta+varint encode a sorted adjacency set.

    Layout: varint count, then varint first id, then varint gaps.
    """
    ordered = sorted(neighbors)
    out = bytearray(encode_varint(len(ordered)))
    prev = 0
    for i, v in enumerate(ordered):
        out.extend(encode_varint(v if i == 0 else v - prev))
        prev = v
    return bytes(out)


def decode_adjacency(data: bytes) -> FrozenSet[int]:
    """Inverse of :func:`encode_adjacency`."""
    count, offset = decode_varint(data, 0)
    values: List[int] = []
    prev = 0
    for i in range(count):
        delta, offset = decode_varint(data, offset)
        prev = delta if i == 0 else prev + delta
        values.append(prev)
    return frozenset(values)


def adjacency_size_bytes(neighbors: Iterable[int]) -> int:
    """Serialized size without materializing the encoding."""
    ordered = sorted(neighbors)
    size = varint_size(len(ordered))
    prev = 0
    for i, v in enumerate(ordered):
        size += varint_size(v if i == 0 else v - prev)
        prev = v
    return size


def graph_size_bytes(graph: Graph) -> int:
    """Total serialized size of a data graph's adjacency sets.

    This is the "size of the data graph" that Fig. 8's relative cache
    capacities divide by.
    """
    return sum(
        adjacency_size_bytes(graph.neighbors(v)) + varint_size(v)
        for v in graph.vertices
    )
