"""Storage substrate: distributed KV store, caches, serialization."""

from .cache import CacheStats, DatabaseCache, LRUDatabaseCache, new_triangle_cache
from .policies import (
    POLICIES,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .kvstore import DistributedKVStore, LatencyModel, QueryStats
from .partition import (
    GraphPartition,
    GraphPartitioner,
    PartitionInfo,
    partition_of,
)
from .serialization import (
    adjacency_size_bytes,
    decode_adjacency,
    decode_varint,
    encode_adjacency,
    encode_varint,
    graph_size_bytes,
    varint_size,
)

__all__ = [
    "CacheStats",
    "DatabaseCache",
    "POLICIES",
    "FIFOPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
    "LRUDatabaseCache",
    "new_triangle_cache",
    "DistributedKVStore",
    "LatencyModel",
    "QueryStats",
    "GraphPartition",
    "GraphPartitioner",
    "PartitionInfo",
    "partition_of",
    "adjacency_size_bytes",
    "decode_adjacency",
    "decode_varint",
    "encode_adjacency",
    "encode_varint",
    "graph_size_bytes",
    "varint_size",
]
