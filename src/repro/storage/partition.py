"""First-class hash partitioning of a data graph across shards.

The distributed KV store has always hash-partitioned adjacency rows
across storage nodes (:class:`~repro.storage.kvstore.DistributedKVStore`
``partition_of``); this module promotes that assignment to a shared,
first-class rule the whole sharded serving tier agrees on:

* :func:`partition_of` — the canonical ``key → partition`` hash, used
  identically by KV-store regions, shard ownership and the router;
* :class:`PartitionInfo` — the metadata one shard carries ("I am shard
  *i* of *N*, halo *h*"), JSON round-trippable so it travels in the
  ``register`` op and lives on the catalog entry;
* :class:`GraphPartitioner` — splits a data graph into N shard-local
  :class:`GraphPartition`\\ s.

Ownership vs storage
--------------------
A shard *owns* the vertices the hash rule assigns to it; ownership
partitions the BENU task space (one local search task per owned start
vertex — Algorithm 2 line 4), so N shards running their owned slices
enumerate exactly the single-node match set, disjointly.

What a shard *stores* is a separate knob, because a local search task
rooted at an owned vertex walks adjacency rows of vertices it does not
own (candidate sets intersect the rows of every matched vertex, and for
non-adjacent matching-order pairs candidates range over all of V(G)):

* ``halo_hops=None`` (the serving tier's default) replicates the full
  row set on every shard — exact for every pattern, and the regime the
  paper's shared distributed store provides anyway (each shard is a
  full replica of the HBase stand-in, but runs only its task slice);
* ``halo_hops=k`` stores only the rows of vertices within ``k`` hops of
  the owned set — bounded storage, exact only for plans whose candidate
  computations stay adjacency-driven within ``k`` hops of the start
  vertex (e.g. triangles/cliques at ``k=1``).  Halo partitions must be
  registered with ``relabel=False``: shards relabeling *different*
  subgraphs would disagree on execution-space ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..graph.graph import Graph, Vertex


def partition_of(key: Vertex, num_partitions: int) -> int:
    """The canonical hash assignment of a key to one of N partitions.

    Every layer that partitions by vertex (KV-store regions, shard
    ownership, the router's task-slice accounting) uses this one rule,
    so their assignments can never drift apart.

    >>> [partition_of(v, 3) for v in range(6)]
    [0, 1, 2, 0, 1, 2]
    """
    return hash(key) % num_partitions


@dataclass(frozen=True)
class PartitionInfo:
    """One shard's slot in a partitioned deployment: shard ``index`` of
    ``of``, storing rows out to ``halo_hops`` (None = full replication).

    The owned set is *derived*, never stored: ``owns(v)`` applies
    :func:`partition_of` to execution-space vertex ids, so any two nodes
    holding the same graph under the same info agree on ownership
    without exchanging vertex lists.
    """

    index: int
    of: int
    halo_hops: Optional[int] = None

    def __post_init__(self) -> None:
        if self.of < 1:
            raise ValueError("a partitioned deployment needs at least one shard")
        if not 0 <= self.index < self.of:
            raise ValueError(
                f"shard index {self.index} out of range for {self.of} shards"
            )
        if self.halo_hops is not None and self.halo_hops < 0:
            raise ValueError("halo_hops must be non-negative or None")

    # ------------------------------------------------------------------
    def owns(self, v: Vertex) -> bool:
        return partition_of(v, self.of) == self.index

    def owned_vertices(self, graph: Graph) -> Tuple[Vertex, ...]:
        """This shard's start-vertex slice of ``graph``, in vertex order."""
        return tuple(v for v in graph.vertices if self.owns(v))

    # ------------------------------------------------------------- wire
    def to_dict(self) -> dict:
        d: Dict[str, object] = {"index": self.index, "of": self.of}
        if self.halo_hops is not None:
            d["halo"] = self.halo_hops
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "PartitionInfo":
        try:
            return cls(
                index=int(d["index"]),
                of=int(d["of"]),
                halo_hops=int(d["halo"]) if d.get("halo") is not None else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                'partition metadata must be {"index": i, "of": N, "halo": h?}'
            ) from exc


@dataclass(frozen=True)
class GraphPartition:
    """One shard's slice of a split data graph: metadata + local subgraph.

    ``graph`` holds the rows this shard stores (the full graph under
    ``halo_hops=None``); ``owned`` is the task-space slice.  ``stored``
    counts vertices whose full adjacency row the shard holds.
    """

    info: PartitionInfo
    graph: Graph
    owned: FrozenSet[Vertex]

    @property
    def stored(self) -> int:
        return self.graph.num_vertices

    def describe(self) -> dict:
        return {
            **self.info.to_dict(),
            "owned_vertices": len(self.owned),
            "stored_vertices": self.stored,
            "stored_edges": self.graph.num_edges,
        }


class GraphPartitioner:
    """Splits a data graph into N shard-local partitions.

    >>> from repro.graph.graph import complete_graph
    >>> parts = GraphPartitioner(2).split(complete_graph(4))
    >>> sorted(v for p in parts for v in p.owned)
    [1, 2, 3, 4]
    >>> all(p.graph.num_edges == 6 for p in parts)  # full replication
    True
    """

    def __init__(self, num_shards: int, halo_hops: Optional[int] = None) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if halo_hops is not None and halo_hops < 0:
            raise ValueError("halo_hops must be non-negative or None")
        self.num_shards = num_shards
        self.halo_hops = halo_hops

    # ------------------------------------------------------------------
    def info_for(self, index: int) -> PartitionInfo:
        return PartitionInfo(index=index, of=self.num_shards, halo_hops=self.halo_hops)

    def split(self, graph: Graph) -> List[GraphPartition]:
        """All N partitions of ``graph``; ownership is disjoint and covers V."""
        return [self.partition(graph, i) for i in range(self.num_shards)]

    def partition(self, graph: Graph, index: int) -> GraphPartition:
        """Shard ``index``'s partition of ``graph``."""
        info = self.info_for(index)
        owned = frozenset(info.owned_vertices(graph))
        if self.halo_hops is None:
            return GraphPartition(info=info, graph=graph, owned=owned)
        closure = set(owned)
        frontier = set(owned)
        for _ in range(self.halo_hops):
            frontier = {
                u for v in frontier for u in graph.neighbors(v)
            } - closure
            if not frontier:
                break
            closure |= frontier
        # The shard stores the *full* row of every closure vertex, so a
        # task at an owned start vertex sees exact adjacency (and exact
        # degrees) everywhere within halo_hops of its root.
        edges = {
            (min(v, u), max(v, u))
            for v in closure
            for u in graph.neighbors(v)
        }
        return GraphPartition(info=info, graph=Graph(edges), owned=owned)
