"""Replacement policies for the database cache.

The paper's Section V-A prescribes LRU ("the cache can capture the
intra-task locality via replacement policies like LRU") but leaves the
policy pluggable.  This module provides the classic alternatives so the
choice can be ablated (see ``benchmarks/bench_ablation_cache_policy.py``):

* **LRU** — evict the least-recently-used entry (the paper's choice;
  matches backtracking's revisit-recent-neighborhood locality);
* **FIFO** — evict the oldest entry regardless of use;
* **LFU** — evict the least-frequently-used entry;
* **RANDOM** — evict a (deterministically seeded) random entry.

A policy tracks keys only; the cache owns values and sizes.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, Hashable, Optional


class ReplacementPolicy:
    """Interface: track key touches/inserts, nominate eviction victims."""

    def on_insert(self, key: Hashable) -> None:
        raise NotImplementedError

    def on_hit(self, key: Hashable) -> None:
        raise NotImplementedError

    def on_evict(self, key: Hashable) -> None:
        raise NotImplementedError

    def victim(self) -> Hashable:
        """The key to evict next.  Undefined when empty."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least recently used — the paper's default."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_hit(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def on_evict(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Hashable:
        return next(iter(self._order))


class FIFOPolicy(ReplacementPolicy):
    """First in, first out — ignores reuse entirely."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_hit(self, key: Hashable) -> None:
        pass  # insertion order is never refreshed

    def on_evict(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Hashable:
        return next(iter(self._order))


class LFUPolicy(ReplacementPolicy):
    """Least frequently used, ties broken by insertion order."""

    def __init__(self) -> None:
        self._counts: Dict[Hashable, int] = {}
        self._arrival: Dict[Hashable, int] = {}
        self._clock = 0

    def on_insert(self, key: Hashable) -> None:
        self._clock += 1
        self._counts[key] = 1
        self._arrival[key] = self._clock

    def on_hit(self, key: Hashable) -> None:
        self._counts[key] += 1

    def on_evict(self, key: Hashable) -> None:
        self._counts.pop(key, None)
        self._arrival.pop(key, None)

    def victim(self) -> Hashable:
        return min(self._counts, key=lambda k: (self._counts[k], self._arrival[k]))


class RandomPolicy(ReplacementPolicy):
    """Uniform random eviction (seeded, so runs stay reproducible)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._keys: Dict[Hashable, int] = {}
        self._list: list = []

    def on_insert(self, key: Hashable) -> None:
        self._keys[key] = len(self._list)
        self._list.append(key)

    def on_hit(self, key: Hashable) -> None:
        pass

    def on_evict(self, key: Hashable) -> None:
        idx = self._keys.pop(key, None)
        if idx is None:
            return
        last = self._list.pop()
        if last != key:
            self._list[idx] = last
            self._keys[last] = idx

    def victim(self) -> Hashable:
        return self._list[self._rng.randrange(len(self._list))]


POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "lfu": LFUPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    >>> make_policy("lru").__class__.__name__
    'LRUPolicy'
    """
    try:
        cls = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown replacement policy {name!r}; options: {sorted(POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return cls(seed=seed)
    return cls()
