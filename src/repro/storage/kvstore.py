"""A hash-partitioned distributed key-value store (the HBase stand-in).

BENU stores the data graph's adjacency sets in a distributed database and
queries them on demand (Section III).  This module simulates that database
faithfully for everything the paper measures:

* keys (vertex ids) are hash-partitioned across a configurable number of
  storage nodes, like HBase regions;
* every ``get`` is accounted: query count, bytes transferred (serialized
  adjacency size), and simulated latency (per-query overhead + per-byte
  transfer time on the paper's 1 Gbps Ethernet);
* values are the adjacency frozensets themselves — serialization cost is
  *accounted* rather than paid on every query, keeping the hot loop fast
  while byte numbers stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from ..graph.graph import Graph, Vertex
from .partition import partition_of
from .serialization import adjacency_size_bytes


@dataclass
class QueryStats:
    """Accumulated accounting for one client of the store."""

    queries: int = 0
    bytes_transferred: int = 0
    simulated_seconds: float = 0.0

    def merge(self, other: "QueryStats") -> None:
        self.queries += other.queries
        self.bytes_transferred += other.bytes_transferred
        self.simulated_seconds += other.simulated_seconds

    def copy(self) -> "QueryStats":
        return QueryStats(self.queries, self.bytes_transferred, self.simulated_seconds)

    def record_to(self, registry, **labels) -> None:
        """Mirror this ledger into a telemetry registry (registry-backed view).

        >>> from repro.telemetry import MetricsRegistry
        >>> reg = MetricsRegistry()
        >>> QueryStats(queries=3, bytes_transferred=90).record_to(reg, worker="0")
        >>> reg.counter_total("benu_db_queries_total")
        3
        """
        from ..telemetry.snapshot import M_DB_BYTES, M_DB_QUERIES, M_DB_SIM_SECONDS

        names = tuple(labels)
        registry.counter(
            M_DB_QUERIES, "distributed KV store queries", names
        ).inc(self.queries, **labels)
        registry.counter(
            M_DB_BYTES, "bytes fetched from the distributed KV store", names
        ).inc(self.bytes_transferred, **labels)
        registry.counter(
            M_DB_SIM_SECONDS, "simulated seconds spent on DB round-trips", names
        ).inc(self.simulated_seconds, **labels)


@dataclass(frozen=True)
class LatencyModel:
    """Simulated cost of one database query.

    Defaults approximate the paper's testbed: ~0.5 ms round-trip to a
    distributed store on 1 Gbps Ethernet (≈ 125 MB/s payload bandwidth).
    """

    per_query_seconds: float = 5e-4
    per_byte_seconds: float = 8e-9

    def query_cost(self, num_bytes: int) -> float:
        return self.per_query_seconds + num_bytes * self.per_byte_seconds


class DistributedKVStore:
    """Adjacency sets of a data graph, hash-partitioned over storage nodes.

    The value layout is negotiated at load time: ``backend="frozenset"``
    (the historical layout) stores hash sets priced by their delta+varint
    serialization; ``backend="csr"`` stores sorted
    :class:`~repro.graph.csr.AdjacencyView` rows over the graph's packed
    CSR arrays, priced *exactly* at ``len(view) * 8`` bytes — the wire
    size of a raw int64 posting list.

    >>> from repro.graph.graph import complete_graph
    >>> store = DistributedKVStore.from_graph(complete_graph(3), num_partitions=2)
    >>> sorted(store.get(1))
    [2, 3]
    >>> store.stats.queries
    1
    """

    def __init__(
        self,
        num_partitions: int = 16,
        latency: LatencyModel = LatencyModel(),
        backend: str = "frozenset",
    ) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if backend not in ("frozenset", "csr"):
            raise ValueError(f"unknown adjacency backend {backend!r}")
        self.num_partitions = num_partitions
        self.latency = latency
        self.backend = backend
        self._partitions: list = [dict() for _ in range(num_partitions)]
        self._value_bytes: Dict[Vertex, int] = {}
        self.stats = QueryStats()
        #: The data graph's CSR arrays (csr backend only).
        self.csr = None
        #: Optional telemetry hook called as ``(key, nbytes, cost_seconds)``
        #: on every get; None (the default) keeps the hot path branch-cheap.
        self.on_query = None

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        num_partitions: int = 16,
        latency: LatencyModel = LatencyModel(),
        backend: str = "frozenset",
    ) -> "DistributedKVStore":
        """Load a data graph — the preprocessing step of Algorithm 2 line 1."""
        store = cls(num_partitions, latency, backend=backend)
        if backend == "csr":
            store.csr = graph.csr()
            for v, view in store.csr.items():
                store._partitions[store.partition_of(v)][v] = view
                store._value_bytes[v] = view.nbytes()
        else:
            for v in graph.vertices:
                store.put(v, graph.neighbors(v))
        return store

    def partition_of(self, key: Vertex) -> int:
        # The canonical hash rule shared with shard ownership (see
        # repro.storage.partition) — regions and shards can never drift.
        return partition_of(key, self.num_partitions)

    def put(self, key: Vertex, neighbors: FrozenSet[Vertex]) -> None:
        if self.backend == "csr":
            raise ValueError(
                "csr-backed stores are loaded whole via from_graph(); "
                "per-key puts would desynchronize the packed arrays"
            )
        self._partitions[self.partition_of(key)][key] = frozenset(neighbors)
        self._value_bytes[key] = adjacency_size_bytes(neighbors)

    # ------------------------------------------------------------------
    def get(self, key: Vertex, stats: Optional[QueryStats] = None):
        """Fetch one adjacency set, accounting the query.

        Returns a ``frozenset`` or a sorted ``AdjacencyView`` depending on
        the store's backend.  ``stats`` lets callers (worker machines)
        account to their own ledger; the store-wide ledger is always
        updated too.
        """
        value = self._partitions[self.partition_of(key)].get(key)
        if value is None:
            raise KeyError(f"vertex {key} not stored")
        nbytes = self._value_bytes[key]
        cost = self.latency.query_cost(nbytes)
        self.stats.queries += 1
        self.stats.bytes_transferred += nbytes
        self.stats.simulated_seconds += cost
        if stats is not None:
            stats.queries += 1
            stats.bytes_transferred += nbytes
            stats.simulated_seconds += cost
        if self.on_query is not None:
            self.on_query(key, nbytes, cost)
        return value

    def value_bytes(self, key: Vertex) -> int:
        """Serialized size of one stored adjacency set."""
        return self._value_bytes[key]

    def reset_stats(self) -> None:
        self.stats = QueryStats()

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    def total_bytes(self) -> int:
        """Serialized size of the whole stored graph (Fig. 8 denominator)."""
        return sum(self._value_bytes.values())
