"""The local database cache and the per-thread triangle cache (Section V-A).

Each worker machine runs one :class:`LRUDatabaseCache` shared by all of its
working threads.  It holds adjacency sets fetched from the distributed
store, capacity-bounded in *bytes* (Fig. 8 sweeps capacity as a fraction of
the data-graph size), with LRU replacement capturing the intra-task
locality of the backtracking search and the sharing capturing inter-task
locality around hot high-degree vertices.

The triangle cache (Optimization 3) is just a dict created fresh per local
search task: every key contains the task's start vertex, so entries cannot
help any other task and the dict's lifetime bounds its size by d(start).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional

from ..graph.graph import Vertex
from .kvstore import DistributedKVStore, QueryStats
from .policies import make_policy


@dataclass
class CacheStats:
    """Hit/miss accounting for one database cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served locally (0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions)

    def record_to(self, registry, **labels) -> None:
        """Mirror this accounting into a telemetry registry.

        >>> from repro.telemetry import MetricsRegistry
        >>> reg = MetricsRegistry()
        >>> CacheStats(hits=9, misses=1).record_to(reg, worker="2")
        >>> reg.counter_total("benu_cache_hits_total")
        9
        """
        from ..telemetry.snapshot import (
            M_CACHE_EVICTIONS,
            M_CACHE_HITS,
            M_CACHE_MISSES,
        )

        names = tuple(labels)
        registry.counter(
            M_CACHE_HITS, "adjacency lookups served by the worker cache", names
        ).inc(self.hits, **labels)
        registry.counter(
            M_CACHE_MISSES, "adjacency lookups that went to the store", names
        ).inc(self.misses, **labels)
        registry.counter(
            M_CACHE_EVICTIONS, "cache entries evicted by the policy", names
        ).inc(self.evictions, **labels)


class LRUDatabaseCache:
    """Byte-capacity cache over a :class:`DistributedKVStore`.

    The replacement policy is pluggable (``policy`` = "lru" | "fifo" |
    "lfu" | "random"); LRU is the paper's choice and the default — the
    class keeps its historical name.

    ``capacity_bytes=None`` means unbounded (the paper's default setup
    gives the cache 30 GB, far more than any of our stand-in graphs);
    ``capacity_bytes=0`` disables caching entirely.

    >>> from repro.graph.graph import complete_graph
    >>> store = DistributedKVStore.from_graph(complete_graph(3))
    >>> cache = LRUDatabaseCache(store, capacity_bytes=None)
    >>> _ = cache.get(1); _ = cache.get(1)
    >>> (cache.stats.hits, cache.stats.misses, store.stats.queries)
    (1, 1, 1)
    """

    def __init__(
        self,
        store: DistributedKVStore,
        capacity_bytes: Optional[int] = None,
        query_stats: Optional[QueryStats] = None,
        policy: str = "lru",
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError("capacity must be non-negative or None")
        self.store = store
        self.capacity_bytes = capacity_bytes
        self.query_stats = query_stats if query_stats is not None else QueryStats()
        self.stats = CacheStats()
        self.policy_name = policy
        self._policy = make_policy(policy)
        self._entries: Dict[Vertex, FrozenSet[Vertex]] = {}
        self._entry_bytes = {}
        self._used_bytes = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Vertex) -> FrozenSet[Vertex]:
        """Adjacency set of ``key``: from cache, else from the store."""
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._policy.on_hit(key)
            return entry
        self.stats.misses += 1
        value = self.store.get(key, self.query_stats)
        self._admit(key, value)
        return value

    def _admit(self, key: Vertex, value: FrozenSet[Vertex]) -> None:
        if self.capacity_bytes == 0:
            return
        nbytes = self.store.value_bytes(key)
        if self.capacity_bytes is not None:
            if nbytes > self.capacity_bytes:
                return  # would evict everything and still not fit
            while self._used_bytes + nbytes > self.capacity_bytes:
                victim = self._policy.victim()
                self._policy.on_evict(victim)
                del self._entries[victim]
                self._used_bytes -= self._entry_bytes.pop(victim)
                self.stats.evictions += 1
        self._entries[key] = value
        self._entry_bytes[key] = nbytes
        self._used_bytes += nbytes
        self._policy.on_insert(key)

    def clear(self) -> None:
        self._entries.clear()
        self._entry_bytes.clear()
        self._used_bytes = 0
        self._policy = make_policy(self.policy_name)

    def as_getter(self) -> Callable[[Vertex], FrozenSet[Vertex]]:
        """The ``get_adj`` callable handed to compiled plans."""
        return self.get


class CachePool:
    """One warm database cache per worker slot, reused across queries.

    A one-shot BENU job builds its worker caches cold and throws them
    away; a resident query service wants the opposite — hub adjacency
    sets fetched by one query should serve the next.  The pool owns one
    :class:`LRUDatabaseCache` per simulated worker and hands them to the
    cluster's workers run after run (the worker rebinds the query-stats
    ledger per run, so accounting stays per-query while contents stay
    warm).

    >>> from repro.graph.graph import complete_graph
    >>> store = DistributedKVStore.from_graph(complete_graph(3))
    >>> pool = CachePool(store, num_workers=2)
    >>> len(pool.caches)
    2
    """

    def __init__(
        self,
        store: DistributedKVStore,
        num_workers: int,
        capacity_bytes: Optional[int] = None,
        policy: str = "lru",
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker slot")
        self.store = store
        self.caches = [
            LRUDatabaseCache(store, capacity_bytes=capacity_bytes, policy=policy)
            for _ in range(num_workers)
        ]

    def memory_bytes(self) -> int:
        """Bytes currently held across all pooled caches."""
        return sum(cache.used_bytes for cache in self.caches)

    def clear(self) -> None:
        for cache in self.caches:
            cache.clear()

    def __len__(self) -> int:
        return len(self.caches)


#: Preferred, policy-neutral alias.
DatabaseCache = LRUDatabaseCache


def new_triangle_cache() -> dict:
    """A fresh per-task triangle cache (see module docstring)."""
    return {}
