"""Graphviz exports for plans and their dependency graphs (Fig. 4 style).

Pure-text emitters — no graphviz dependency; feed the output to ``dot``
or any online renderer.  Used by the plan-explorer example and handy when
debugging optimizer passes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .dependency import build_dependency_edges
from .generation import ExecutionPlan
from .instructions import Instruction, InstructionType

#: Node fill colors by instruction type (colorscheme: pastel).
_TYPE_STYLE: Dict[InstructionType, str] = {
    InstructionType.INI: "#c6dbef",
    InstructionType.DBQ: "#fdd0a2",
    InstructionType.INT: "#c7e9c0",
    InstructionType.TRC: "#bcbddc",
    InstructionType.ENU: "#fcbba1",
    InstructionType.RES: "#d9d9d9",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def dependency_graph_dot(plan: ExecutionPlan, title: str = "") -> str:
    """The Fig. 4 dependency graph as Graphviz dot text.

    Nodes are instructions labeled by their target variable (the paper's
    convention); edges are def-use dependencies.
    """
    instructions = plan.instructions
    edges = build_dependency_edges(instructions, predefined=tuple(plan.constants))
    lines: List[str] = ["digraph dependencies {"]
    lines.append('  rankdir="LR";')
    if title:
        lines.append(f'  label="{_escape(title)}";')
    lines.append('  node [shape=box, style=filled, fontname="monospace"];')
    for i, inst in enumerate(instructions):
        color = _TYPE_STYLE[inst.type]
        lines.append(
            f'  n{i} [label="{_escape(inst.target)}", fillcolor="{color}", '
            f'tooltip="{_escape(str(inst))}"];'
        )
    for a, b in sorted(set(edges)):
        lines.append(f"  n{a} -> n{b};")
    lines.append("}")
    return "\n".join(lines)


def plan_dot(plan: ExecutionPlan, title: str = "") -> str:
    """The plan as a straight-line flowchart (one node per instruction)."""
    lines: List[str] = ["digraph plan {"]
    if title:
        lines.append(f'  label="{_escape(title)}";')
    lines.append('  node [shape=box, style=filled, fontname="monospace"];')
    for i, inst in enumerate(plan.instructions):
        color = _TYPE_STYLE[inst.type]
        lines.append(
            f'  n{i} [label="{_escape(str(inst))}", fillcolor="{color}"];'
        )
        if i:
            lines.append(f"  n{i - 1} -> n{i};")
    lines.append("}")
    return "\n".join(lines)
