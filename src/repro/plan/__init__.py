"""Execution plans: generation, optimization, cost model, search, codegen."""

from .codegen import CompiledPlan, TaskCounters, compile_plan, generate_source
from .compression import CompressedCode, compress_plan, expand_code
from .cost import (
    DEFAULT_STATS,
    GraphStats,
    PlanCost,
    estimate_communication_cost,
    estimate_computation_cost,
    estimate_matches,
    estimate_plan_cost,
    order_communication_cost,
)
from .dependency import build_dependency_edges, ranked_topological_sort
from .degree_filter import apply_degree_filter, degree_pools
from .dot import dependency_graph_dot, plan_dot
from .estimators import EmpiricalGraphStats, falling_factorial_moments
from .generation import ExecutionPlan, eliminate_uni_operand, generate_raw_plan
from .instructions import (
    VG,
    Filter,
    FilterKind,
    Instruction,
    InstructionType,
    format_plan,
)
from .optimizer import (
    LEVEL_CSE,
    LEVEL_RAW,
    LEVEL_REORDER,
    LEVEL_TRIANGLE,
    apply_generalized_clique_cache,
    apply_triangle_cache,
    eliminate_common_subexpressions,
    flatten_intersections,
    optimize,
    reorder_instructions,
)
from .search import BestPlanResult, SearchStats, generate_best_plan
from .validate import PlanValidationError, validate_plan

__all__ = [
    "CompiledPlan",
    "TaskCounters",
    "compile_plan",
    "generate_source",
    "CompressedCode",
    "compress_plan",
    "expand_code",
    "DEFAULT_STATS",
    "GraphStats",
    "PlanCost",
    "estimate_communication_cost",
    "estimate_computation_cost",
    "estimate_matches",
    "estimate_plan_cost",
    "order_communication_cost",
    "build_dependency_edges",
    "apply_degree_filter",
    "degree_pools",
    "dependency_graph_dot",
    "plan_dot",
    "EmpiricalGraphStats",
    "falling_factorial_moments",
    "ranked_topological_sort",
    "ExecutionPlan",
    "eliminate_uni_operand",
    "generate_raw_plan",
    "VG",
    "Filter",
    "FilterKind",
    "Instruction",
    "InstructionType",
    "format_plan",
    "LEVEL_CSE",
    "LEVEL_RAW",
    "LEVEL_REORDER",
    "LEVEL_TRIANGLE",
    "apply_generalized_clique_cache",
    "apply_triangle_cache",
    "eliminate_common_subexpressions",
    "flatten_intersections",
    "optimize",
    "reorder_instructions",
    "BestPlanResult",
    "SearchStats",
    "generate_best_plan",
    "PlanValidationError",
    "validate_plan",
]
