"""Execution-plan instructions (Table III of the paper).

A BENU execution plan is a straight-line program over set-valued and
vertex-valued variables.  Variable names follow the paper's notation:

* ``f<i>`` — the data vertex the pattern vertex ``u_i`` is mapped to;
* ``A<i>`` — the adjacency set of ``f<i>`` fetched from the database;
* ``C<i>`` — the refined candidate set for ``u_i``;
* ``T<j>`` — a temporary set (raw candidates, CSE temporaries, ...);
* ``V``    — the whole vertex set V(G) (operand only).

Six instruction types exist (Table III): INI, DBQ, INT, ENU, TRC, RES.
Filtering conditions attach to INT instructions: symmetry-breaking
(``> f_i`` / ``< f_i`` under the total order ≺, realized as integer
comparison after relabeling) and injectivity (``≠ f_i``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: The special operand denoting the full data-vertex set V(G).
VG = "V"


class InstructionType(enum.Enum):
    """The six instruction types of Table III."""

    INI = "INI"
    DBQ = "DBQ"
    INT = "INT"
    ENU = "ENU"
    TRC = "TRC"
    RES = "RES"


#: Instruction-type rank used by Optimization 2 (cheapest first):
#: INI < INT < TRC < DBQ < ENU < RES.
TYPE_RANK: Dict[InstructionType, int] = {
    InstructionType.INI: 0,
    InstructionType.INT: 1,
    InstructionType.TRC: 2,
    InstructionType.DBQ: 3,
    InstructionType.ENU: 4,
    InstructionType.RES: 5,
}


class FilterKind(enum.Enum):
    """Filtering-condition kinds (Section IV-A)."""

    GT = ">"   # symmetry breaking: result vertices must be ≻ the referenced f
    LT = "<"   # symmetry breaking: result vertices must be ≺ the referenced f
    NE = "!="  # injectivity: the referenced f is excluded


@dataclass(frozen=True)
class Filter:
    """One filtering condition, e.g. ``> f3`` or ``≠ f2``."""

    kind: FilterKind
    var: str  # always an f-variable name like "f3"

    def __str__(self) -> str:
        return f"{self.kind.value}{self.var}"


def fvar(i: int) -> str:
    """The match variable for pattern vertex u_i."""
    return f"f{i}"


def avar(i: int) -> str:
    """The adjacency-set variable for f_i."""
    return f"A{i}"


def cvar(i: int) -> str:
    """The refined-candidate-set variable for u_i."""
    return f"C{i}"


def tvar(i: int) -> str:
    """A temporary set variable."""
    return f"T{i}"


def var_index(name: str) -> int:
    """The numeric index of a variable name (``var_index("A12") == 12``)."""
    return int(name[1:])


@dataclass(frozen=True)
class Instruction:
    """One execution instruction ``X := Operation(operands) [| filters]``."""

    target: str
    type: InstructionType
    operands: Tuple[str, ...] = ()
    filters: Tuple[Filter, ...] = ()

    def __post_init__(self) -> None:
        if self.filters and self.type not in (InstructionType.INT,):
            raise ValueError(
                f"filters are only valid on INT instructions, not {self.type}"
            )
        if self.type is InstructionType.TRC:
            # Generalized form: (f_x1, ..., f_xk, S1, S2) — k ≥ 2 key
            # vertices (a clique in P) plus the two sets intersected on a
            # cache miss.  The paper's triangle cache is the k = 2 case.
            if len(self.operands) < 4:
                raise ValueError(
                    "TRC takes operands (f_x1, ..., f_xk, S1, S2) with k >= 2"
                )
            if any(not op.startswith("f") for op in self.operands[:-2]):
                raise ValueError("TRC key operands must be f-variables")
        if self.type is InstructionType.ENU and len(self.operands) != 1:
            raise ValueError("ENU takes exactly one set operand")
        if self.type is InstructionType.DBQ and len(self.operands) != 1:
            raise ValueError("DBQ takes exactly one vertex operand")

    # ------------------------------------------------------------------
    @property
    def used_vars(self) -> Tuple[str, ...]:
        """Every variable read by this instruction (operands + filters)."""
        out = [op for op in self.operands if op != VG and op != "start"]
        out.extend(f.var for f in self.filters)
        return tuple(out)

    def with_operands(self, operands: Sequence[str]) -> "Instruction":
        return replace(self, operands=tuple(operands))

    def with_filters(self, filters: Sequence[Filter]) -> "Instruction":
        return replace(self, filters=tuple(filters))

    def rename(self, mapping: Dict[str, str]) -> "Instruction":
        """Rewrite variable references (and the target) via ``mapping``."""
        return Instruction(
            target=mapping.get(self.target, self.target),
            type=self.type,
            operands=tuple(mapping.get(op, op) for op in self.operands),
            filters=tuple(
                Filter(f.kind, mapping.get(f.var, f.var)) for f in self.filters
            ),
        )

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        op_name = {
            InstructionType.INI: "Init",
            InstructionType.DBQ: "GetAdj",
            InstructionType.INT: "Intersect",
            InstructionType.ENU: "Foreach",
            InstructionType.TRC: "TCache",
            InstructionType.RES: "ReportMatch",
        }[self.type]
        args = ", ".join(self.operands)
        text = f"{self.target} := {op_name}({args})"
        if self.filters:
            text += " | " + ", ".join(str(f) for f in self.filters)
        return text


# ----------------------------------------------------------------------
# Constructors matching Table III
# ----------------------------------------------------------------------
def ini(i: int) -> Instruction:
    """``f_i := Init(start)``."""
    return Instruction(fvar(i), InstructionType.INI, ("start",))


def dbq(i: int) -> Instruction:
    """``A_i := GetAdj(f_i)``."""
    return Instruction(avar(i), InstructionType.DBQ, (fvar(i),))


def intersect(
    target: str, operands: Sequence[str], filters: Iterable[Filter] = ()
) -> Instruction:
    """``X := Intersect(...) [| filters]``."""
    ordered = tuple(sorted(filters, key=lambda f: (f.kind.value, f.var)))
    return Instruction(target, InstructionType.INT, tuple(operands), ordered)


def enu(i: int, source: str) -> Instruction:
    """``f_i := Foreach(source)``."""
    return Instruction(fvar(i), InstructionType.ENU, (source,))


def trc(target: str, fi: str, fj: str, ai: str, aj: str) -> Instruction:
    """``X := TCache(f_i, f_j, A_i, A_j)`` — the paper's triangle cache."""
    return Instruction(target, InstructionType.TRC, (fi, fj, ai, aj))


def kcc(target: str, key_fvars: Sequence[str], s1: str, s2: str) -> Instruction:
    """``X := TCache(f_x1, ..., f_xk, S1, S2)`` — generalized clique cache.

    ``key_fvars`` map a k-clique of pattern vertices; X is the set of data
    vertices completing it to a (k+1)-clique, computed as ``S1 & S2`` on a
    miss (Section IV-B's proposed extension of Optimization 3).
    """
    return Instruction(
        target, InstructionType.TRC, (*key_fvars, s1, s2)
    )


def res(operands: Sequence[str]) -> Instruction:
    """``f := ReportMatch(f_1, ..., f_n)`` (or C_j for compressed vertices)."""
    return Instruction("f", InstructionType.RES, tuple(operands))


def format_plan(instructions: Sequence[Instruction]) -> str:
    """Pretty-print a plan the way Fig. 3 of the paper does."""
    lines = []
    depth = 0
    for idx, inst in enumerate(instructions, start=1):
        indent = "  " * depth
        lines.append(f"{idx:>3}: {indent}{inst}")
        if inst.type is InstructionType.ENU:
            depth += 1
    return "\n".join(lines)
