"""Dependency graphs over execution plans (Optimization 2 support).

Instructions depend on each other through variables: ``I1 → I2`` when I2
reads I1's target in its operands or filtering conditions.  Reordering must
respect these edges; Optimization 2 performs a topological sort that greedily
prefers cheap instruction types (INI < INT < TRC < DBQ < ENU < RES), with
original position breaking ties so the DBQ/ENU backbone keeps the matching
order.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Set, Tuple

from .instructions import TYPE_RANK, Instruction


def build_dependency_edges(
    instructions: Sequence[Instruction],
    predefined: Sequence[str] = (),
) -> List[Tuple[int, int]]:
    """Edges (i, j) meaning instruction i must precede instruction j.

    ``predefined`` names (plan constants) are always available.  Raises
    ``ValueError`` if a variable is used before any definition or defined
    twice (plans are single-assignment).
    """
    known = set(predefined)
    producer: Dict[str, int] = {}
    edges: List[Tuple[int, int]] = []
    for j, inst in enumerate(instructions):
        for var in inst.used_vars:
            if var in known:
                continue
            if var not in producer:
                raise ValueError(
                    f"instruction {j} ({inst}) reads undefined variable {var!r}"
                )
            edges.append((producer[var], j))
        if inst.target in producer:
            raise ValueError(
                f"variable {inst.target!r} defined twice (instruction {j})"
            )
        producer[inst.target] = j
    return edges


def ranked_topological_sort(
    instructions: Sequence[Instruction],
    predefined: Sequence[str] = (),
) -> List[Instruction]:
    """Topologically sort by dependencies, preferring cheap types first.

    Among currently-available instructions the one with the smallest
    (type-rank, original-index) pair runs next.  This hoists INT/TRC
    instructions out of loops (they detect doomed partial matches early)
    and postpones ENU instructions, exactly the ranking of Section IV-B.
    """
    n = len(instructions)
    edges = build_dependency_edges(instructions, predefined)
    successors: List[Set[int]] = [set() for _ in range(n)]
    indegree = [0] * n
    for a, b in edges:
        if b not in successors[a]:
            successors[a].add(b)
            indegree[b] += 1

    heap: List[Tuple[int, int]] = [
        (TYPE_RANK[instructions[i].type], i) for i in range(n) if indegree[i] == 0
    ]
    heapq.heapify(heap)
    result: List[Instruction] = []
    while heap:
        _, i = heapq.heappop(heap)
        result.append(instructions[i])
        for j in successors[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                heapq.heappush(heap, (TYPE_RANK[instructions[j].type], j))
    if len(result) != n:
        raise ValueError("dependency graph has a cycle; plan is malformed")
    return result
