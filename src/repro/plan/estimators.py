"""A degree-aware cardinality estimator (pluggable cost model).

Section IV-C adopts the Erdős–Rényi model of Lai et al. and notes "the
estimation model can be replaced if a more accurate model is proposed".
This module supplies that replacement: a *configuration-model* estimator
driven by the data graph's falling-factorial degree moments.

Under the configuration model, a pattern vertex of pattern-degree k does
not land on a uniformly random data vertex but on one weighted by how many
edge endpoints it can host; the correction per vertex is

    r_k = ⟨ d·(d−1)···(d−k+1) ⟩ / ⟨d⟩^k

(≈ 1 for ER graphs, ≫ 1 under power-law skew).  The estimate becomes

    E[#matches] ≈ (N)_{n'} · ρ^{m'} · Π_v r_{deg_P(v)}

which is exact in expectation for stars (e.g. wedges: N·⟨d(d−1)⟩ ordered)
— exactly the counts the ER model underestimates most on the paper's
power-law data graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..graph.graph import Graph
from .cost import GraphStats

#: Largest pattern degree the moment table covers (patterns are tiny).
MAX_PATTERN_DEGREE = 10


def falling_factorial_moments(graph: Graph, k_max: int = MAX_PATTERN_DEGREE) -> Tuple[float, ...]:
    """``(⟨(d)_0⟩, ⟨(d)_1⟩, ..., ⟨(d)_k_max⟩)`` — averaged falling factorials."""
    n = graph.num_vertices
    if n == 0:
        return tuple(0.0 for _ in range(k_max + 1))
    sums = [0.0] * (k_max + 1)
    for v in graph.vertices:
        d = graph.degree(v)
        term = 1.0
        for k in range(k_max + 1):
            sums[k] += term
            term *= max(0, d - k)
    return tuple(s / n for s in sums)


@dataclass(frozen=True)
class EmpiricalGraphStats(GraphStats):
    """Graph statistics carrying degree moments for the improved model.

    Drop-in replacement for :class:`repro.plan.cost.GraphStats`: pass it to
    ``generate_best_plan`` / the cost estimators and the configuration-model
    formula is used automatically.
    """

    moments: Tuple[float, ...] = field(default=())

    @classmethod
    def of(cls, graph: Graph) -> "EmpiricalGraphStats":
        return cls(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            moments=falling_factorial_moments(graph),
        )

    def degree_correction(self, pattern_degree: int) -> float:
        """r_k for one pattern vertex of degree k."""
        if pattern_degree <= 1:
            return 1.0
        mean_d = self.moments[1] if len(self.moments) > 1 else 0.0
        if mean_d <= 0:
            return 1.0
        k = min(pattern_degree, len(self.moments) - 1)
        return self.moments[k] / (mean_d ** k)

    def estimate_matches(self, pattern: Graph) -> float:
        """Configuration-model match estimate (components multiply)."""
        total = 1.0
        rho = self.edge_probability
        for component in pattern.connected_components():
            sub = pattern.induced_subgraph(component)
            est = 1.0
            for i in range(sub.num_vertices):
                est *= max(0.0, self.num_vertices - i)
            est *= rho ** sub.num_edges
            for u in sub.vertices:
                est *= self.degree_correction(sub.degree(u))
            total *= est
        return total
