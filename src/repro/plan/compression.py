"""VCBC output compression for execution plans (Section IV-B).

Vertex-cover based compression (Qiao et al., PVLDB'17) represents matching
results as *helves* — matches of the induced core P(V_c) on a vertex cover
V_c — plus a *conditional image set* per non-cover vertex.  A BENU plan is
compressed by taking the shortest matching-order prefix that covers every
pattern edge, deleting the ENU instructions of the remaining vertices, and
reporting their candidate sets directly.

Non-cover vertices form an independent set, so a compressed code
``(helve, {C_j})`` expands to full matches by choosing one vertex per C_j
subject to (a) pairwise distinctness and (b) any symmetry-breaking
conditions between non-cover vertices — constraints the per-vertex sets
cannot carry.  :func:`expand_code` re-applies them, making
decompression exact (tests assert compressed+expanded == uncompressed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

from ..graph.graph import Vertex
from .generation import ExecutionPlan, eliminate_uni_operand
from .instructions import (
    Filter,
    Instruction,
    InstructionType,
    cvar,
    fvar,
)


@dataclass(frozen=True)
class CompressedCode:
    """One VCBC code: the helve plus conditional image sets.

    ``slots`` holds, per pattern vertex in sorted order, either a data
    vertex (cover vertex — part of the helve) or a frozenset of data
    vertices (non-cover vertex — its conditional image set).
    """

    pattern_vertices: Tuple[Vertex, ...]
    slots: Tuple[object, ...]

    @property
    def helve(self) -> Tuple[Vertex, ...]:
        return tuple(s for s in self.slots if not isinstance(s, frozenset))

    def image_sets(self) -> Dict[Vertex, FrozenSet[Vertex]]:
        return {
            u: s
            for u, s in zip(self.pattern_vertices, self.slots)
            if isinstance(s, frozenset)
        }

    def match_count(self, conditions: Sequence[Tuple[int, int]] = ()) -> int:
        """Number of full matches this code expands to (exact)."""
        return sum(1 for _ in self.expansions(conditions))

    def expansions(
        self, conditions: Sequence[Tuple[int, int]] = ()
    ) -> Iterator[Tuple[Vertex, ...]]:
        """All full matches encoded, honoring distinctness + conditions.

        ``conditions`` are (position, position) pairs into the sorted
        pattern-vertex tuple meaning slot[lo] < slot[hi].  Non-cover slots
        are few (n − |V_c| ≤ n − 1) so a plain product with leaf checking
        is exact and fast enough.
        """
        set_positions = [
            i for i, s in enumerate(self.slots) if isinstance(s, frozenset)
        ]
        fixed_values = {s for s in self.slots if not isinstance(s, frozenset)}
        current = list(self.slots)

        def backtrack(idx: int) -> Iterator[Tuple[Vertex, ...]]:
            if idx == len(set_positions):
                if all(current[lo] < current[hi] for lo, hi in conditions):
                    yield tuple(current)
                return
            pos = set_positions[idx]
            for v in sorted(self.slots[pos]):
                if v in fixed_values:
                    continue
                if any(current[p] == v for p in set_positions[:idx]):
                    continue
                current[pos] = v
                yield from backtrack(idx + 1)
            current[pos] = self.slots[pos]

        yield from backtrack(0)


def compress_plan(plan: ExecutionPlan) -> ExecutionPlan:
    """Transform an (optimized) plan to emit VCBC-compressed codes.

    Follows the paper: find the shortest matching-order prefix forming a
    vertex cover; for every later vertex u_j delete its ENU, drop ``f_j``
    from other instructions' filters, and report ``C_j`` in RES.
    """
    if plan.compressed:
        raise ValueError("plan is already compressed")
    k = plan.pattern.cover_prefix(plan.order)
    cover = set(plan.order[:k])
    dropped = tuple(u for u in plan.order[k:])
    if not dropped:
        return ExecutionPlan(
            pattern=plan.pattern,
            order=plan.order,
            instructions=list(plan.instructions),
            compressed=True,
            compressed_vertices=(),
            constants=dict(plan.constants),
        )
    dropped_fvars = {fvar(u) for u in dropped}
    # The set variable each dropped vertex enumerates (usually C_j, but
    # uni-operand elimination may have renamed it to a T or A variable).
    image_var: Dict[str, str] = {}
    for inst in plan.instructions:
        if inst.type is InstructionType.ENU and inst.target in dropped_fvars:
            image_var[inst.target] = inst.operands[0]

    out: List[Instruction] = []
    for inst in plan.instructions:
        if inst.type is InstructionType.ENU and inst.target in dropped_fvars:
            continue
        if inst.type is InstructionType.DBQ and inst.operands[0] in dropped_fvars:
            # Cannot happen for a true cover prefix (no later neighbors),
            # but guard against malformed input.
            raise ValueError(f"non-cover vertex has a DBQ instruction: {inst}")
        if inst.type is InstructionType.RES:
            operands = tuple(
                image_var[fvar(u)] if fvar(u) in dropped_fvars else fvar(u)
                for u in plan.pattern.vertices
            )
            out.append(inst.with_operands(operands))
            continue
        if any(f.var in dropped_fvars for f in inst.filters):
            kept = tuple(f for f in inst.filters if f.var not in dropped_fvars)
            inst = inst.with_filters(kept)
        out.append(inst)

    compressed = ExecutionPlan(
        pattern=plan.pattern,
        order=plan.order,
        instructions=out,
        compressed=True,
        compressed_vertices=dropped,
        constants=dict(plan.constants),
    )
    eliminate_uni_operand(compressed)
    return compressed


def expand_code(
    plan: ExecutionPlan, code_slots: Sequence[object]
) -> Iterator[Tuple[Vertex, ...]]:
    """Expand one compressed code into the full matches it encodes.

    Re-applies the constraints compression dropped: pairwise distinctness
    among non-cover assignments (vs each other and the helve) and
    symmetry-breaking conditions involving at least one non-cover vertex.
    """
    vertices = plan.pattern.vertices
    pos_of = {u: i for i, u in enumerate(vertices)}
    conditions = [
        (pos_of[lo], pos_of[hi])
        for lo, hi in plan.pattern.symmetry_conditions
        if lo in plan.compressed_vertices or hi in plan.compressed_vertices
    ]
    code = CompressedCode(vertices, tuple(code_slots))
    yield from code.expansions(conditions)


def expected_match_count(plan: ExecutionPlan, codes: Sequence[Sequence[object]]) -> int:
    """Total full matches across compressed codes (used by tests/benches)."""
    return sum(
        sum(1 for _ in expand_code(plan, slots)) for slots in codes
    )
