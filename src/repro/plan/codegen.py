"""Compile execution plans to Python closures.

The paper notes a concrete execution plan "can be converted to the actual
code easily" (Section III-B) — this module does exactly that.  Each plan
becomes one generated Python function of nested ``for`` loops over
``set.intersection`` results, which is the only way a pure-Python
reproduction gets a usable hot loop (every set operation runs in C).

Two compilation modes:

* ``count``   — the function returns how many RES executions happened
  (match count for uncompressed plans, code count for compressed ones);
  an innermost-loop peephole turns ``for f in C: n += 1`` into
  ``n += len(C)``.
* ``collect`` — every result is passed to an ``emit`` callback as a tuple
  indexed by sorted pattern vertex (compressed set slots are frozen).

With ``instrument=True`` (default) the function counts INT/TRC/DBQ/ENU
executions and triangle-cache misses — the quantities the paper's cost
model and experiments are defined over.  Empty intersection results
short-circuit the current branch, the backtracking early-stop of
Section III-A.
"""

from __future__ import annotations

import io
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .generation import ExecutionPlan
from .instructions import (
    VG,
    Filter,
    FilterKind,
    Instruction,
    InstructionType,
    fvar,
)

#: Per-task execution counters, in the order the generated tuple returns.
COUNTER_FIELDS = (
    "int_ops",      # INT executions (computation cost unit)
    "trc_ops",      # TRC executions
    "trc_misses",   # TRC executions that had to compute the intersection
    "dbq_ops",      # DBQ executions (communication cost unit)
    "enu_steps",    # total ENU loop iterations
    "results",      # RES executions
)


@dataclass(frozen=True)
class TaskCounters:
    """Counters from one local search task (all zero when uninstrumented)."""

    int_ops: int = 0
    trc_ops: int = 0
    trc_misses: int = 0
    dbq_ops: int = 0
    enu_steps: int = 0
    results: int = 0

    def __add__(self, other: "TaskCounters") -> "TaskCounters":
        return TaskCounters(
            *(getattr(self, f) + getattr(other, f) for f in COUNTER_FIELDS)
        )

    @property
    def trc_hits(self) -> int:
        return self.trc_ops - self.trc_misses

    @classmethod
    def from_tuple(cls, values: Sequence[int]) -> "TaskCounters":
        return cls(*values)

    def record_to(self, registry, **labels) -> None:
        """Mirror these counters into a telemetry registry.

        Per-type executions land in ``benu_instructions_total`` under the
        ``instr`` label (INT/TRC/DBQ/ENU/RES), triangle-cache misses in
        their own counter — exactly the quantities the paper's cost model
        (Section IV-C) sums.

        >>> from repro.telemetry import MetricsRegistry
        >>> reg = MetricsRegistry()
        >>> TaskCounters(int_ops=5, results=2).record_to(reg, worker="0")
        >>> reg.get("benu_instructions_total").value(instr="INT", worker="0")
        5
        """
        from ..telemetry.snapshot import M_INSTRUCTIONS, M_TRC_MISSES

        names = tuple(labels)
        instr = registry.counter(
            M_INSTRUCTIONS,
            "instruction executions by type (Table III semantics)",
            ("instr",) + names,
        )
        for instr_name, value in (
            ("INT", self.int_ops),
            ("TRC", self.trc_ops),
            ("DBQ", self.dbq_ops),
            ("ENU", self.enu_steps),
            ("RES", self.results),
        ):
            instr.inc(value, instr=instr_name, **labels)
        registry.counter(
            M_TRC_MISSES, "triangle-cache lookups that computed the result", names
        ).inc(self.trc_misses, **labels)


@dataclass
class CompiledPlan:
    """A plan compiled to a callable, plus its generated source."""

    plan: ExecutionPlan
    mode: str
    instrumented: bool
    source: str
    _function: Callable
    #: True when sampling profiling probes were compiled in.
    profiled: bool = False
    #: Adjacency layout the generated code expects ("frozenset" | "csr").
    backend: str = "frozenset"

    def run(
        self,
        start: int,
        get_adj: Callable[[int], FrozenSet[int]],
        vset: Sequence[int] = (),
        emit: Optional[Callable] = None,
        tcache: Optional[dict] = None,
        candidate_override: Optional[FrozenSet[int]] = None,
    ) -> TaskCounters:
        """Execute one local search task rooted at ``start``.

        ``candidate_override`` replaces the candidate set of the *second*
        matching-order vertex — the hook task splitting (Section V-B) uses
        to hand each subtask a slice of C_{k2}.
        """
        if tcache is None:
            tcache = {}
        raw = self._function(
            start, get_adj, vset, emit, tcache, candidate_override
        )
        return TaskCounters.from_tuple(raw)


def _filter_expr(var: str, filters: Sequence[Filter]) -> str:
    """The comprehension condition realizing the filtering conditions."""
    parts = []
    for f in filters:
        if f.kind is FilterKind.GT:
            parts.append(f"{var} > {f.var}")
        elif f.kind is FilterKind.LT:
            parts.append(f"{var} < {f.var}")
        else:
            parts.append(f"{var} != {f.var}")
    return " and ".join(parts)


def _filter_bounds(filters: Sequence[Filter]) -> Tuple[str, str, str]:
    """Compile filtering conditions to kernel arguments ``(lo, hi, exclude)``.

    Symmetry-breaking conditions reference loop scalars, so the strict
    bounds fold into one lower bound (the max of the ``>`` references) and
    one upper bound (the min of the ``<`` references); injectivity
    references become a point-exclusion tuple.
    """
    gts = [f.var for f in filters if f.kind is FilterKind.GT]
    lts = [f.var for f in filters if f.kind is FilterKind.LT]
    nes = [f.var for f in filters if f.kind is FilterKind.NE]
    lo = "None" if not gts else (
        gts[0] if len(gts) == 1 else f"max({', '.join(gts)})"
    )
    hi = "None" if not lts else (
        lts[0] if len(lts) == 1 else f"min({', '.join(lts)})"
    )
    exclude = "()" if not nes else f"({', '.join(nes)},)"
    return lo, hi, exclude


def _operand_expr(op: str) -> str:
    return "vset" if op == VG else op


class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self._buf = io.StringIO()
        self.depth = 0

    def line(self, text: str) -> None:
        self._buf.write("    " * self.depth + text + "\n")

    def source(self) -> str:
        return self._buf.getvalue()


def generate_source(
    plan: ExecutionPlan,
    mode: str = "count",
    instrument: bool = True,
    function_name: str = "_benu_task",
    profile: bool = False,
    backend: str = "frozenset",
) -> str:
    """Generate the Python source for one plan (see module docstring).

    With ``profile=True`` every DBQ/INT/TRC site is emitted twice behind a
    sampling gate (``_prof_tick``): the gated branch wall-times the
    instruction and reports it via ``_prof_rec``, the other branch is the
    plain instruction.  Without it the source is byte-identical to before
    profiling existed, so the default path pays zero overhead.

    With ``backend="csr"`` every INT/TRC site calls the adaptive
    intersection kernels of :mod:`repro.kernels.intersect` instead of
    ``&``: multi-way intersections are reordered smallest-first at
    dispatch time and the symmetry-breaking filters compile to bisect
    bounds (``lo``/``hi``/``exclude`` kernel arguments) rather than
    per-candidate comparisons.  ``get_adj`` must then serve sorted
    :class:`~repro.graph.csr.AdjacencyView` rows.
    """
    if mode not in ("count", "collect"):
        raise ValueError(f"mode must be 'count' or 'collect', got {mode!r}")
    if backend not in ("frozenset", "csr"):
        raise ValueError(f"unknown adjacency backend {backend!r}")
    if not plan.defined_before_use():
        raise ValueError("plan uses variables before definition")
    csr = backend == "csr"

    instructions = plan.instructions
    out = _Emitter()
    out.line(
        f"def {function_name}(start, get_adj, vset, emit, tcache, c2_override):"
    )
    out.depth += 1
    if instrument:
        out.line("n_int = 0; n_trc = 0; n_trc_miss = 0; n_dbq = 0")
    out.line("n_enu = 0; n_res = 0")
    counters = (
        "(n_int, n_trc, n_trc_miss, n_dbq, n_enu, n_res)"
        if instrument
        else "(0, 0, 0, 0, n_enu, n_res)"
    )

    # The ENU of the second matching-order vertex accepts the task-splitting
    # override of its candidate set.
    second_fvar = fvar(plan.order[1]) if len(plan.order) > 1 else None

    def early_exit(var: str) -> None:
        # Inside a loop a doomed branch skips to the next candidate; at the
        # top level the whole task is finished.
        if out.depth > 1:
            out.line(f"if not {var}: continue")
        else:
            out.line(f"if not {var}: return {counters}")

    def profiled(label: str, body: Callable[[], None]) -> None:
        # Emit an instruction site, optionally behind the sampling gate.
        if not profile:
            body()
            return
        out.line("if _prof_tick():")
        out.depth += 1
        out.line("_t0 = _prof_now()")
        body()
        out.line(f"_prof_rec({label!r}, _prof_now() - _t0)")
        out.depth -= 1
        out.line("else:")
        out.depth += 1
        body()
        out.depth -= 1

    last_enu_index = max(
        (i for i, inst in enumerate(instructions) if inst.type is InstructionType.ENU),
        default=-1,
    )

    # -- csr static dataflow -------------------------------------------
    # A producer (INT/TRC) whose target is bounds-filtered by a
    # single-operand INT in a *deeper* loop emits sorted output: the
    # one-time sort is amortized over the consumer loop's iterations,
    # turning its per-iteration filters into bisect slices/counts.
    sorted_targets: set = set()
    view_names: set = set()
    known_sorted: set = set()
    if csr:
        view_names = {
            other.target
            for other in instructions
            if other.type is InstructionType.DBQ
        }
        depth_of = {}
        d = 0
        for i, other in enumerate(instructions):
            depth_of[i] = d
            if other.type is InstructionType.ENU:
                d += 1
        producer_at = {
            other.target: i
            for i, other in enumerate(instructions)
            if other.type in (InstructionType.INT, InstructionType.TRC)
        }
        for i, other in enumerate(instructions):
            if (
                other.type is InstructionType.INT
                and len(other.operands) == 1
                and other.filters
            ):
                p = producer_at.get(other.operands[0])
                if p is not None and depth_of[i] > depth_of[p]:
                    sorted_targets.add(other.operands[0])
        known_sorted = view_names | sorted_targets

    for idx, inst in enumerate(instructions):
        if inst.type is InstructionType.INI:
            out.line(f"{inst.target} = start")

        elif inst.type is InstructionType.DBQ:
            def dbq_body(inst=inst):
                out.line(f"{inst.target} = get_adj({inst.operands[0]})")
                if instrument:
                    out.line("n_dbq += 1")

            profiled("DBQ", dbq_body)

        elif inst.type is InstructionType.INT:
            # Peephole (csr counting): an INT that only feeds the innermost
            # count-collapsed ENU never needs its candidate set built — the
            # count kernel returns the cardinality straight from bisect
            # bounds (sorted operand) or a generator sum (hash set).
            nxt = instructions[idx + 1] if idx + 1 < len(instructions) else None
            fused_count = (
                csr
                and mode == "count"
                and not profile
                and nxt is not None
                and nxt.type is InstructionType.ENU
                and idx + 1 == last_enu_index
                and nxt.operands[0] == inst.target
                and nxt.target != second_fvar
                and all(
                    later.type is InstructionType.RES
                    for later in instructions[idx + 2 :]
                )
            )
            if fused_count:
                ops = [_operand_expr(o) for o in inst.operands]
                lo, hi, excl = _filter_bounds(inst.filters)
                src = ops[0]
                if (
                    len(ops) == 1
                    and excl == "()"
                    and inst.operands[0] in known_sorted
                ):
                    # Fully inline: the operand is statically sorted, so
                    # the count is pure bisect arithmetic — no kernel
                    # dispatch, no result allocation.
                    seq = (
                        f"{src}.ids"
                        if inst.operands[0] in view_names
                        else src
                    )
                    if lo != "None" and hi != "None":
                        expr = f"max(0, _bl({seq}, {hi}) - _br({seq}, {lo}))"
                    elif lo != "None":
                        expr = f"len({seq}) - _br({seq}, {lo})"
                    elif hi != "None":
                        expr = f"_bl({seq}, {hi})"
                    else:
                        expr = f"len({seq})"
                    out.line(f"_c = {expr}")
                else:
                    out.line(
                        f"_c = _ikc(({', '.join(ops)},), {lo}, {hi}, {excl})"
                    )
                if instrument:
                    out.line("n_int += 1")
                out.line("n_enu += _c")
                out.line("n_res += _c")
                break

            def int_body(inst=inst):
                ops = [_operand_expr(o) for o in inst.operands]
                if csr:
                    if len(ops) == 1 and not inst.filters:
                        out.line(f"{inst.target} = {ops[0]}")
                    else:
                        lo, hi, excl = _filter_bounds(inst.filters)
                        names = [o for o in inst.operands]
                        if (
                            len(ops) == 1
                            and excl == "()"
                            and names[0] in view_names
                        ):
                            # Statically a sorted row view: bounds are one
                            # between() slice, no kernel dispatch.
                            call = f"{ops[0]}.between({lo}, {hi})"
                        elif len(ops) == 1:
                            call = f"_ik1({ops[0]}, {lo}, {hi}, {excl})"
                        elif (
                            len(ops) == 2
                            and excl == "()"
                            and lo == "None"
                            and hi == "None"
                            and all(n in view_names for n in names)
                        ):
                            # Two fresh rows: the view-pair kernel — hash
                            # intersection over the rows' cached frozensets
                            # (built once per row per process) below the
                            # vectorized crossover, numpy over the raw
                            # int64 buffers above it.
                            call = f"_ikv({ops[0]}, {ops[1]})"
                        elif (
                            len(ops) == 2
                            and excl == "()"
                            and lo == "None"
                            and hi == "None"
                            and (names[0] in view_names or names[1] in view_names)
                        ):
                            # Row ∩ prior (smaller) result: probe the row's
                            # hash cache, iterating the small operand.
                            view, small = (
                                (ops[1], ops[0])
                                if names[1] in view_names
                                else (ops[0], ops[1])
                            )
                            call = f"{view}.fset().intersection({small})"
                        elif len(ops) == 2:
                            call = (
                                f"_ik2({ops[0]}, {ops[1]}, {lo}, {hi}, {excl})"
                            )
                        else:
                            call = (
                                f"_ikn(({', '.join(ops)}), {lo}, {hi}, {excl})"
                            )
                        if inst.target in sorted_targets:
                            call = f"_srt({call})"
                        out.line(f"{inst.target} = {call}")
                elif inst.filters:
                    cond = _filter_expr("v", inst.filters)
                    src = ops[0] if len(ops) == 1 else "(" + " & ".join(ops) + ")"
                    out.line(f"{inst.target} = {{v for v in {src} if {cond}}}")
                else:
                    if len(ops) == 1:
                        out.line(f"{inst.target} = {ops[0]}")
                    else:
                        out.line(f"{inst.target} = " + " & ".join(ops))
                if instrument:
                    out.line("n_int += 1")

            profiled("INT", int_body)
            early_exit(inst.target)

        elif inst.type is InstructionType.TRC:
            def trc_body(inst=inst):
                keys = inst.operands[:-2]
                ai, aj = inst.operands[-2:]
                if len(keys) == 2:
                    fi, fj = keys
                    out.line(f"_k = ({fi}, {fj}) if {fi} < {fj} else ({fj}, {fi})")
                else:
                    out.line(f"_k = tuple(sorted(({', '.join(keys)})))")
                out.line(f"{inst.target} = tcache.get(_k)")
                out.line(f"if {inst.target} is None:")
                out.depth += 1
                if csr:
                    if ai in view_names and aj in view_names:
                        call = f"_ikv({_operand_expr(ai)}, {_operand_expr(aj)})"
                    else:
                        call = f"_ik2({ai}, {aj}, None, None, ())"
                    if inst.target in sorted_targets:
                        call = f"_srt({call})"
                    out.line(f"{inst.target} = {call}")
                else:
                    out.line(f"{inst.target} = {ai} & {aj}")
                out.line(f"tcache[_k] = {inst.target}")
                if instrument:
                    out.line("n_trc_miss += 1")
                out.depth -= 1
                if instrument:
                    out.line("n_trc += 1")

            profiled("TRC", trc_body)
            early_exit(inst.target)

        elif inst.type is InstructionType.ENU:
            source_var = _operand_expr(inst.operands[0])
            if inst.target == second_fvar:
                # Task-splitting hook: subtasks enumerate a slice of C_{k2}.
                # A fresh name keeps the original set intact for later reads.
                restrict = (
                    f"_ovr({source_var}, c2_override)"
                    if csr
                    else f"({source_var} & c2_override)"
                )
                out.line(
                    f"_c2 = {source_var} if c2_override is None "
                    f"else {restrict}"
                )
                source_var = "_c2"
            # Peephole: an innermost loop whose body is just counting RES
            # collapses to a len().
            is_innermost_count = (
                mode == "count"
                and idx == last_enu_index
                and all(
                    nxt.type is InstructionType.RES
                    for nxt in instructions[idx + 1 :]
                )
            )
            out.line(f"n_enu += len({source_var})")
            if is_innermost_count:
                out.line(f"n_res += len({source_var})")
                break
            out.line(f"for {inst.target} in {source_var}:")
            out.depth += 1

        elif inst.type is InstructionType.RES:
            if mode == "count":
                out.line("n_res += 1")
            else:
                set_vars = {
                    # Compressed vertices report their candidate set.
                    op
                    for u, op in zip(plan.pattern.vertices, inst.operands)
                    if u in plan.compressed_vertices
                }
                slots = [
                    f"frozenset({op})" if op in set_vars else op
                    for op in inst.operands
                ]
                out.line(f"emit(({', '.join(slots)}))")
                out.line("n_res += 1")
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unknown instruction type {inst.type}")

    out.depth = 1
    out.line(f"return {counters}")
    return out.source()


def compile_plan(
    plan: ExecutionPlan,
    mode: str = "count",
    instrument: bool = True,
    profiler=None,
    backend: str = "frozenset",
) -> CompiledPlan:
    """Compile a plan into an executable :class:`CompiledPlan`.

    ``profiler`` (a :class:`repro.telemetry.SamplingProfiler`) compiles
    sampling probes into every DBQ/INT/TRC site; None (the default)
    generates exactly the unprofiled source.

    ``backend="csr"`` generates kernel-calling INT/TRC sites (see
    :func:`generate_source`); ``get_adj`` must then serve sorted
    adjacency views, e.g. from a csr-backed store.

    >>> from repro.graph.patterns import TRIANGLE
    >>> from repro.graph.graph import complete_graph
    >>> from repro.pattern.pattern_graph import PatternGraph
    >>> from repro.plan.generation import generate_raw_plan
    >>> plan = generate_raw_plan(PatternGraph(TRIANGLE), [1, 2, 3])
    >>> compiled = compile_plan(plan)
    >>> g = complete_graph(4, offset=0)
    >>> total = sum(
    ...     compiled.run(v, g.neighbors).results for v in g.vertices
    ... )
    >>> total  # 4 triangles in K4, symmetry breaking dedups automorphisms
    4
    """
    source = generate_source(
        plan,
        mode=mode,
        instrument=instrument,
        profile=profiler is not None,
        backend=backend,
    )
    namespace: Dict[str, object] = dict(plan.constants)
    if profiler is not None:
        namespace["_prof_tick"] = profiler.should_sample
        namespace["_prof_rec"] = profiler.record
        namespace["_prof_now"] = profiler.clock
    if backend == "csr":
        from ..kernels.intersect import (
            _intersect1,
            _intersect2,
            _intersectn,
            ensure_sorted,
            filter_override,
            intersect_count,
            intersect_views,
        )

        namespace["_ik1"] = _intersect1
        namespace["_ik2"] = _intersect2
        namespace["_ikn"] = _intersectn
        namespace["_ikc"] = intersect_count
        namespace["_ikv"] = intersect_views
        namespace["_srt"] = ensure_sorted
        namespace["_ovr"] = filter_override
        namespace["_bl"] = bisect_left
        namespace["_br"] = bisect_right
    code = compile(source, f"<benu-plan:{plan.pattern.name}>", "exec")
    exec(code, namespace)  # noqa: S102 - trusted generated code
    function = namespace["_benu_task"]
    return CompiledPlan(
        plan=plan,
        mode=mode,
        instrumented=instrument,
        source=source,
        _function=function,
        profiled=profiler is not None,
        backend=backend,
    )
