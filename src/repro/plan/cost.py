"""Cost estimation for execution plans (Section IV-C).

The execution cost of a plan splits into:

* **computation cost** — total executions of INT/TRC instructions, and
* **communication cost** — total executions of DBQ instructions.

Execution counts hinge on how many matches each partial pattern graph P_i
has in the data graph.  Following the paper we adopt the random-graph
cardinality model of Lai et al. (PVLDB'16 §5.1): under an Erdős–Rényi
assumption with edge probability ρ = 2M / (N(N−1)), a connected pattern
with n' vertices and m' edges has

    E[#matches] = N · (N−1) ··· (N−n'+1) · ρ^{m'}

(the count of *matches*, i.e. injective homomorphisms, not deduplicated
subgraphs).  Disconnected partial patterns multiply their components'
estimates, as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from ..graph.graph import Graph, Vertex
from .generation import ExecutionPlan
from .instructions import InstructionType


@dataclass(frozen=True)
class GraphStats:
    """Data-graph statistics the cardinality model needs."""

    num_vertices: int
    num_edges: int

    @classmethod
    def of(cls, graph: Graph) -> "GraphStats":
        return cls(graph.num_vertices, graph.num_edges)

    @property
    def edge_probability(self) -> float:
        n = self.num_vertices
        if n < 2:
            return 0.0
        return min(1.0, 2.0 * self.num_edges / (n * (n - 1)))


#: Default statistics used when plan generation runs without a data graph
#: (Exp-1 evaluates plan generation alone); sized like a mid-range Table I
#: graph so cost trade-offs are realistic.
DEFAULT_STATS = GraphStats(num_vertices=1_000_000, num_edges=10_000_000)


def estimate_matches(pattern: Graph, stats: GraphStats) -> float:
    """Expected matches of ``pattern`` under the active cardinality model.

    The default is the ER model of Lai et al. (Section IV-C); stats
    objects that provide their own ``estimate_matches`` (e.g. the
    configuration-model :class:`repro.plan.estimators.EmpiricalGraphStats`)
    override it — the paper's "the estimation model can be replaced" hook.

    Components multiply; the empty pattern has exactly one (empty) match.
    """
    custom = getattr(stats, "estimate_matches", None)
    if custom is not None:
        return custom(pattern)
    total = 1.0
    rho = stats.edge_probability
    for component in pattern.connected_components():
        sub = pattern.induced_subgraph(component)
        est = 1.0
        for i in range(sub.num_vertices):
            est *= max(0.0, stats.num_vertices - i)
        est *= rho ** sub.num_edges
        total *= est
    return total


@dataclass(frozen=True)
class PlanCost:
    """(communication, computation) cost pair, ordered lexicographically.

    The paper ranks plans by communication cost first — a DBQ round-trip
    dwarfs an in-memory intersection — with computation cost as the
    tie-breaker.
    """

    communication: float
    computation: float

    def __lt__(self, other: "PlanCost") -> bool:
        return (self.communication, self.computation) < (
            other.communication,
            other.computation,
        )

    def __le__(self, other: "PlanCost") -> bool:
        return not other < self


def _partial_pattern(pattern: Graph, prefix: Iterable[Vertex]) -> Graph:
    return pattern.induced_subgraph(prefix)


def estimate_computation_cost(
    plan: ExecutionPlan, stats: GraphStats = DEFAULT_STATS
) -> float:
    """EstimateComputationCost of Algorithm 3.

    Walk the plan; the INI and each ENU instruction advance the partial
    pattern P_i, whose estimated match count is the execution multiplicity
    of every following INT/TRC instruction.
    """
    return _walk_cost(plan, stats, (InstructionType.INT, InstructionType.TRC))


def estimate_communication_cost(
    plan: ExecutionPlan, stats: GraphStats = DEFAULT_STATS
) -> float:
    """Total estimated DBQ executions (same walk, counting DBQ)."""
    return _walk_cost(plan, stats, (InstructionType.DBQ,))


def _walk_cost(
    plan: ExecutionPlan,
    stats: GraphStats,
    counted_types: Tuple[InstructionType, ...],
) -> float:
    """Shared walk: the INI and each ENU advance the enumerated prefix.

    The enumerated pattern vertex is read off the instruction target
    (``f<i>``), which also handles VCBC-compressed plans whose non-cover
    ENUs were deleted.
    """
    from .instructions import var_index

    pattern = plan.pattern.graph
    prefix: list = []
    cur_num = 0.0
    cost = 0.0
    for inst in plan.instructions:
        if inst.type in (InstructionType.INI, InstructionType.ENU):
            prefix.append(var_index(inst.target))
            cur_num = estimate_matches(_partial_pattern(pattern, prefix), stats)
        elif inst.type in counted_types:
            cost += cur_num
    return cost


def predict_instruction_counts(
    plan: ExecutionPlan, stats: GraphStats = DEFAULT_STATS
) -> Dict[str, float]:
    """Per-instruction-type execution estimates under the §IV-C model.

    The same walk as :func:`_walk_cost`, but keeping each type separate
    so the estimates can be confronted with the exact executed counts
    the engine already measures (``TaskCounters``): an INT/TRC/DBQ at
    prefix P_i executes once per estimated match of P_i; an ENU's loop
    iterates once per match of the *extended* prefix; RES fires once per
    match of the full enumerated prefix.

    Keys are instruction-type names (``"INT"``, ``"TRC"``, ``"DBQ"``,
    ``"ENU"``, ``"RES"``) — the same vocabulary as the registry's
    ``instr`` label, so prediction and measurement join trivially.
    """
    from .instructions import var_index

    pattern = plan.pattern.graph
    prefix: list = []
    cur_num = 0.0
    predicted: Dict[str, float] = {}

    def add(name: str, amount: float) -> None:
        predicted[name] = predicted.get(name, 0.0) + amount

    for inst in plan.instructions:
        if inst.type in (InstructionType.INI, InstructionType.ENU):
            prefix.append(var_index(inst.target))
            cur_num = estimate_matches(_partial_pattern(pattern, prefix), stats)
            if inst.type is InstructionType.ENU:
                add("ENU", cur_num)
        elif inst.type is InstructionType.INT:
            add("INT", cur_num)
        elif inst.type is InstructionType.TRC:
            add("TRC", cur_num)
        elif inst.type is InstructionType.DBQ:
            add("DBQ", cur_num)
        elif inst.type is InstructionType.RES:
            add("RES", cur_num)
    return predicted


def q_error(predicted: float, actual: float) -> float:
    """The symmetric estimation-error ratio, >= 1.

    ``max(predicted/actual, actual/predicted)`` with both sides clamped
    to >= 1 so zero counts (an estimate of 0.3 against 0 executions)
    stay finite — the convention of the cardinality-estimation
    literature (see PAPERS.md: Ren et al., querytorque).

    >>> q_error(10.0, 100.0)
    10.0
    >>> q_error(0.0, 0.0)
    1.0
    """
    p = max(float(predicted), 1.0)
    a = max(float(actual), 1.0)
    return max(p / a, a / p)


def estimate_plan_cost(
    plan: ExecutionPlan, stats: GraphStats = DEFAULT_STATS
) -> PlanCost:
    """Full (communication, computation) cost of a plan."""
    return PlanCost(
        communication=estimate_communication_cost(plan, stats),
        computation=estimate_computation_cost(plan, stats),
    )


def order_communication_cost(
    pattern: Graph, order: Sequence[Vertex], stats: GraphStats = DEFAULT_STATS
) -> float:
    """Communication cost of a matching order, plan-free (Algorithm 3 logic).

    A DBQ is generated for position i exactly when u_{k_i} still has an
    unused neighbor; its multiplicity is the match estimate of P_i.
    Optimizations never move DBQs across ENUs, so this depends on the order
    alone.
    """
    used: list = []
    remaining = set(order)
    cost = 0.0
    for u in order:
        remaining.discard(u)
        used.append(u)
        if any(w in remaining for w in pattern.neighbors(u)):
            cost += estimate_matches(_partial_pattern(pattern, used), stats)
    return cost
