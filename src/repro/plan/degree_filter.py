"""Degree filtering — the extra filtering hook Section IV-A mentions.

"BENU supports integrating other filtering techniques like degree filter
by adding corresponding filtering conditions."  A valid match must map
each pattern vertex u onto a data vertex of degree ≥ d_P(u); candidates
below that can be dropped before enumeration.

Implementation reuses the plan-constants mechanism (as the labeled
extension does): for each required threshold k a pool
``VDk = {v : d_G(v) ≥ k}`` is injected, and every ENU's source set is
intersected with its vertex's pool first.  Thresholds of ≤ 1 are skipped
(every candidate already has an incident edge).

The paper warns that filters nested under many ENUs can cost more than
they save; the inserted intersections sit exactly where the candidate set
is already being materialized, so the overhead is one C-speed set
intersection per candidate-set construction.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph.graph import Graph
from .generation import ExecutionPlan
from .instructions import Instruction, InstructionType, intersect, tvar
from .optimizer import _fresh_temp_index


def degree_pool_name(threshold: int) -> str:
    """The plan-constant name for the degree-≥-threshold pool."""
    return f"VD{threshold}"


def degree_pools(data: Graph, thresholds) -> Dict[str, frozenset]:
    """``{VDk: {v : d(v) ≥ k}}`` for each requested threshold."""
    pools: Dict[str, frozenset] = {}
    for k in sorted(set(thresholds)):
        pools[degree_pool_name(k)] = frozenset(
            v for v in data.vertices if data.degree(v) >= k
        )
    return pools


def apply_degree_filter(plan: ExecutionPlan, data: Graph) -> ExecutionPlan:
    """Return a copy of ``plan`` with per-vertex degree filtering.

    Only pattern vertices of degree ≥ 2 get a filter (degree-1 vertices
    are trivially satisfied by any neighbor).
    """
    pattern = plan.pattern
    thresholds = {
        u: pattern.degree(u) for u in pattern.vertices if pattern.degree(u) >= 2
    }
    if not thresholds:
        return plan
    pools = degree_pools(data, thresholds.values())

    next_temp = _fresh_temp_index(plan)
    out: List[Instruction] = []
    for inst in plan.instructions:
        if inst.type is InstructionType.ENU:
            u = int(inst.target[1:])
            if u in thresholds:
                filtered = tvar(next_temp)
                next_temp += 1
                out.append(
                    intersect(
                        filtered,
                        (inst.operands[0], degree_pool_name(thresholds[u])),
                    )
                )
                out.append(inst.with_operands((filtered,)))
                continue
        if inst.type is InstructionType.RES and plan.compressed_vertices:
            operands: List[str] = []
            for u, op in zip(pattern.vertices, inst.operands):
                if u in plan.compressed_vertices and u in thresholds:
                    filtered = tvar(next_temp)
                    next_temp += 1
                    out.append(
                        intersect(
                            filtered, (op, degree_pool_name(thresholds[u]))
                        )
                    )
                    operands.append(filtered)
                else:
                    operands.append(op)
            out.append(inst.with_operands(operands))
            continue
        out.append(inst)

    filtered_plan = ExecutionPlan(
        pattern=pattern,
        order=plan.order,
        instructions=out,
        compressed=plan.compressed,
        compressed_vertices=plan.compressed_vertices,
        constants={**plan.constants, **pools},
    )
    assert filtered_plan.defined_before_use()
    return filtered_plan
