"""Best execution plan generation — Algorithm 3 (Section IV-D).

The search enumerates matching orders depth-first, maintaining the
communication cost incrementally (case 1 / case 2 of the paper), with two
pruning strategies:

* **Dual pruning** — syntactically-equivalent vertices generate dual orders
  with identical cost, so within each SE class only ascending-id placements
  are explored.
* **Cost-based pruning** — a partial order whose communication cost already
  exceeds the best complete one is abandoned.

Orders tied at the minimum communication cost become candidates; each gets
a fully optimized plan, and the one with the least estimated computation
cost wins.

The returned :class:`SearchStats` records α (match-estimate invocations in
the search) and β (optimized-plan generations, = |O_cand|) and their upper
bounds — exactly what Table IV reports.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..graph.graph import Vertex
from ..pattern.equivalence import passes_dual_condition
from ..pattern.pattern_graph import PatternGraph
from ..telemetry.tracing import NULL_TRACER
from .compression import compress_plan
from .cost import (
    DEFAULT_STATS,
    GraphStats,
    estimate_computation_cost,
    estimate_matches,
)
from .generation import ExecutionPlan, generate_raw_plan
from .optimizer import LEVEL_TRIANGLE, optimize


@dataclass
class SearchStats:
    """Instrumentation of one best-plan search (Table IV measurements)."""

    pattern_name: str = ""
    alpha: int = 0  # estimate invocations inside Search (line 15)
    beta: int = 0   # optimized-plan generations (|O_cand|)
    explored_orders: int = 0
    elapsed_seconds: float = 0.0
    n: int = 0

    @property
    def alpha_upper_bound(self) -> int:
        """Σ_{i=1..n} P(n, i) — every prefix of every permutation."""
        n = self.n
        return sum(math.perm(n, i) for i in range(1, n + 1))

    @property
    def beta_upper_bound(self) -> int:
        """n! — one optimized plan per matching order."""
        return math.factorial(self.n)

    @property
    def relative_alpha(self) -> float:
        """α / upper bound, as a fraction (Table IV reports percent)."""
        bound = self.alpha_upper_bound
        return self.alpha / bound if bound else 0.0

    @property
    def relative_beta(self) -> float:
        bound = self.beta_upper_bound
        return self.beta / bound if bound else 0.0


@dataclass
class BestPlanResult:
    """Output of :func:`generate_best_plan`."""

    plan: ExecutionPlan
    candidate_orders: List[Tuple[Vertex, ...]]
    communication_cost: float
    computation_cost: float
    stats: SearchStats


def generate_best_plan(
    pattern: PatternGraph,
    stats: GraphStats = DEFAULT_STATS,
    optimization_level: int = LEVEL_TRIANGLE,
    compressed: bool = False,
    tracer=None,
) -> BestPlanResult:
    """Algorithm 3: find the least-cost execution plan for ``pattern``.

    Parameters
    ----------
    stats:
        Data-graph statistics for the cardinality model (Exp-1 uses the
        defaults; real runs pass ``GraphStats.of(data_graph)``).
    optimization_level:
        Optimizer level applied to candidate plans (0–3).
    compressed:
        Apply the VCBC transformation to the winning plan.
    tracer:
        Optional :class:`repro.telemetry.Tracer`; the search's two phases
        become child spans carrying Table IV's α/β as span args.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    search_stats = SearchStats(pattern_name=pattern.name, n=pattern.n)
    t0 = time.perf_counter()

    best_comm = math.inf
    candidate_orders: List[Tuple[Vertex, ...]] = []
    se_index = pattern.se_class_index
    graph = pattern.graph
    vertices = list(pattern.vertices)

    order: List[Vertex] = []
    used: set = set()

    def search(comm_cost: float) -> None:
        nonlocal best_comm, candidate_orders
        if len(order) == len(vertices):
            search_stats.explored_orders += 1
            if comm_cost < best_comm:
                best_comm = comm_cost
                candidate_orders = [tuple(order)]
            elif comm_cost == best_comm:
                candidate_orders.append(tuple(order))
            return
        for u in vertices:
            if u in used:
                continue
            if not passes_dual_condition(graph, order, u, se_index):
                continue
            order.append(u)
            used.add(u)
            remaining = [v for v in vertices if v not in used]
            if any(w in graph.neighbors(u) for w in remaining):
                # Case 1: u still has unused neighbors → a DBQ for u will
                # exist, executed once per match of the partial pattern.
                partial = graph.induced_subgraph(order)
                step = estimate_matches(partial, stats)
                search_stats.alpha += 1
            else:
                # Case 2: all neighbors used → no DBQ for u.
                step = 0.0
            new_cost = comm_cost + step
            if new_cost <= best_comm:
                search(new_cost)
            used.discard(u)
            order.pop()

    with tracer.span("order-enumeration", category="plan-search") as span:
        search(0.0)
        span.args.update(
            alpha=search_stats.alpha,
            explored_orders=search_stats.explored_orders,
            candidate_orders=len(candidate_orders),
        )

    best_plan: Optional[ExecutionPlan] = None
    best_comp = math.inf
    with tracer.span("candidate-optimization", category="plan-search") as span:
        for cand in candidate_orders:
            raw = generate_raw_plan(pattern, cand)
            plan = optimize(raw, optimization_level)
            search_stats.beta += 1
            comp = estimate_computation_cost(plan, stats)
            if comp < best_comp:
                best_comp = comp
                best_plan = plan
        span.args["beta"] = search_stats.beta
    assert best_plan is not None, "a connected pattern always yields a plan"

    if compressed:
        best_plan = compress_plan(best_plan)

    search_stats.elapsed_seconds = time.perf_counter() - t0
    return BestPlanResult(
        plan=best_plan,
        candidate_orders=candidate_orders,
        communication_cost=best_comm,
        computation_cost=best_comp,
        stats=search_stats,
    )
