"""Execution-plan optimizations (Section IV-B).

Three passes, applied cumulatively (matching the X axis of Fig. 7):

1. **Common subexpression elimination** — Apriori-style mining of operand
   combinations shared by multiple INT instructions, hoisted into fresh
   temporaries.
2. **Instruction reordering** — flatten INT instructions to two operands,
   build the dependency graph, topologically sort with the type rank
   INI < INT < TRC < DBQ < ENU < RES so cheap/filtering work moves out of
   inner loops.
3. **Triangle caching** — rewrite ``Intersect(A_first, A_j)`` (start vertex
   with one of its pattern neighbors) into a TRC instruction served by the
   per-thread triangle cache.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .dependency import ranked_topological_sort
from .generation import ExecutionPlan, eliminate_uni_operand
from .instructions import (
    VG,
    Instruction,
    InstructionType,
    avar,
    intersect,
    trc,
    tvar,
    var_index,
)

#: Optimization levels for :func:`optimize` (cumulative).
LEVEL_RAW = 0
LEVEL_CSE = 1
LEVEL_REORDER = 2
LEVEL_TRIANGLE = 3


def fresh_temp_index(plan: ExecutionPlan) -> int:
    """First unused numeric suffix for new T variables."""
    top = max((u for u in plan.pattern.vertices), default=0)
    for inst in plan.instructions:
        names = [inst.target, *inst.operands, *(f.var for f in inst.filters)]
        for name in names:
            if name not in (VG, "start", "f") and name[1:].isdigit():
                top = max(top, var_index(name))
    return top + 1


#: Backwards-compatible alias (labelize_plan historically reached for it).
_fresh_temp_index = fresh_temp_index


# ----------------------------------------------------------------------
# Optimization 1: common subexpression elimination
# ----------------------------------------------------------------------
def _mine_common_subexpressions(
    operand_sets: Sequence[FrozenSet[str]],
) -> Dict[FrozenSet[str], int]:
    """Frequent operand combinations (size ≥ 2, support ≥ 2), Apriori style.

    Returns a map subexpression → number of INT instructions containing it
    as a subset.
    """
    # Level 1: frequent single operands.
    singles: Dict[str, int] = {}
    for ops in operand_sets:
        for op in ops:
            singles[op] = singles.get(op, 0) + 1
    frequent_items = {op for op, c in singles.items() if c >= 2}

    result: Dict[FrozenSet[str], int] = {}
    current: Set[FrozenSet[str]] = set()
    for a, b in combinations(sorted(frequent_items), 2):
        cand = frozenset((a, b))
        support = sum(1 for ops in operand_sets if cand <= ops)
        if support >= 2:
            current.add(cand)
            result[cand] = support

    while current:
        nxt: Set[FrozenSet[str]] = set()
        for s1 in current:
            for item in frequent_items:
                if item in s1:
                    continue
                cand = s1 | {item}
                if cand in nxt or cand in result:
                    continue
                support = sum(1 for ops in operand_sets if cand <= ops)
                if support >= 2:
                    nxt.add(cand)
                    result[cand] = support
        current = nxt
    return result


def _pick_subexpression(
    plan: ExecutionPlan, mined: Dict[FrozenSet[str], int]
) -> Optional[FrozenSet[str]]:
    """Tie-breaking of Section IV-B: most operands, then most frequent,
    then earliest first appearance in the plan."""
    if not mined:
        return None

    def first_appearance(sub: FrozenSet[str]) -> int:
        for idx, inst in enumerate(plan.instructions):
            if inst.type is InstructionType.INT and sub <= set(inst.operands):
                return idx
        return len(plan.instructions)

    return min(
        mined,
        key=lambda sub: (-len(sub), -mined[sub], first_appearance(sub), sorted(sub)),
    )


def eliminate_common_subexpressions(plan: ExecutionPlan) -> None:
    """Optimization 1, in place: repeat CSE until no common subexpression."""
    next_temp = _fresh_temp_index(plan)
    while True:
        int_ops = [
            frozenset(inst.operands)
            for inst in plan.instructions
            if inst.type is InstructionType.INT and len(inst.operands) >= 2
        ]
        mined = _mine_common_subexpressions(int_ops)
        sub = _pick_subexpression(plan, mined)
        if sub is None:
            break
        temp = tvar(next_temp)
        next_temp += 1

        new_instructions: List[Instruction] = []
        inserted = False
        for inst in plan.instructions:
            is_host = (
                inst.type is InstructionType.INT
                and len(inst.operands) >= 2
                and sub <= set(inst.operands)
            )
            if is_host and not inserted:
                # Hoist the subexpression right before its first appearance,
                # operands in their original order there.
                ordered_sub = [op for op in inst.operands if op in sub]
                new_instructions.append(intersect(temp, ordered_sub))
                inserted = True
            if is_host:
                replaced = False
                new_ops: List[str] = []
                for op in inst.operands:
                    if op in sub:
                        if not replaced:
                            new_ops.append(temp)
                            replaced = True
                    else:
                        new_ops.append(op)
                new_instructions.append(inst.with_operands(new_ops))
            else:
                new_instructions.append(inst)
        plan.instructions = new_instructions
    eliminate_uni_operand(plan)


# ----------------------------------------------------------------------
# Optimization 2: instruction reordering
# ----------------------------------------------------------------------
def _definition_positions(instructions: Sequence[Instruction]) -> Dict[str, int]:
    positions = {VG: -2, "start": -1}
    for idx, inst in enumerate(instructions):
        positions[inst.target] = idx
    return positions


def flatten_intersections(plan: ExecutionPlan) -> None:
    """Split INT instructions into ≤2-operand chains, in place.

    Operands are first sorted by definition position (earlier-defined
    first), then folded left-associatively; the final link keeps the
    original target and filters so semantics are unchanged.
    """
    next_temp = _fresh_temp_index(plan)
    out: List[Instruction] = []
    positions = _definition_positions(plan.instructions)
    for inst in plan.instructions:
        if inst.type is not InstructionType.INT or len(inst.operands) <= 2:
            out.append(inst)
            continue
        ops = sorted(inst.operands, key=lambda o: positions[o])
        acc = ops[0]
        for i, op in enumerate(ops[1:], start=1):
            last = i == len(ops) - 1
            if last:
                out.append(intersect(inst.target, (acc, op), inst.filters))
            else:
                temp = tvar(next_temp)
                next_temp += 1
                out.append(intersect(temp, (acc, op)))
                acc = temp
    plan.instructions = out


def reorder_instructions(plan: ExecutionPlan) -> None:
    """Optimization 2, in place: flatten, then ranked topological sort."""
    flatten_intersections(plan)
    plan.instructions = ranked_topological_sort(
        plan.instructions, predefined=tuple(plan.constants)
    )


# ----------------------------------------------------------------------
# Optimization 3: triangle caching
# ----------------------------------------------------------------------
def apply_triangle_cache(plan: ExecutionPlan) -> None:
    """Optimization 3, in place.

    An INT ``X := Intersect(A_i, A_j)`` where one of u_i/u_j is the start
    vertex and the other is its pattern neighbor computes the triangle set
    around the start; such instructions are served by the per-thread
    triangle cache via TRC.
    """
    first = plan.order[0]
    first_adj = plan.pattern.neighbors(first)
    out: List[Instruction] = []
    for inst in plan.instructions:
        if (
            inst.type is InstructionType.INT
            and not inst.filters
            and len(inst.operands) == 2
            and all(op.startswith("A") and op[1:].isdigit() for op in inst.operands)
        ):
            i, j = (var_index(op) for op in inst.operands)
            pair = {i, j}
            if first in pair and (pair - {first}).pop() in first_adj:
                fi, fj = f"f{i}", f"f{j}"
                out.append(trc(inst.target, fi, fj, inst.operands[0], inst.operands[1]))
                continue
        out.append(inst)
    plan.instructions = out


def _restorations(plan: ExecutionPlan) -> Dict[str, FrozenSet[int]]:
    """Map each set variable to the pattern vertices whose adjacency sets
    compose it, when it is a pure intersection of A-variables.

    The paper's clique-cache sketch: "restore" an INT's operands by
    replacing temporaries with the adjacency sets that calculate them.
    Filtered INTs are not pure intersections, so they restore to nothing.
    """
    restored: Dict[str, FrozenSet[int]] = {}
    for inst in plan.instructions:
        if inst.type is InstructionType.DBQ:
            restored[inst.target] = frozenset({var_index(inst.operands[0])})
        elif inst.type in (InstructionType.INT, InstructionType.TRC):
            if inst.filters:
                continue
            if inst.type is InstructionType.TRC:
                sources = inst.operands[-2:]
            else:
                sources = inst.operands
            parts = [restored.get(op) for op in sources]
            if all(p is not None for p in parts):
                restored[inst.target] = frozenset().union(*parts)
    return restored


def apply_generalized_clique_cache(plan: ExecutionPlan) -> None:
    """The paper's proposed Optimization 3 extension, in place.

    Any filter-free two-operand INT whose restored adjacency sets
    ``A_x1 ∩ ... ∩ A_xk`` span a k-clique of the pattern computes the set
    of data vertices completing a (k+1)-clique around ``f_x1..f_xk`` — a
    cacheable motif.  The instruction becomes a generalized TRC keyed by
    the (sorted) mapped clique; the per-task cache serves repeats.

    Unlike the paper's triangle cache, keys need not involve the start
    vertex: the cache is scoped to one task, so any repeated key is a
    legitimate reuse and entry count stays bounded by the task's search
    tree.
    """
    pattern = plan.pattern.graph
    restored = _restorations(plan)
    out: List[Instruction] = []
    for inst in plan.instructions:
        if (
            inst.type is InstructionType.INT
            and not inst.filters
            and len(inst.operands) == 2
        ):
            verts = restored.get(inst.target)
            if verts is not None and len(verts) >= 2:
                is_clique = all(
                    pattern.has_edge(a, b)
                    for a in verts
                    for b in verts
                    if a < b
                )
                if is_clique:
                    keys = [f"f{i}" for i in sorted(verts)]
                    out.append(
                        Instruction(
                            inst.target,
                            InstructionType.TRC,
                            (*keys, *inst.operands),
                        )
                    )
                    continue
        out.append(inst)
    plan.instructions = out


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
def optimize(plan: ExecutionPlan, level: int = LEVEL_TRIANGLE) -> ExecutionPlan:
    """Apply optimizations cumulatively up to ``level`` on a copy.

    Level 0 returns an untouched copy; 1 adds CSE; 2 adds reordering;
    3 adds triangle caching (the default, the paper's full pipeline).
    """
    if not 0 <= level <= LEVEL_TRIANGLE:
        raise ValueError(f"optimization level must be 0..3, got {level}")
    copy = ExecutionPlan(
        pattern=plan.pattern,
        order=plan.order,
        instructions=list(plan.instructions),
        compressed=plan.compressed,
        compressed_vertices=plan.compressed_vertices,
        constants=dict(plan.constants),
    )
    if level >= LEVEL_CSE:
        eliminate_common_subexpressions(copy)
    if level >= LEVEL_REORDER:
        reorder_instructions(copy)
    if level >= LEVEL_TRIANGLE:
        apply_triangle_cache(copy)
    return copy
