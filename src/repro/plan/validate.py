"""Static well-formedness checks for execution plans.

Used by tests and by :func:`repro.engine.benu.run_benu` before compiling,
so malformed plans fail loudly instead of producing wrong matches.
"""

from __future__ import annotations

from typing import List

from .generation import ExecutionPlan
from .instructions import VG, FilterKind, InstructionType, fvar


class PlanValidationError(ValueError):
    """A plan violates a structural invariant."""


def validate_plan(plan: ExecutionPlan) -> None:
    """Raise :class:`PlanValidationError` on any structural violation.

    Checks: single INI first; single RES last; single-assignment; defined
    before use; every non-compressed pattern vertex has exactly one
    INI/ENU; DBQ targets A-vars of f-vars defined earlier; filters
    reference f-vars only.
    """
    instructions = plan.instructions
    problems: List[str] = []
    if not instructions:
        raise PlanValidationError("plan has no instructions")

    if instructions[0].type is not InstructionType.INI:
        problems.append("first instruction must be INI")
    if instructions[-1].type is not InstructionType.RES:
        problems.append("last instruction must be RES")
    if sum(1 for i in instructions if i.type is InstructionType.INI) != 1:
        problems.append("plan must have exactly one INI")
    if sum(1 for i in instructions if i.type is InstructionType.RES) != 1:
        problems.append("plan must have exactly one RES")

    defined = {"start", VG, *plan.constants}
    for idx, inst in enumerate(instructions):
        for var in inst.used_vars:
            if var not in defined:
                problems.append(
                    f"instruction {idx} ({inst}) reads undefined {var!r}"
                )
        if inst.target in defined:
            problems.append(f"variable {inst.target!r} assigned twice")
        defined.add(inst.target)
        for f in inst.filters:
            if not f.var.startswith("f"):
                problems.append(f"filter {f} must reference an f-variable")
            if f.kind not in (FilterKind.GT, FilterKind.LT, FilterKind.NE):
                problems.append(f"unknown filter kind in {f}")

    enumerated = {
        inst.target
        for inst in instructions
        if inst.type in (InstructionType.INI, InstructionType.ENU)
    }
    for u in plan.pattern.vertices:
        expected = u not in plan.compressed_vertices
        if expected and fvar(u) not in enumerated:
            problems.append(f"pattern vertex u{u} is never mapped")
        if not expected and fvar(u) in enumerated:
            problems.append(f"compressed vertex u{u} still has an ENU")

    res = instructions[-1]
    if res.type is InstructionType.RES and len(res.operands) != plan.pattern.n:
        problems.append(
            f"RES reports {len(res.operands)} slots for an "
            f"{plan.pattern.n}-vertex pattern"
        )

    if problems:
        raise PlanValidationError("; ".join(problems))
