"""Raw execution-plan generation from a matching order (Section IV-A).

Given a pattern P and a matching order ``O: u_{k1}, ..., u_{kn}``, emit the
instruction sequence described in the paper:

* two instructions ``f_{k1} := Init(start)`` / ``A_{k1} := GetAdj(f_{k1})``
  for the first vertex;
* per remaining vertex: a raw-candidate INT over the adjacency sets of
  earlier-mapped neighbors (or V(G)), a refining INT applying
  symmetry-breaking and injectivity filters, an ENU, and — only if a later
  neighbor will need it — a DBQ;
* a final RES instruction;
* uni-operand elimination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.graph import Vertex
from ..pattern.pattern_graph import PatternGraph
from .instructions import (
    VG,
    Filter,
    FilterKind,
    Instruction,
    InstructionType,
    avar,
    cvar,
    dbq,
    enu,
    fvar,
    ini,
    intersect,
    res,
    tvar,
)


@dataclass
class ExecutionPlan:
    """A BENU execution plan: instructions + the metadata that shaped them."""

    pattern: PatternGraph
    order: Tuple[Vertex, ...]
    instructions: List[Instruction]
    compressed: bool = False
    #: Pattern vertices whose ENU was removed by VCBC compression.
    compressed_vertices: Tuple[Vertex, ...] = ()
    #: Named constant sets available to instructions (e.g. the per-label
    #: vertex pools of the property-graph extension).
    constants: Dict[str, frozenset] = field(default_factory=dict)
    #: Cost-model estimate of per-instruction-type execution counts
    #: (filled by ``build_plan`` against the target graph's stats);
    #: confronted with the exact executed counts for q-error accounting.
    predicted_counts: Optional[Dict[str, float]] = None

    def __str__(self) -> str:
        from .instructions import format_plan

        return format_plan(self.instructions)

    # ------------------------------------------------------------------
    @property
    def enu_count(self) -> int:
        return sum(
            1 for i in self.instructions if i.type is InstructionType.ENU
        )

    def loop_depths(self) -> List[int]:
        """For each instruction, how many ENU instructions precede it."""
        depths = []
        depth = 0
        for inst in self.instructions:
            depths.append(depth)
            if inst.type is InstructionType.ENU:
                depth += 1
        return depths

    def instructions_of_type(self, type_: InstructionType) -> List[Instruction]:
        return [i for i in self.instructions if i.type is type_]

    def defined_before_use(self) -> bool:
        """Static check: every variable is defined before it is read."""
        defined = {"start", VG, *self.constants}
        for inst in self.instructions:
            if any(v not in defined for v in inst.used_vars):
                return False
            defined.add(inst.target)
        return True


def _symmetry_filter(
    conditions: Sequence[Tuple[Vertex, Vertex]], earlier: Vertex, current: Vertex
) -> Optional[Filter]:
    """The symmetry filter ``current``'s candidates owe to ``earlier``.

    If the partial order says ``earlier < current``, candidates must be
    ``> f_earlier``; the reverse gives ``< f_earlier``; no constraint → None.
    """
    for lo, hi in conditions:
        if (lo, hi) == (earlier, current):
            return Filter(FilterKind.GT, fvar(earlier))
        if (lo, hi) == (current, earlier):
            return Filter(FilterKind.LT, fvar(earlier))
    return None


def generate_raw_plan(
    pattern: PatternGraph, order: Sequence[Vertex]
) -> ExecutionPlan:
    """Generate the raw (unoptimized) plan of Section IV-A.

    >>> from repro.graph.patterns import TRIANGLE
    >>> from repro.pattern.pattern_graph import PatternGraph
    >>> plan = generate_raw_plan(PatternGraph(TRIANGLE), [1, 2, 3])
    >>> print(plan)  # doctest: +NORMALIZE_WHITESPACE
      1: f1 := Init(start)
      2: A1 := GetAdj(f1)
      3: C2 := Intersect(A1) | >f1
      4:   f2 := Foreach(C2)
      5:   A2 := GetAdj(f2)
      6:   T3 := Intersect(A1, A2)
      7:   C3 := Intersect(T3) | >f1, >f2
      8:     f3 := Foreach(C3)
      9:     f := ReportMatch(f1, f2, f3)
    """
    order = tuple(order)
    if sorted(order) != list(pattern.vertices):
        raise ValueError(
            f"matching order {order} is not a permutation of {pattern.vertices}"
        )
    conditions = pattern.symmetry_conditions
    position = {u: i for i, u in enumerate(order)}
    instructions: List[Instruction] = []

    first = order[0]
    instructions.append(ini(first))
    instructions.append(dbq(first))

    for idx in range(1, len(order)):
        u = order[idx]
        earlier = order[:idx]
        mapped_neighbors = [w for w in earlier if pattern.graph.has_edge(w, u)]

        # 1) Raw candidates: intersect adjacency sets of mapped neighbors.
        raw_ops = tuple(avar(w) for w in mapped_neighbors) or (VG,)
        raw_target = tvar(u)
        instructions.append(intersect(raw_target, raw_ops))

        # 2) Refined candidates: symmetry-breaking + injectivity filters.
        filters: List[Filter] = []
        for w in earlier:
            sym = _symmetry_filter(conditions, w, u)
            if sym is not None:
                filters.append(sym)
            elif not pattern.graph.has_edge(w, u):
                # Injectivity; omitted for neighbors since T ⊆ A_w ∌ f_w.
                filters.append(Filter(FilterKind.NE, fvar(w)))
        instructions.append(intersect(cvar(u), (raw_target,), filters))

        # 3) Enumerate.
        instructions.append(enu(u, cvar(u)))

        # 4) Fetch the adjacency set only if a later neighbor needs it.
        has_later_neighbor = any(
            position[w] > idx for w in pattern.neighbors(u)
        )
        if has_later_neighbor:
            instructions.append(dbq(u))

    instructions.append(res([fvar(u) for u in pattern.vertices]))

    plan = ExecutionPlan(pattern, order, instructions)
    eliminate_uni_operand(plan)
    return plan


def eliminate_uni_operand(plan: ExecutionPlan) -> None:
    """Uni-operand elimination (end of Section IV-A), in place.

    INT instructions with exactly one operand and no filters are removed and
    their target replaced by the operand everywhere.  Runs to fixpoint since
    one removal can expose another.
    """
    changed = True
    while changed:
        changed = False
        rename: Dict[str, str] = {}
        kept: List[Instruction] = []
        for inst in plan.instructions:
            if (
                inst.type is InstructionType.INT
                and len(inst.operands) == 1
                and not inst.filters
            ):
                rename[inst.target] = inst.operands[0]
                changed = True
            else:
                kept.append(inst)
        if changed:
            # Chase chains (T2 -> T1 -> A1) to the final name.
            def resolve(name: str) -> str:
                while name in rename:
                    name = rename[name]
                return name

            flat = {k: resolve(k) for k in rename}
            plan.instructions = [inst.rename(flat) for inst in kept]
