"""Execute BENU-QL queries against in-process graphs.

This is the local (library / CLI) execution path; the resident service
has its own entry (:meth:`repro.service.BenuService.submit_query`) that
shares the same lowering.  Matches flow through the one shared plan
pipeline — ``run_query`` only applies the *relational* finishing steps
(projection, grouping) to the engine's match tuples, so its answers are
byte-identical to the programmatic ``PatternGraph`` path by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple, Union

from ..engine.benu import count_subgraphs, enumerate_subgraphs
from ..engine.config import BenuConfig
from ..graph.graph import Graph, Vertex
from ..labeled.enumerate import (
    count_labeled_subgraphs,
    enumerate_labeled_subgraphs,
)
from ..labeled.graphs import LabeledGraph
from .errors import QuerySemanticError
from .lowering import LoweredQuery, lower_query

DataGraph = Union[Graph, LabeledGraph]


@dataclass(frozen=True)
class QueryResult:
    """The answer to one BENU-QL query.

    Exactly one of ``count`` / ``matches`` / ``groups`` is meaningful,
    selected by ``kind`` (``count`` is also populated alongside matches
    and groups for convenience).
    """

    kind: str
    columns: Tuple[str, ...]
    count: int
    matches: Optional[List[Tuple[Vertex, ...]]] = None
    groups: Optional[Dict[Hashable, int]] = None
    lowered: Optional[LoweredQuery] = None

    def rows(self) -> List[Tuple]:
        """Uniform tabular view (CLI rendering)."""
        if self.kind == "count":
            return [(self.count,)]
        if self.kind == "groups":
            return [(k, v) for k, v in sorted((self.groups or {}).items())]
        return list(self.matches or [])


def project_matches(
    matches: List[Tuple[Vertex, ...]], indices: Tuple[int, ...]
) -> List[Tuple[Vertex, ...]]:
    return [tuple(match[i] for i in indices) for match in matches]


def group_counts(
    matches: List[Tuple[Vertex, ...]], index: int
) -> Dict[Hashable, int]:
    counts: Dict[Hashable, int] = {}
    for match in matches:
        key = match[index]
        counts[key] = counts.get(key, 0) + 1
    return counts


def run_query(
    query: Union[str, LoweredQuery],
    data: DataGraph,
    config: Optional[BenuConfig] = None,
) -> QueryResult:
    """Run a BENU-QL query against ``data`` and return its result.

    ``data`` may be a plain :class:`Graph` or a :class:`LabeledGraph`;
    label predicates require the latter.  An unlabeled query against a
    ``LabeledGraph`` matches on structure alone.
    """
    lowered = lower_query(query) if isinstance(query, str) else query

    if lowered.is_labeled and not isinstance(data, LabeledGraph):
        raise QuerySemanticError(
            "query uses label predicates but the data graph has no labels"
        )

    if lowered.unsatisfiable:
        return QueryResult(
            kind=lowered.kind,
            columns=lowered.columns,
            count=0,
            matches=[] if lowered.kind == "stream" else None,
            groups={} if lowered.kind == "groups" else None,
            lowered=lowered,
        )

    if lowered.is_labeled:
        if lowered.kind == "count":
            count = count_labeled_subgraphs(lowered.pattern, data, config)
            return QueryResult(
                kind="count", columns=lowered.columns, count=count,
                lowered=lowered,
            )
        matches = enumerate_labeled_subgraphs(lowered.pattern, data, config)
    else:
        plain = data.graph if isinstance(data, LabeledGraph) else data
        if lowered.kind == "count":
            count = count_subgraphs(lowered.pattern, plain, config)
            return QueryResult(
                kind="count", columns=lowered.columns, count=count,
                lowered=lowered,
            )
        matches = enumerate_subgraphs(lowered.pattern, plain, config)

    if lowered.kind == "groups":
        groups = group_counts(matches, lowered.group_by)
        return QueryResult(
            kind="groups",
            columns=lowered.columns,
            count=len(matches),
            groups=groups,
            lowered=lowered,
        )
    if lowered.projection is not None:
        matches = project_matches(matches, lowered.projection)
    return QueryResult(
        kind="stream",
        columns=lowered.columns,
        count=len(matches),
        matches=matches,
        lowered=lowered,
    )
