"""Lowering: BENU-QL logical trees → the engine's pattern objects.

This is the bridge between the declarative front-end and the existing
plan pipeline.  :func:`lower_query` runs parse → rule optimizer →
pattern construction and packages everything execution needs in a
:class:`LoweredQuery`:

* variables are assigned pattern vertices **in sorted name order**
  (variable i in sorted order ↦ vertex ``i + 1``), so the same query
  text always produces the identical :class:`~repro.pattern.PatternGraph`
  — plan generation, the plan cache, and the byte-identical equivalence
  sweep all key off that determinism;
* a query with any label predicate lowers to a
  :class:`~repro.labeled.LabeledPatternGraph` (unlabeled variables get
  an explicit ``None`` label = unconstrained);
* projection / GROUP BY columns become match-tuple indices (matches are
  tuples ordered by pattern vertex = sorted variable).

:func:`pattern_to_query` is the inverse: render an existing pattern
object as canonical BENU-QL whose lowering reproduces the pattern's
vertex numbering exactly — the equivalence tests lean on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..graph.graph import Graph
from ..labeled.pattern import LabeledPatternGraph
from ..pattern.pattern_graph import PatternGraph
from .algebra import (
    Aggregate,
    MatchPattern,
    Node,
    Project,
    pretty_query,
)
from .errors import QuerySemanticError
from .parser import parse_query
from .rules import RULES, Rule, fire_rules

AnyPattern = Union[PatternGraph, LabeledPatternGraph]


@dataclass(frozen=True)
class LoweredQuery:
    """Everything the engine needs to execute one BENU-QL query.

    ``kind`` selects the result shape: ``"stream"`` (match tuples,
    possibly projected), ``"count"`` (a single number), or ``"groups"``
    (per-group-key counts).  ``projection`` / ``group_by`` are indices
    into the engine's match tuples (ordered by pattern vertex).
    """

    text: str
    tree: Node
    pattern: AnyPattern
    variables: Tuple[str, ...]
    kind: str
    projection: Optional[Tuple[int, ...]] = None
    group_by: Optional[int] = None
    group_by_var: Optional[str] = None
    unsatisfiable: bool = False
    rules_fired: Tuple[str, ...] = ()
    logical_size: int = 1
    labels: Tuple[Tuple[str, str], ...] = field(default=())

    @property
    def is_labeled(self) -> bool:
        """True when execution needs label pools (labeled pattern built)."""
        return isinstance(self.pattern, LabeledPatternGraph)

    @property
    def columns(self) -> Tuple[str, ...]:
        """Human-readable output column names (wire protocol / CLI)."""
        if self.kind == "count":
            return ("count",)
        if self.kind == "groups":
            return (self.group_by_var or "group", "count")
        if self.projection is not None:
            return tuple(self.variables[i] for i in self.projection)
        return self.variables


def _pattern_leaf(tree: Node) -> MatchPattern:
    node = tree
    while not isinstance(node, MatchPattern):
        children = node.children()
        if not children:
            raise TypeError(
                f"logical tree has no MatchPattern leaf ({type(node).__name__})"
            )
        node = children[0]
    return node


def lower_query(
    text: str, rules: Tuple[Rule, ...] = RULES
) -> LoweredQuery:
    """Parse, optimize, and lower BENU-QL text."""
    parsed = parse_query(text)
    tree, fired = fire_rules(parsed, rules)
    pattern_node = _pattern_leaf(tree)
    variables = pattern_node.variables
    var_to_vertex: Dict[str, int] = {
        var: i + 1 for i, var in enumerate(variables)
    }
    edges = [
        (var_to_vertex[a], var_to_vertex[b]) for a, b in pattern_node.edges
    ]
    graph = Graph(edges)

    labels = pattern_node.labels
    if labels and not pattern_node.unsatisfiable:
        label_map = dict(labels)
        pattern: AnyPattern = LabeledPatternGraph(
            graph,
            {var_to_vertex[v]: label_map.get(v) for v in variables},
            name="benu-ql",
        )
    else:
        # Unsatisfiable trees may carry conflicting labels for one
        # variable; the structural pattern is enough — execution is
        # skipped anyway.
        pattern = PatternGraph(graph, name="benu-ql")

    kind = "stream"
    projection: Optional[Tuple[int, ...]] = None
    group_by: Optional[int] = None
    group_by_var: Optional[str] = None
    if isinstance(tree, Aggregate):
        if tree.group_by is not None:
            kind = "groups"
            group_by_var = tree.group_by
            group_by = var_to_vertex[tree.group_by] - 1
        else:
            kind = "count"
    elif isinstance(tree, Project):
        projection = tuple(var_to_vertex[c] - 1 for c in tree.columns)

    return LoweredQuery(
        text=text,
        tree=tree,
        pattern=pattern,
        variables=variables,
        kind=kind,
        projection=projection,
        group_by=group_by,
        group_by_var=group_by_var,
        unsatisfiable=pattern_node.unsatisfiable,
        rules_fired=fired,
        logical_size=tree.size(),
        labels=labels,
    )


def variable_name(index: int) -> str:
    """Name for sorted-vertex position ``index`` (0-based): a, b, ... z, v26, ..."""
    if index < 26:
        return chr(ord("a") + index)
    return f"v{index}"


def pattern_to_query(
    pattern: AnyPattern, select: str = "*"
) -> str:
    """Render a pattern object as canonical BENU-QL text.

    Vertex ``i`` (in sorted vertex order) becomes variable
    :func:`variable_name` ``(i)``; since those names sort in the same
    order for patterns up to 26 vertices, :func:`lower_query` on the
    result reconstructs the pattern with **identical vertex numbering**
    — plans, symmetry conditions, and match tuples all line up
    byte-for-byte with the programmatic API.

    ``select`` is ``"*"`` (stream matches) or ``"count"`` (COUNT(*)).
    """
    vertices = sorted(pattern.graph.vertices)
    if len(vertices) > 26:
        raise ValueError(
            "pattern_to_query supports patterns up to 26 vertices"
        )
    names = {v: variable_name(i) for i, v in enumerate(vertices)}
    edges = sorted(tuple(sorted(e)) for e in pattern.graph.edges())
    parts = [
        "MATCH " + ", ".join(f"({names[a]})-({names[b]})" for a, b in edges)
    ]
    if isinstance(pattern, LabeledPatternGraph):
        predicates = [
            f"{names[v]}.label = '{pattern.labels[v]}'"
            for v in vertices
            if pattern.labels[v] is not None
        ]
        if predicates:
            parts.append("WHERE " + " AND ".join(predicates))
    parts.append("RETURN COUNT(*)" if select == "count" else "RETURN *")
    return " ".join(parts)


__all__ = [
    "AnyPattern",
    "LoweredQuery",
    "lower_query",
    "pattern_to_query",
    "pretty_query",
    "variable_name",
]
