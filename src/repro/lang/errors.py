"""Typed errors for BENU-QL parsing and analysis.

Every error knows *where* in the query text it happened (1-based line
and column) and can render a caret snippet pointing at the offending
spot — the service protocol forwards ``code``/``line``/``column``/
``snippet`` as structured fields, so clients never have to parse a
message to find the position.

This module must stay dependency-free within the repo (the tokenizer,
parser and the service protocol all import it; it imports nothing).
"""

from __future__ import annotations

from typing import Optional


class QueryError(Exception):
    """Base class for BENU-QL front-end failures.

    ``code`` is the machine-readable error code the wire protocol
    reports; ``line``/``column`` are 1-based positions into the query
    text (None when the error has no specific location).
    """

    code = "query_error"

    def __init__(
        self,
        message: str,
        *,
        line: Optional[int] = None,
        column: Optional[int] = None,
        source: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column
        self.source = source

    def snippet(self) -> Optional[str]:
        """The offending source line with a caret under the position."""
        if self.source is None or self.line is None or self.column is None:
            return None
        lines = self.source.splitlines()
        if not 1 <= self.line <= len(lines):
            return None
        text = lines[self.line - 1]
        caret = " " * (self.column - 1) + "^"
        return f"{text}\n{caret}"

    def __str__(self) -> str:
        if self.line is not None and self.column is not None:
            return f"line {self.line}:{self.column}: {self.message}"
        return self.message


class QuerySyntaxError(QueryError):
    """The query text does not tokenize or parse."""

    code = "query_syntax"


class QuerySemanticError(QueryError):
    """The query parsed but does not make sense (unknown variable, ...)."""

    code = "query_semantic"
