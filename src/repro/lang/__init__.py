"""BENU-QL: the declarative query front-end.

A small declarative language over the BENU engine::

    MATCH (a)-(b), (b)-(c), (a)-(c)
    WHERE a.label = 'A'
    RETURN COUNT(*) GROUP BY a

Text parses (hand-written tokenizer + recursive descent,
:mod:`.parser`) into a logical algebra (:mod:`.algebra`), a rule-based
optimizer fires rewrites to fixpoint (:mod:`.rules` — label pushdown,
constant folding, projection elimination, count-only detection), and
:mod:`.lowering` emits the engine's ``PatternGraph`` /
``LabeledPatternGraph`` objects so execution runs through the exact
same plan pipeline as the programmatic API.
"""

from .algebra import (
    Aggregate,
    ConstPredicate,
    Filter,
    LabelPredicate,
    MatchPattern,
    Node,
    Project,
    pretty_query,
    pretty_tree,
)
from .errors import QueryError, QuerySemanticError, QuerySyntaxError
from .lowering import (
    LoweredQuery,
    lower_query,
    pattern_to_query,
    variable_name,
)
from .parser import Token, parse_query, tokenize
from .rules import RULES, Rule, apply_everywhere, fire_rules
from .run import QueryResult, group_counts, project_matches, run_query

__all__ = [
    "Aggregate",
    "ConstPredicate",
    "Filter",
    "LabelPredicate",
    "MatchPattern",
    "Node",
    "Project",
    "pretty_query",
    "pretty_tree",
    "QueryError",
    "QuerySemanticError",
    "QuerySyntaxError",
    "LoweredQuery",
    "lower_query",
    "pattern_to_query",
    "variable_name",
    "Token",
    "parse_query",
    "tokenize",
    "RULES",
    "Rule",
    "apply_everywhere",
    "fire_rules",
    "QueryResult",
    "group_counts",
    "project_matches",
    "run_query",
]
