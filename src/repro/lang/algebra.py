"""The BENU-QL logical algebra.

A parsed query is a small tree of relational-style operators over one
pattern-matching leaf:

* :class:`MatchPattern` — the leaf: pattern edges, the variable
  universe, and (after optimization) per-variable label constraints
  pushed down from WHERE;
* :class:`Filter` — WHERE predicates not yet absorbed by a rewrite;
* :class:`Project` — RETURN a, b (column selection/reordering);
* :class:`Aggregate` — COUNT(*) with an optional GROUP BY variable.

Nodes are frozen dataclasses, so structural equality is free — the
optimizer's fixpoint loop and the parser round-trip tests both rely on
``parse(pretty(parse(q))) == parse(q)`` being plain ``==``.

Two pretty-printers live here: :func:`pretty_tree` renders the stable
indented form the golden tests pin, and :func:`pretty_query` renders a
tree back to canonical BENU-QL text (parseable, used for round-trips).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple, Union

Constant = Union[int, str]


# ---------------------------------------------------------------- predicates
@dataclass(frozen=True)
class LabelPredicate:
    """``var.label = 'X'`` — a vertex-label equality constraint."""

    var: str
    label: str

    def render(self) -> str:
        return f"{self.var}.label = {_render_constant(self.label)}"


@dataclass(frozen=True)
class ConstPredicate:
    """``c1 = c2`` / ``c1 != c2`` between two constants (foldable)."""

    left: Constant
    op: str  # "=" or "!="
    right: Constant

    def evaluate(self) -> bool:
        return self.left == self.right if self.op == "=" else self.left != self.right

    def render(self) -> str:
        return (
            f"{_render_constant(self.left)} {self.op} "
            f"{_render_constant(self.right)}"
        )


Predicate = Union[LabelPredicate, ConstPredicate]


def _render_constant(value: Constant) -> str:
    if isinstance(value, str):
        return "'" + value + "'"
    return str(value)


# --------------------------------------------------------------------- nodes
class Node:
    """Base class: a logical operator with zero or one child."""

    def children(self) -> Tuple["Node", ...]:
        child = getattr(self, "child", None)
        return (child,) if child is not None else ()

    def map_children(self, fn: Callable[["Node"], "Node"]) -> "Node":
        child = getattr(self, "child", None)
        if child is None:
            return self
        new_child = fn(child)
        if new_child is child:
            return self
        return replace(self, child=new_child)

    def size(self) -> int:
        """Number of operator nodes in the tree (telemetry)."""
        return 1 + sum(c.size() for c in self.children())


@dataclass(frozen=True)
class MatchPattern(Node):
    """The pattern leaf: edges over variables, plus pushed-down labels.

    ``variables`` is the sorted variable universe (lowering maps the
    i-th variable to pattern vertex ``i+1``, so match tuples index by
    sorted variable name).  ``labels`` holds ``(var, label)`` pairs
    sorted by variable — the result of label-predicate pushdown.
    ``unsatisfiable`` marks a query proven empty by folding (conflicting
    labels, a false constant predicate): execution is skipped entirely.
    """

    edges: Tuple[Tuple[str, str], ...]
    variables: Tuple[str, ...]
    labels: Tuple[Tuple[str, str], ...] = ()
    unsatisfiable: bool = False

    def label_of(self, var: str) -> Optional[str]:
        for v, label in self.labels:
            if v == var:
                return label
        return None


@dataclass(frozen=True)
class Filter(Node):
    child: Node
    predicates: Tuple[Predicate, ...]


@dataclass(frozen=True)
class Project(Node):
    child: Node
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class Aggregate(Node):
    """``COUNT(*)`` (optionally ``GROUP BY var``).

    ``count_only`` is set by the optimizer when the aggregate can be
    answered without materializing matches (no grouping, nothing between
    the aggregate and the pattern leaf) — the lowering selects the
    engine's count mode instead of collect mode when it is set.
    """

    child: Node
    function: str = "count"
    group_by: Optional[str] = None
    count_only: bool = False


# ----------------------------------------------------------------- printers
def pretty_tree(node: Node, indent: int = 0) -> str:
    """Stable indented rendering of a logical tree (golden-test form)."""
    pad = "  " * indent
    if isinstance(node, MatchPattern):
        edges = ", ".join(f"({a})-({b})" for a, b in node.edges)
        line = f"{pad}MatchPattern[{edges}]"
        if node.labels:
            rendered = ", ".join(
                f"{v}: {_render_constant(label)}" for v, label in node.labels
            )
            line += f" labels={{{rendered}}}"
        if node.unsatisfiable:
            line += " UNSATISFIABLE"
        return line
    if isinstance(node, Filter):
        preds = ", ".join(p.render() for p in node.predicates)
        head = f"{pad}Filter[{preds}]"
    elif isinstance(node, Project):
        head = f"{pad}Project[{', '.join(node.columns)}]"
    elif isinstance(node, Aggregate):
        head = f"{pad}Aggregate[{node.function}]"
        if node.group_by is not None:
            head += f" group_by={node.group_by}"
        if node.count_only:
            head += " count_only"
    else:  # pragma: no cover - new node types must extend the printer
        raise TypeError(f"cannot pretty-print {type(node).__name__}")
    lines = [head]
    for child in node.children():
        lines.append(pretty_tree(child, indent + 1))
    return "\n".join(lines)


def _collect_parts(node: Node):
    """Decompose any tree into (pattern, predicates, projection, aggregate)."""
    aggregate: Optional[Aggregate] = None
    projection: Optional[Project] = None
    predicates = []
    current = node
    if isinstance(current, Aggregate):
        aggregate = current
        current = current.child
    if isinstance(current, Project):
        projection = current
        current = current.child
    while isinstance(current, Filter):
        predicates.extend(current.predicates)
        current = current.child
    if not isinstance(current, MatchPattern):
        raise TypeError(
            f"malformed logical tree: expected MatchPattern leaf, found "
            f"{type(current).__name__}"
        )
    # Pushed-down labels re-surface as WHERE predicates so the rendered
    # text parses back to an equivalent query; an unsatisfiable pattern
    # re-surfaces as a provably-false predicate, so the proof survives a
    # render → parse → optimize round-trip.
    label_preds = [LabelPredicate(v, label) for v, label in current.labels]
    if current.unsatisfiable:
        label_preds.append(ConstPredicate(0, "=", 1))
    return current, label_preds + predicates, projection, aggregate


def pretty_query(node: Node) -> str:
    """Render a logical tree back to canonical BENU-QL text."""
    pattern, predicates, projection, aggregate = _collect_parts(node)
    parts = [
        "MATCH " + ", ".join(f"({a})-({b})" for a, b in pattern.edges)
    ]
    if predicates:
        parts.append("WHERE " + " AND ".join(p.render() for p in predicates))
    if aggregate is not None:
        ret = "RETURN COUNT(*)"
        if aggregate.group_by is not None:
            ret += f" GROUP BY {aggregate.group_by}"
        parts.append(ret)
    elif projection is not None:
        parts.append("RETURN " + ", ".join(projection.columns))
    else:
        parts.append("RETURN *")
    return " ".join(parts)
