"""Hand-written tokenizer and recursive-descent parser for BENU-QL.

Grammar (keywords are case-insensitive; identifiers are not)::

    query    := MATCH edge ("," edge)*
                [WHERE pred (AND pred)*]
                RETURN returns
    edge     := "(" IDENT ")" "-" "(" IDENT ")"
    pred     := operand ("=" | "!=") operand
    operand  := IDENT "." IDENT        -- property access, e.g. a.label
              | STRING | INT
    returns  := "*"
              | IDENT ("," IDENT)*
              | COUNT "(" "*" ")" [GROUP BY IDENT]

The parser produces the logical algebra from :mod:`.algebra`:
``MatchPattern`` at the leaf, wrapped by ``Filter`` (if WHERE),
``Project`` (explicit column list) or ``Aggregate`` (COUNT).  All
semantic checks that need only the query text happen here — unknown
variables, self-loops, disconnected patterns — so downstream code can
assume a well-formed tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from .algebra import (
    Aggregate,
    ConstPredicate,
    Filter,
    LabelPredicate,
    MatchPattern,
    Node,
    Project,
)
from .errors import QuerySemanticError, QuerySyntaxError

_KEYWORDS = {"MATCH", "WHERE", "AND", "RETURN", "COUNT", "GROUP", "BY"}

_PUNCT = {
    "(": "LPAREN",
    ")": "RPAREN",
    "-": "DASH",
    ",": "COMMA",
    ".": "DOT",
    "=": "EQ",
    "*": "STAR",
}


@dataclass(frozen=True)
class Token:
    kind: str  # keyword name, punct name, IDENT, STRING, INT, EOF
    value: str
    line: int
    column: int


def tokenize(text: str) -> List[Token]:
    """Split query text into tokens, tracking 1-based line/column."""
    tokens: List[Token] = []
    line, column = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        start_line, start_column = line, column
        if ch == "!":
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token("NEQ", "!=", start_line, start_column))
                i += 2
                column += 2
                continue
            raise QuerySyntaxError(
                "unexpected character '!' (did you mean '!='?)",
                line=start_line, column=start_column, source=text,
            )
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, start_line, start_column))
            i += 1
            column += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\n":
                    break
                j += 1
            if j >= n or text[j] != quote:
                raise QuerySyntaxError(
                    "unterminated string literal",
                    line=start_line, column=start_column, source=text,
                )
            tokens.append(Token("STRING", text[i + 1:j], start_line, start_column))
            column += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token("INT", text[i:j], start_line, start_column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            kind = upper if upper in _KEYWORDS else "IDENT"
            tokens.append(Token(kind, word, start_line, start_column))
            column += j - i
            i = j
            continue
        raise QuerySyntaxError(
            f"unexpected character {ch!r}",
            line=start_line, column=start_column, source=text,
        )
    tokens.append(Token("EOF", "", line, column))
    return tokens


@dataclass(frozen=True)
class _Property:
    """An ``ident.prop`` operand inside a WHERE predicate."""

    var: str
    prop: str
    token: Token


_Operand = Union[_Property, str, int]


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------ plumbing
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str, what: str) -> Token:
        token = self.current
        if token.kind != kind:
            found = repr(token.value) if token.kind != "EOF" else "end of query"
            raise QuerySyntaxError(
                f"expected {what}, found {found}",
                line=token.line, column=token.column, source=self.text,
            )
        return self.advance()

    def syntax_error(self, message: str, token: Optional[Token] = None):
        token = token or self.current
        raise QuerySyntaxError(
            message, line=token.line, column=token.column, source=self.text
        )

    def semantic_error(self, message: str, token: Token):
        raise QuerySemanticError(
            message, line=token.line, column=token.column, source=self.text
        )

    # ------------------------------------------------------------- grammar
    def parse(self) -> Node:
        self.expect("MATCH", "MATCH")
        edges: List[Tuple[str, str]] = []
        edge_tokens: List[Token] = []
        while True:
            edge, token = self.parse_edge()
            edges.append(edge)
            edge_tokens.append(token)
            if self.current.kind == "COMMA":
                self.advance()
                continue
            break

        predicates = []
        if self.current.kind == "WHERE":
            self.advance()
            while True:
                predicates.append(self.parse_predicate())
                if self.current.kind == "AND":
                    self.advance()
                    continue
                break

        self.expect("RETURN", "RETURN")
        variables = tuple(sorted({v for e in edges for v in e}))
        pattern = MatchPattern(edges=tuple(edges), variables=variables)
        self.check_pattern(edges, edge_tokens)
        self.check_predicates(predicates, variables)

        tree: Node = pattern
        if predicates:
            tree = Filter(child=tree, predicates=tuple(p for p, _ in predicates))
        tree = self.parse_returns(tree, variables)
        token = self.current
        if token.kind != "EOF":
            self.syntax_error(
                f"unexpected trailing input {token.value!r}", token
            )
        return tree

    def parse_edge(self) -> Tuple[Tuple[str, str], Token]:
        open_token = self.expect("LPAREN", "'('")
        a = self.expect("IDENT", "a variable name").value
        self.expect("RPAREN", "')'")
        self.expect("DASH", "'-'")
        self.expect("LPAREN", "'('")
        b = self.expect("IDENT", "a variable name").value
        self.expect("RPAREN", "')'")
        return (a, b), open_token

    def parse_operand(self) -> Tuple[_Operand, Token]:
        token = self.current
        if token.kind == "IDENT":
            self.advance()
            self.expect("DOT", "'.' (variables may only appear as var.label)")
            prop = self.expect("IDENT", "a property name after '.'")
            return _Property(token.value, prop.value, token), token
        if token.kind == "STRING":
            self.advance()
            return token.value, token
        if token.kind == "INT":
            self.advance()
            return int(token.value), token
        return self.syntax_error(
            "expected a predicate operand (var.label, a string, or an integer)"
        )

    def parse_predicate(self):
        left, left_token = self.parse_operand()
        op_token = self.current
        if op_token.kind == "EQ":
            op = "="
        elif op_token.kind == "NEQ":
            op = "!="
        else:
            self.syntax_error("expected '=' or '!=' in predicate", op_token)
        self.advance()
        right, right_token = self.parse_operand()

        for operand, token in ((left, left_token), (right, right_token)):
            if isinstance(operand, _Property) and operand.prop != "label":
                self.semantic_error(
                    f"unsupported property '{operand.prop}' "
                    "(only .label is supported)",
                    token,
                )
        if isinstance(left, _Property) and isinstance(right, _Property):
            self.semantic_error(
                "label-to-label comparisons are not supported", op_token
            )
        if isinstance(left, _Property) or isinstance(right, _Property):
            prop, prop_token = (
                (left, left_token)
                if isinstance(left, _Property)
                else (right, right_token)
            )
            value = right if isinstance(left, _Property) else left
            if op != "=":
                self.semantic_error(
                    "only equality label predicates are supported "
                    "(var.label = 'X')",
                    op_token,
                )
            if not isinstance(value, str):
                value_token = right_token if isinstance(left, _Property) else left_token
                self.semantic_error(
                    "label predicates compare against a string literal",
                    value_token,
                )
            return LabelPredicate(prop.var, value), prop_token
        return ConstPredicate(left, op, right), left_token

    def parse_returns(self, tree: Node, variables: Tuple[str, ...]) -> Node:
        token = self.current
        if token.kind == "STAR":
            self.advance()
            return tree
        if token.kind == "COUNT":
            self.advance()
            self.expect("LPAREN", "'(' after COUNT")
            self.expect("STAR", "'*' inside COUNT(...)")
            self.expect("RPAREN", "')' after COUNT(*")
            group_by: Optional[str] = None
            if self.current.kind == "GROUP":
                self.advance()
                self.expect("BY", "BY after GROUP")
                var_token = self.expect("IDENT", "a variable name after GROUP BY")
                if var_token.value not in variables:
                    self.semantic_error(
                        f"unknown variable '{var_token.value}' in GROUP BY",
                        var_token,
                    )
                group_by = var_token.value
            return Aggregate(child=tree, function="count", group_by=group_by)
        if token.kind == "IDENT":
            columns: List[str] = []
            while True:
                var_token = self.expect("IDENT", "a variable name")
                if var_token.value not in variables:
                    self.semantic_error(
                        f"unknown variable '{var_token.value}' in RETURN",
                        var_token,
                    )
                columns.append(var_token.value)
                if self.current.kind == "COMMA":
                    self.advance()
                    continue
                break
            return Project(child=tree, columns=tuple(columns))
        return self.syntax_error(
            "expected '*', COUNT(*), or a list of variables after RETURN"
        )

    # ----------------------------------------------------------- semantics
    def check_pattern(self, edges, edge_tokens) -> None:
        seen = set()
        for (a, b), token in zip(edges, edge_tokens):
            if a == b:
                self.semantic_error(
                    f"self-loop edge ({a})-({b}) is not allowed", token
                )
            key = (a, b) if a <= b else (b, a)
            if key in seen:
                self.semantic_error(
                    f"duplicate pattern edge ({a})-({b})", token
                )
            seen.add(key)
        # The engine requires a connected pattern graph; check here so
        # the error points at the query text, not at PatternGraph().
        adjacency = {}
        for a, b in edges:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        variables = sorted(adjacency)
        frontier = [variables[0]]
        reached = {variables[0]}
        while frontier:
            for neighbor in adjacency[frontier.pop()]:
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        if len(reached) != len(variables):
            missing = sorted(set(variables) - reached)[0]
            token = next(
                t for (a, b), t in zip(edges, edge_tokens)
                if missing in (a, b)
            )
            self.semantic_error(
                "pattern is disconnected "
                f"(variable '{missing}' is not reachable from "
                f"'{variables[0]}')",
                token,
            )

    def check_predicates(self, predicates, variables) -> None:
        for predicate, token in predicates:
            if isinstance(predicate, LabelPredicate):
                if predicate.var not in variables:
                    self.semantic_error(
                        f"unknown variable '{predicate.var}' in WHERE",
                        token,
                    )


def parse_query(text: str) -> Node:
    """Parse BENU-QL text into a logical algebra tree."""
    if not text or not text.strip():
        raise QuerySyntaxError("empty query", line=1, column=1, source=text)
    return _Parser(text).parse()
