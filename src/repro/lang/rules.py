"""The rule-based logical optimizer.

Rules are plain functions ``Node -> Node`` (identity when they don't
apply), wrapped in :class:`Rule` for a stable name, and fired to
fixpoint by :func:`fire_rules` — the raco ``compile.py`` shape: each
pass applies every rule bottom-up over the whole tree, and the loop
stops when a full pass changes nothing.  Frozen dataclasses make the
"changed?" check plain ``==``.

The catalog (rule names double as telemetry counter labels):

``push-label-filter``
    move ``var.label = 'X'`` predicates out of a ``Filter`` into the
    ``MatchPattern`` leaf, where lowering turns them into candidate-pool
    intersections; two different labels on one variable prove the query
    empty (``unsatisfiable``).
``fold-constant-predicate``
    evaluate constant comparisons: true predicates disappear, a false
    one marks the pattern unsatisfiable and drops the remaining
    predicates (the query is empty regardless).
``drop-empty-filter``
    a ``Filter`` with no predicates left is the identity.
``drop-projection-under-aggregate``
    ``COUNT(*)`` ignores columns, so a ``Project`` beneath an
    ``Aggregate`` is dead.
``drop-identity-projection``
    ``RETURN a, b, c`` listing every variable in sorted order is
    ``RETURN *``.
``detect-count-only``
    an ungrouped ``COUNT(*)`` sitting directly on the pattern can run
    in the engine's count mode — no match materialization at all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Tuple

from .algebra import (
    Aggregate,
    ConstPredicate,
    Filter,
    LabelPredicate,
    MatchPattern,
    Node,
    Project,
)


@dataclass(frozen=True)
class Rule:
    name: str
    fn: Callable[[Node], Node]

    def __call__(self, node: Node) -> Node:
        return self.fn(node)


def _push_label_filter(node: Node) -> Node:
    if not isinstance(node, Filter) or not isinstance(node.child, MatchPattern):
        return node
    pattern = node.child
    kept = []
    labels = dict(pattern.labels)
    unsatisfiable = pattern.unsatisfiable
    for predicate in node.predicates:
        if isinstance(predicate, LabelPredicate):
            existing = labels.get(predicate.var)
            if existing is not None and existing != predicate.label:
                # a.label = 'X' AND a.label = 'Y' — provably empty.
                unsatisfiable = True
            labels[predicate.var] = labels.get(predicate.var, predicate.label)
        else:
            kept.append(predicate)
    new_labels = tuple(sorted(labels.items()))
    if new_labels == pattern.labels and unsatisfiable == pattern.unsatisfiable:
        return node
    new_pattern = replace(
        pattern, labels=new_labels, unsatisfiable=unsatisfiable
    )
    return Filter(child=new_pattern, predicates=tuple(kept))


def _fold_constant_predicate(node: Node) -> Node:
    if not isinstance(node, Filter):
        return node
    kept = []
    falsified = False
    for predicate in node.predicates:
        if isinstance(predicate, ConstPredicate):
            if predicate.evaluate():
                continue
            falsified = True
            break
        kept.append(predicate)
    if falsified:
        pattern = node.child
        while isinstance(pattern, Filter):
            pattern = pattern.child
        if isinstance(pattern, MatchPattern):
            return replace(pattern, unsatisfiable=True)
        return node
    if len(kept) == len(node.predicates):
        return node
    return Filter(child=node.child, predicates=tuple(kept))


def _drop_empty_filter(node: Node) -> Node:
    if isinstance(node, Filter) and not node.predicates:
        return node.child
    return node


def _drop_projection_under_aggregate(node: Node) -> Node:
    if isinstance(node, Aggregate) and isinstance(node.child, Project):
        return replace(node, child=node.child.child)
    return node


def _drop_identity_projection(node: Node) -> Node:
    if (
        isinstance(node, Project)
        and isinstance(node.child, MatchPattern)
        and node.columns == node.child.variables
    ):
        return node.child
    return node


def _detect_count_only(node: Node) -> Node:
    if (
        isinstance(node, Aggregate)
        and node.function == "count"
        and node.group_by is None
        and not node.count_only
        and isinstance(node.child, MatchPattern)
    ):
        return replace(node, count_only=True)
    return node


RULES: Tuple[Rule, ...] = (
    Rule("push-label-filter", _push_label_filter),
    Rule("fold-constant-predicate", _fold_constant_predicate),
    Rule("drop-empty-filter", _drop_empty_filter),
    Rule("drop-projection-under-aggregate", _drop_projection_under_aggregate),
    Rule("drop-identity-projection", _drop_identity_projection),
    Rule("detect-count-only", _detect_count_only),
)

_MAX_PASSES = 32  # far beyond any real fixpoint; guards a buggy rule


def apply_everywhere(node: Node, rule: Rule) -> Node:
    """Apply ``rule`` bottom-up at every position in the tree."""
    rewritten = node.map_children(lambda child: apply_everywhere(child, rule))
    return rule(rewritten)


def fire_rules(
    node: Node, rules: Tuple[Rule, ...] = RULES
) -> Tuple[Node, Tuple[str, ...]]:
    """Fire ``rules`` to fixpoint; returns (tree, names of rules that fired)."""
    fired: List[str] = []
    for _ in range(_MAX_PASSES):
        changed = False
        for rule in rules:
            rewritten = apply_everywhere(node, rule)
            if rewritten != node:
                fired.append(rule.name)
                node = rewritten
                changed = True
        if not changed:
            return node, tuple(fired)
    raise RuntimeError(
        f"logical optimizer did not reach fixpoint after {_MAX_PASSES} passes"
    )
