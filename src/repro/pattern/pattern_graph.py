"""PatternGraph: a pattern plus its cached analysis.

Bundles everything plan generation asks of a pattern graph — automorphism
group, symmetry-breaking partial order, SE classes, vertex covers — behind
one object, computed once.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..graph.graph import Graph, Vertex
from .automorphism import automorphism_count, automorphisms
from .equivalence import class_index, equivalence_classes
from .symmetry import Condition, symmetry_breaking_conditions
from .vertex_cover import cover_prefix_length, minimum_vertex_cover


class PatternGraph:
    """A connected pattern graph with cached structural analysis.

    >>> from repro.graph.patterns import TRIANGLE
    >>> p = PatternGraph(TRIANGLE)
    >>> p.num_automorphisms
    6
    >>> p.symmetry_conditions
    [(1, 2), (1, 3), (2, 3)]
    """

    def __init__(self, graph: Graph, name: str = "pattern") -> None:
        if graph.num_vertices == 0:
            raise ValueError("pattern graph must be non-empty")
        if not graph.is_connected():
            raise ValueError(
                "pattern graph must be connected; decompose a disconnected "
                "pattern into components and enumerate each separately "
                "(Section II-A)"
            )
        self.graph = graph
        self.name = name

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        return self.graph.vertices

    @property
    def n(self) -> int:
        """n = |V(P)|."""
        return self.graph.num_vertices

    @property
    def m(self) -> int:
        """m = |E(P)|."""
        return self.graph.num_edges

    def neighbors(self, u: Vertex) -> FrozenSet[Vertex]:
        return self.graph.neighbors(u)

    def degree(self, u: Vertex) -> int:
        return self.graph.degree(u)

    # ------------------------------------------------------------------
    @cached_property
    def automorphisms(self) -> List[Dict[Vertex, Vertex]]:
        return automorphisms(self.graph)

    @cached_property
    def num_automorphisms(self) -> int:
        return automorphism_count(self.graph)

    @cached_property
    def symmetry_conditions(self) -> List[Condition]:
        """Partial order (lo, hi) pairs: f(lo) ≺ f(hi)."""
        return symmetry_breaking_conditions(self.graph)

    @cached_property
    def se_classes(self) -> List[List[Vertex]]:
        return equivalence_classes(self.graph)

    @cached_property
    def se_class_index(self) -> Dict[Vertex, int]:
        return class_index(self.graph)

    @cached_property
    def min_vertex_cover(self) -> FrozenSet[Vertex]:
        return minimum_vertex_cover(self.graph)

    def cover_prefix(self, order: Sequence[Vertex]) -> int:
        """Shortest prefix of ``order`` forming a vertex cover (VCBC)."""
        return cover_prefix_length(self.graph, order)

    def __repr__(self) -> str:
        return f"PatternGraph({self.name!r}, n={self.n}, m={self.m})"
