"""Backtracking (sub)graph isomorphism — the correctness oracle.

This is a direct, unoptimized implementation of Algorithm 1 from the paper
(the classic backtracking framework of Lee et al., PVLDB'12).  It plays two
roles in the reproduction:

* the *oracle* that every BENU execution-plan variant is tested against, and
* the automorphism enumerator (matching a pattern against itself).

It deliberately stays simple: candidates come from intersecting adjacency
sets of already-mapped neighbors, exactly the RefineCandidates rule of
Section III-B, with no plan-level optimizations.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..graph.graph import Graph, Vertex

Match = Tuple[Vertex, ...]


def _default_order(pattern: Graph) -> List[Vertex]:
    """A connectivity-respecting matching order (greedy: max mapped-neighbors)."""
    remaining = set(pattern.vertices)
    order: List[Vertex] = []
    if not remaining:
        return order
    # Start from a max-degree vertex to constrain early.
    first = max(remaining, key=lambda v: (pattern.degree(v), -v))
    order.append(first)
    remaining.discard(first)
    while remaining:
        def mapped_neighbors(v: Vertex) -> int:
            return sum(1 for w in pattern.neighbors(v) if w in order)

        nxt = max(remaining, key=lambda v: (mapped_neighbors(v), pattern.degree(v), -v))
        order.append(nxt)
        remaining.discard(nxt)
    return order


def enumerate_matches(
    pattern: Graph,
    data: Graph,
    order: Optional[Sequence[Vertex]] = None,
    partial_order: Sequence[Tuple[Vertex, Vertex]] = (),
) -> Iterator[Match]:
    """Yield every match f of ``pattern`` in ``data`` (Definition 1).

    A match is reported as a tuple ``(f_1, ..., f_n)`` indexed by sorted
    pattern-vertex position, matching the paper's ``f = (f1, ..., fn)``
    notation.

    Parameters
    ----------
    order:
        Matching order over pattern vertices; defaults to a greedy
        connectivity order.
    partial_order:
        Symmetry-breaking constraints: pairs ``(u_i, u_j)`` meaning
        ``f(u_i) < f(u_j)`` under the integer order on data vertices (the
        data graph is assumed relabeled so ``<`` realizes ≺).
    """
    pattern_vertices = pattern.vertices
    if not pattern_vertices:
        yield ()
        return
    if order is None:
        order = _default_order(pattern)
    else:
        order = list(order)
        if sorted(order) != list(pattern_vertices):
            raise ValueError("order must be a permutation of the pattern vertices")

    index_of = {u: i for i, u in enumerate(pattern_vertices)}
    # Constraints indexed by the *later* vertex in the matching order.
    position = {u: i for i, u in enumerate(order)}
    smaller_than: Dict[Vertex, List[Vertex]] = {u: [] for u in pattern_vertices}
    greater_than: Dict[Vertex, List[Vertex]] = {u: [] for u in pattern_vertices}
    for lo, hi in partial_order:
        if position[lo] < position[hi]:
            greater_than[hi].append(lo)  # f(hi) must be > f(lo)
        else:
            smaller_than[lo].append(hi)  # f(lo) must be < f(hi)

    mapping: Dict[Vertex, Vertex] = {}
    used: set = set()

    def candidates(u: Vertex) -> Iterator[Vertex]:
        mapped_nbrs = [mapping[w] for w in pattern.neighbors(u) if w in mapping]
        if mapped_nbrs:
            pool = data.neighbors(mapped_nbrs[0])
            for fv in mapped_nbrs[1:]:
                pool = pool & data.neighbors(fv)
            it = iter(pool)
        else:
            it = iter(data.vertices)
        for v in it:
            if v in used:
                continue
            if any(v <= mapping[w] for w in greater_than[u] if w in mapping):
                continue
            if any(v >= mapping[w] for w in smaller_than[u] if w in mapping):
                continue
            yield v

    def search(depth: int) -> Iterator[Match]:
        if depth == len(order):
            out = [0] * len(pattern_vertices)
            for u, v in mapping.items():
                out[index_of[u]] = v
            yield tuple(out)
            return
        u = order[depth]
        for v in candidates(u):
            mapping[u] = v
            used.add(v)
            yield from search(depth + 1)
            used.discard(v)
            del mapping[u]

    yield from search(0)


def count_matches(
    pattern: Graph,
    data: Graph,
    partial_order: Sequence[Tuple[Vertex, Vertex]] = (),
) -> int:
    """Number of matches of ``pattern`` in ``data``."""
    return sum(1 for _ in enumerate_matches(pattern, data, partial_order=partial_order))


def are_isomorphic(g1: Graph, g2: Graph) -> bool:
    """Graph isomorphism test (exact, exponential — for small graphs)."""
    if (
        g1.num_vertices != g2.num_vertices
        or g1.num_edges != g2.num_edges
        or g1.degree_sequence() != g2.degree_sequence()
    ):
        return False
    for f in enumerate_matches(g1, g2):
        # A match is an injective homomorphism; with equal edge counts on
        # equal vertex counts it is an isomorphism.
        return True
    return False


def find_subgraph_instances(pattern: Graph, data: Graph) -> Iterator[FrozenSetPair]:
    """Yield each subgraph of ``data`` isomorphic to ``pattern`` exactly once.

    Subgraphs are identified by their (frozen) edge sets.  This is the slow
    but unambiguous ground truth for Definition 2: matches deduplicated by
    the subgraph they induce.
    """
    seen = set()
    pattern_edges = list(pattern.edges())
    pattern_vertices = pattern.vertices
    index_of = {u: i for i, u in enumerate(pattern_vertices)}
    for match in enumerate_matches(pattern, data):
        edge_image = frozenset(
            frozenset((match[index_of[a]], match[index_of[b]]))
            for a, b in pattern_edges
        )
        if edge_image not in seen:
            seen.add(edge_image)
            yield edge_image


# Typing helper for the generator above (kept after use for readability).
FrozenSetPair = frozenset
