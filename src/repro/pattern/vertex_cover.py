"""Vertex covers of pattern graphs — the basis of VCBC compression (§IV-B).

VCBC compresses matching results around a vertex cover V_c of P: matches of
the induced core(P) = P(V_c) are *helves*, and each non-cover vertex's
images are kept as a *conditional image set*.  The BENU plan transformation
needs the shortest prefix of a matching order that covers every pattern
edge.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Sequence

from ..graph.graph import Graph, Vertex


def is_vertex_cover(pattern: Graph, cover: Iterable[Vertex]) -> bool:
    """True iff every edge of ``pattern`` has an endpoint in ``cover``."""
    cover_set = set(cover)
    return all(u in cover_set or v in cover_set for u, v in pattern.edges())


def cover_prefix_length(pattern: Graph, order: Sequence[Vertex]) -> int:
    """Length k of the shortest order prefix forming a vertex cover.

    The paper's VCBC transformation: "assume the first k pattern vertices in
    O can form a vertex cover V_c of P while the first k−1 vertices cannot."

    Raises ``ValueError`` if even the full order is not a cover (impossible
    for a permutation of V(P)).
    """
    uncovered = set(map(frozenset, pattern.edges()))
    if not uncovered:
        return 0
    for k, u in enumerate(order, start=1):
        uncovered = {e for e in uncovered if u not in e}
        if not uncovered:
            return k
    if pattern.num_edges == 0:
        return 0
    raise ValueError("order does not cover the pattern edges")


def minimum_vertex_cover(pattern: Graph) -> FrozenSet[Vertex]:
    """A minimum vertex cover, by exhaustive search (patterns are tiny)."""
    vertices = pattern.vertices
    for size in range(len(vertices) + 1):
        for subset in combinations(vertices, size):
            if is_vertex_cover(pattern, subset):
                return frozenset(subset)
    return frozenset(vertices)


def minimal_covers(pattern: Graph, size: Optional[int] = None) -> List[FrozenSet[Vertex]]:
    """All vertex covers of the given (or minimum) size."""
    if size is None:
        size = len(minimum_vertex_cover(pattern))
    return [
        frozenset(subset)
        for subset in combinations(pattern.vertices, size)
        if is_vertex_cover(pattern, subset)
    ]
