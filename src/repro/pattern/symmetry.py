"""Symmetry breaking à la Grochow–Kellis (the paper's Section II-A).

Automorphisms of P make several matches correspond to one subgraph.  The
symmetry-breaking technique [Grochow & Kellis, RECOMB'07] computes a partial
order < on V(P) such that, under the extra constraints
``u_i < u_j ⇒ f(u_i) ≺ f(u_j)``, every subgraph isomorphic to P has exactly
one surviving match.

Algorithm (the standard one): repeatedly pick a vertex in a largest
non-trivial orbit of the current automorphism subgroup, constrain it to be
≺-minimal within its orbit, and descend into its stabilizer until the group
is trivial.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph.graph import Graph, Vertex
from .automorphism import automorphisms, stabilizer

#: A symmetry-breaking condition ``(lo, hi)`` meaning f(lo) ≺ f(hi).
Condition = Tuple[Vertex, Vertex]


def symmetry_breaking_conditions(pattern: Graph) -> List[Condition]:
    """Compute a partial order on V(P) that breaks all automorphisms.

    Returns pairs ``(lo, hi)`` meaning the match must satisfy
    ``f(lo) ≺ f(hi)``.  The list is empty iff Aut(P) is trivial.

    >>> from repro.graph.graph import complete_graph
    >>> symmetry_breaking_conditions(complete_graph(3))
    [(1, 2), (1, 3), (2, 3)]
    """
    group = automorphisms(pattern)
    conditions: List[Condition] = []
    while len(group) > 1:
        # Orbits under the current subgroup.
        orbit_of: Dict[Vertex, set] = {}
        for v in pattern.vertices:
            orbit_of.setdefault(v, set())
            for g in group:
                orbit_of[v].add(g[v])
        # Pick the anchor: a vertex in a largest non-trivial orbit
        # (smallest id for determinism).
        candidates = [v for v in pattern.vertices if len(orbit_of[v]) > 1]
        anchor = max(candidates, key=lambda v: (len(orbit_of[v]), -v))
        for other in sorted(orbit_of[anchor]):
            if other != anchor:
                conditions.append((anchor, other))
        group = stabilizer(group, anchor)
    return conditions


def conditions_as_map(conditions: List[Condition]) -> Dict[Vertex, Dict[str, List[Vertex]]]:
    """Index conditions by vertex for plan generation.

    For each vertex ``u`` returns ``{"lt": [...], "gt": [...]}`` — vertices
    that must map strictly greater / smaller than ``u``'s image.
    """
    out: Dict[Vertex, Dict[str, List[Vertex]]] = {}
    for lo, hi in conditions:
        out.setdefault(lo, {"lt": [], "gt": []})["lt"].append(hi)
        out.setdefault(hi, {"lt": [], "gt": []})["gt"].append(lo)
    return out


def satisfies_conditions(
    match: Dict[Vertex, Vertex], conditions: List[Condition]
) -> bool:
    """Check a complete match against the partial-order constraints.

    Data-vertex comparison uses plain integer ``<``; the data graph is
    assumed relabeled so that integer order realizes the total order ≺.
    """
    return all(match[lo] < match[hi] for lo, hi in conditions)
