"""Pattern-graph analysis: isomorphism, automorphisms, symmetry breaking."""

from .canonical import (
    canonical_form,
    canonical_key,
    canonical_order,
    canonical_relabeling,
    wl_colors,
)
from .automorphism import (
    automorphism_count,
    automorphisms,
    is_automorphism,
    orbits,
    stabilizer,
)
from .equivalence import (
    class_index,
    equivalence_classes,
    passes_dual_condition,
    syntactically_equivalent,
)
from .isomorphism import (
    are_isomorphic,
    count_matches,
    enumerate_matches,
    find_subgraph_instances,
)
from .pattern_graph import PatternGraph
from .symmetry import (
    Condition,
    conditions_as_map,
    satisfies_conditions,
    symmetry_breaking_conditions,
)
from .vertex_cover import (
    cover_prefix_length,
    is_vertex_cover,
    minimal_covers,
    minimum_vertex_cover,
)

__all__ = [
    "canonical_form",
    "canonical_key",
    "canonical_order",
    "canonical_relabeling",
    "wl_colors",
    "automorphism_count",
    "automorphisms",
    "is_automorphism",
    "orbits",
    "stabilizer",
    "class_index",
    "equivalence_classes",
    "passes_dual_condition",
    "syntactically_equivalent",
    "are_isomorphic",
    "count_matches",
    "enumerate_matches",
    "find_subgraph_instances",
    "PatternGraph",
    "Condition",
    "conditions_as_map",
    "satisfies_conditions",
    "symmetry_breaking_conditions",
    "cover_prefix_length",
    "is_vertex_cover",
    "minimal_covers",
    "minimum_vertex_cover",
]
