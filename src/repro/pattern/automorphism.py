"""Automorphism groups of pattern graphs.

An automorphism of P is an isomorphism P → P.  Pattern graphs are tiny
(n ≤ 10 in the paper), so enumerating Aut(P) with the backtracking matcher
is instant.  Automorphisms feed the symmetry-breaking technique (Section
II-A) and explain duplicate-match multiplicities in tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..graph.graph import Graph, Vertex
from .isomorphism import enumerate_matches

#: An automorphism as a mapping tuple: position i holds the image of the
#: i-th smallest pattern vertex.
Automorphism = Tuple[Vertex, ...]


def automorphisms(pattern: Graph) -> List[Dict[Vertex, Vertex]]:
    """All automorphisms of ``pattern`` as vertex→vertex dicts.

    >>> from repro.graph.graph import complete_graph
    >>> len(automorphisms(complete_graph(3)))
    6
    """
    vertices = pattern.vertices
    result = []
    for match in enumerate_matches(pattern, pattern):
        mapping = dict(zip(vertices, match))
        # An injective homomorphism of a finite graph onto itself with the
        # same edge count is an automorphism.
        result.append(mapping)
    return result


def automorphism_count(pattern: Graph) -> int:
    """|Aut(P)| — the duplicate multiplicity without symmetry breaking."""
    return len(automorphisms(pattern))


def orbits(pattern: Graph, group: List[Dict[Vertex, Vertex]] = None) -> List[FrozenSet[Vertex]]:
    """Vertex orbits under Aut(P) (or a supplied subgroup)."""
    if group is None:
        group = automorphisms(pattern)
    seen: Set[Vertex] = set()
    out: List[FrozenSet[Vertex]] = []
    for v in pattern.vertices:
        if v in seen:
            continue
        orbit = frozenset(g[v] for g in group)
        seen.update(orbit)
        out.append(orbit)
    return out


def stabilizer(
    group: List[Dict[Vertex, Vertex]], fixed: Vertex
) -> List[Dict[Vertex, Vertex]]:
    """The subgroup of ``group`` fixing ``fixed`` pointwise."""
    return [g for g in group if g[fixed] == fixed]


def is_automorphism(pattern: Graph, mapping: Dict[Vertex, Vertex]) -> bool:
    """Check that ``mapping`` is a valid automorphism of ``pattern``."""
    if sorted(mapping) != list(pattern.vertices):
        return False
    if sorted(mapping.values()) != list(pattern.vertices):
        return False
    return all(
        pattern.has_edge(mapping[u], mapping[v]) for u, v in pattern.edges()
    )
