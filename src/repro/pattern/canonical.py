"""Canonical forms for pattern graphs.

The query service caches execution plans per *structure*, not per
labeling: two clients submitting the same pattern with different vertex
ids should hit the same cached plan.  That requires a canonical form —
a relabeling of the pattern onto ``0..n-1`` that every isomorphic copy
maps to identically.

The algorithm is exact and sized for pattern graphs (n ≤ ~10, the
paper's patterns have 3–6 vertices):

1. refine vertex colors by iterated neighborhood hashing (1-WL), which
   is isomorphism-invariant and shrinks the search space;
2. search over all orderings that list vertices in non-decreasing final
   color (vertices are only interchangeable within a color class), and
   pick the ordering whose adjacency encoding is lexicographically
   smallest, pruning orderings whose partial encoding already exceeds
   the best.

Because step 1 is invariant and step 2 minimizes over every
color-respecting ordering, isomorphic graphs produce identical
canonical edge sets; :func:`canonical_key` hashes that edge set.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..graph.graph import Graph, Vertex

#: Refinement rounds; n rounds always suffice to stabilize on n vertices.
_WL_ROUNDS_CAP = 16


def wl_colors(graph: Graph) -> Dict[Vertex, int]:
    """Stable 1-WL vertex colors, as dense ints (isomorphism-invariant).

    >>> from repro.graph.graph import path_graph
    >>> colors = wl_colors(path_graph(3))
    >>> colors[1] == colors[3], colors[1] == colors[2]
    (True, False)
    """
    colors = {v: graph.degree(v) for v in graph.vertices}
    for _ in range(min(graph.num_vertices, _WL_ROUNDS_CAP)):
        signatures = {
            v: (colors[v], tuple(sorted(colors[w] for w in graph.neighbors(v))))
            for v in graph.vertices
        }
        palette = {sig: i for i, sig in enumerate(sorted(set(signatures.values())))}
        refined = {v: palette[signatures[v]] for v in graph.vertices}
        if len(set(refined.values())) == len(set(colors.values())):
            return refined
        colors = refined
    return colors


def _encode(graph: Graph, order: List[Vertex]) -> Tuple[int, ...]:
    """Adjacency encoding of a (possibly partial) ordering.

    Row i lists, for each earlier position j < i, whether order[i] is
    adjacent to order[j]; flattening the rows gives a total order on
    orderings that two isomorphic graphs minimize to the same value.
    """
    bits: List[int] = []
    for i, v in enumerate(order):
        nbrs = graph.neighbors(v)
        for j in range(i):
            bits.append(1 if order[j] in nbrs else 0)
    return tuple(bits)


def canonical_order(graph: Graph) -> List[Vertex]:
    """The vertex ordering realizing the canonical form.

    Position k in the returned list becomes canonical id k.
    """
    if graph.num_vertices == 0:
        return []
    colors = wl_colors(graph)
    # Group vertices by color; orderings enumerate color classes in
    # ascending color, permuting only within a class.
    classes: Dict[int, List[Vertex]] = {}
    for v in graph.vertices:
        classes.setdefault(colors[v], []).append(v)
    class_sequence = [sorted(classes[c]) for c in sorted(classes)]

    best_order: Optional[List[Vertex]] = None
    best_bits: Optional[List[int]] = None
    order: List[Vertex] = []
    bits: List[int] = []
    used: set = set()

    def extend() -> None:
        nonlocal best_order, best_bits
        depth = len(order)
        if depth == graph.num_vertices:
            if best_bits is None or bits < best_bits:
                best_bits = list(bits)
                best_order = list(order)
            return
        # The color class the next position draws from is fixed by depth.
        consumed = 0
        for cls in class_sequence:
            if consumed + len(cls) > depth:
                candidates = [v for v in cls if v not in used]
                break
            consumed += len(cls)
        for v in candidates:
            nbrs = graph.neighbors(v)
            row = [1 if order[j] in nbrs else 0 for j in range(depth)]
            bits.extend(row)
            # Prune: a partial encoding lexicographically above the best
            # complete one can never win (prefixes align position-wise
            # because row lengths depend only on depth).
            if best_bits is None or bits <= best_bits[: len(bits)]:
                order.append(v)
                used.add(v)
                extend()
                used.discard(v)
                order.pop()
            del bits[len(bits) - len(row):]

    extend()
    assert best_order is not None
    return best_order


def canonical_relabeling(graph: Graph) -> Dict[Vertex, Vertex]:
    """Mapping original-vertex → canonical id in ``0..n-1``.

    Isomorphic graphs relabel onto the *same* canonical graph:

    >>> g1 = Graph([(1, 2), (2, 3)])
    >>> g2 = Graph([(7, 9), (9, 4)])
    >>> g1.relabel(canonical_relabeling(g1)) == g2.relabel(canonical_relabeling(g2))
    True
    """
    return {v: i for i, v in enumerate(canonical_order(graph))}


def canonical_form(graph: Graph) -> Tuple[Graph, Dict[Vertex, Vertex]]:
    """``(canonical_graph, mapping)`` with mapping original → canonical."""
    mapping = canonical_relabeling(graph)
    return graph.relabel(mapping), mapping


def canonical_key(graph: Graph) -> str:
    """A hex digest identifying ``graph`` up to isomorphism.

    Isomorphic graphs (any vertex labels) get equal keys; non-isomorphic
    ones collide only if sha256 does.
    """
    canonical, _ = canonical_form(graph)
    payload = ";".join(
        f"{a},{b}" for a, b in sorted(tuple(sorted(e)) for e in canonical.edges())
    )
    text = f"n={canonical.num_vertices}|{payload}"
    return hashlib.sha256(text.encode("ascii")).hexdigest()
