"""Syntactic equivalence between pattern vertices (dual pruning, §IV-D).

Two pattern vertices are *syntactically equivalent* (SE), written
``u_i ≃ u_j``, iff ``Γ(u_i) − {u_j} = Γ(u_j) − {u_i}`` [Ren & Wang,
PVLDB'15].  Swapping two SE vertices in a matching order yields a *dual*
order whose execution plan has identical cost, so Algorithm 3 only explores
orders where, within each SE class, vertices appear in ascending id order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..graph.graph import Graph, Vertex


def syntactically_equivalent(pattern: Graph, u: Vertex, v: Vertex) -> bool:
    """True iff ``u ≃ v`` (SE relation)."""
    if u == v:
        return True
    nu = set(pattern.neighbors(u))
    nv = set(pattern.neighbors(v))
    nu.discard(v)
    nv.discard(u)
    return nu == nv


def equivalence_classes(pattern: Graph) -> List[List[Vertex]]:
    """Partition V(P) into SE classes (each sorted ascending).

    SE is an equivalence relation, so a simple greedy grouping suffices.
    """
    classes: List[List[Vertex]] = []
    for v in pattern.vertices:
        for cls in classes:
            if syntactically_equivalent(pattern, cls[0], v):
                cls.append(v)
                break
        else:
            classes.append([v])
    return classes


def class_index(pattern: Graph) -> Dict[Vertex, int]:
    """Map each vertex to the index of its SE class."""
    out: Dict[Vertex, int] = {}
    for i, cls in enumerate(equivalence_classes(pattern)):
        for v in cls:
            out[v] = i
    return out


def passes_dual_condition(
    pattern: Graph,
    prefix: Sequence[Vertex],
    candidate: Vertex,
    se_classes: Dict[Vertex, int] = None,
) -> bool:
    """Dual-pruning check of Algorithm 3 line 11.

    ``candidate`` may extend ``prefix`` only if every SE-equivalent vertex
    with a smaller id is already in the prefix — otherwise the order is the
    dual of one we will explore anyway.
    """
    if se_classes is None:
        se_classes = class_index(pattern)
    cls = se_classes[candidate]
    used = set(prefix)
    for v in pattern.vertices:
        if v >= candidate:
            break
        if se_classes[v] == cls and v not in used:
            return False
    return True
