"""Typed metrics with labels — the registry every BENU layer reports into.

The paper's whole evaluation is built on internal counters (DB query
volume, cache hit rates, instruction counts, per-worker makespans), so the
reproduction makes them first-class: a :class:`MetricsRegistry` holds
typed :class:`Counter`/:class:`Gauge`/:class:`Histogram` metrics keyed by
name, each optionally labeled (worker id, plan phase, instruction type).
The legacy ad-hoc stats structs (``QueryStats``, ``CacheStats``,
``TaskCounters``) gained ``record_to`` adapters that mirror themselves
into a registry, so every quantity of Figs. 7-10 and Tables IV-VI is
available through one machine-readable interface (``as_dict``).

The registry deliberately depends on nothing else in :mod:`repro` — any
layer may import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
]


class MetricError(ValueError):
    """Raised on metric misuse: kind clash, label mismatch, bad value."""


#: Bucket upper bounds for duration histograms (seconds); +inf is implicit.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)

#: Bucket upper bounds for payload-size histograms (bytes); +inf implicit.
DEFAULT_BYTES_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)

LabelKey = Tuple[str, ...]


class _Metric:
    """Shared behaviour: name, kind, label validation, sample iteration."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        self.name = name
        self.help = help
        #: Label *names*, sorted so creation-site dict ordering cannot matter.
        self.label_names: LabelKey = tuple(sorted(labels))
        self._values: Dict[LabelKey, object] = {}

    # ------------------------------------------------------------------
    def _key(self, labels: Dict[str, object]) -> LabelKey:
        if tuple(sorted(labels)) != self.label_names:
            raise MetricError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.label_names)

    def labels_of(self, key: LabelKey) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        """Yield ``(labels, value)`` pairs, insertion-ordered.

        Iterates an atomic snapshot of the label sets, so a live
        ``stats``/``metrics`` reader never races a writer thread adding
        a new label set mid-iteration.
        """
        for key, value in list(self._values.items()):
            yield self.labels_of(key), self._sample_value(value)

    def _sample_value(self, raw: object) -> object:
        return raw

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "samples": [
                {"labels": labels, "value": self._json_value(value)}
                for labels, value in self.samples()
            ],
        }

    def _json_value(self, value: object) -> object:
        return value


class Counter(_Metric):
    """A monotonically increasing count.

    >>> c = Counter("db_queries", labels=("worker",))
    >>> c.inc(3, worker=0); c.inc(worker=0); c.inc(worker=1)
    >>> c.value(worker=0), c.value(worker=1), c.total()
    (4, 1, 5)
    """

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())


class Gauge(_Metric):
    """A point-in-time value that may go up or down.

    >>> g = Gauge("cache_hit_ratio")
    >>> g.set(0.75); g.value()
    0.75
    """

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = value

    def add(self, delta: float, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + delta

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)


@dataclass
class HistogramValue:
    """Aggregated observations of one histogram label set."""

    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    #: Per-bucket (non-cumulative) observation counts; the last entry
    #: counts observations above every finite bound.
    bucket_counts: List[int] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self, bounds: Sequence[float]) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": [
                {"le": le, "n": n}
                for le, n in zip(list(bounds) + ["inf"], self.bucket_counts)
            ],
        }


class Histogram(_Metric):
    """A distribution of observed values over fixed buckets.

    >>> h = Histogram("task_seconds", buckets=(0.1, 1.0))
    >>> for v in (0.05, 0.5, 5.0): h.observe(v)
    >>> hv = h.value()
    >>> (hv.count, hv.sum, hv.bucket_counts)
    (3, 5.55, [1, 1, 1])
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ):
        super().__init__(name, help, labels)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricError(f"histogram {self.name!r} needs >= 1 bucket")

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        hv = self._values.get(key)
        if hv is None:
            hv = HistogramValue(bucket_counts=[0] * (len(self.buckets) + 1))
            self._values[key] = hv
        hv.count += 1
        hv.sum += value
        hv.min = min(hv.min, value)
        hv.max = max(hv.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                hv.bucket_counts[i] += 1
                break
        else:
            hv.bucket_counts[-1] += 1

    def value(self, **labels: object) -> HistogramValue:
        hv = self._values.get(self._key(labels))
        if hv is None:
            return HistogramValue(bucket_counts=[0] * (len(self.buckets) + 1))
        return hv

    def _json_value(self, value: HistogramValue) -> object:
        return value.as_dict(self.buckets)


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Re-requesting a name returns the existing metric; requesting it with a
    different kind or label set is an error (one name, one meaning).

    >>> reg = MetricsRegistry()
    >>> reg.counter("queries").inc(2)
    >>> reg.counter("queries").value()
    2
    >>> reg.gauge("queries")
    Traceback (most recent call last):
        ...
    repro.telemetry.registry.MetricError: metric 'queries' already registered as counter, not gauge
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help, labels, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != cls.kind:
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            if existing.label_names != tuple(sorted(labels)):
                raise MetricError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.label_names}, not {tuple(sorted(labels))}"
                )
            return existing
        metric = cls(name, help, labels, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[_Metric]:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return list(self._metrics)

    def metrics(self) -> List[_Metric]:
        return list(self._metrics.values())

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all label sets; 0 if never registered."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if not isinstance(metric, Counter):
            raise MetricError(f"metric {name!r} is a {metric.kind}, not a counter")
        return metric.total()

    def as_dict(self) -> dict:
        """A JSON-able snapshot of every metric (the export format).

        Snapshots the metric table first: a resident service exports
        while queries are still registering metrics.
        """
        return {
            name: metric.as_dict()
            for name, metric in list(self._metrics.items())
        }

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


def merge_registry_dicts(by_source: dict, label: str = "shard") -> dict:
    """Merge several :meth:`MetricsRegistry.as_dict` exports into one.

    ``by_source`` maps a source key (e.g. shard index) to one export.
    Every sample keeps its provenance: its label set gains
    ``{label: str(key)}``, Prometheus-style, so counters *sum* across
    sources by totalling label sets — nothing is conflated — while
    gauges and histograms stay attributed to the node they describe.

    >>> a = {"m": {"kind": "counter", "help": "h", "labels": [],
    ...            "samples": [{"labels": {}, "value": 2}]}}
    >>> b = {"m": {"kind": "counter", "help": "h", "labels": [],
    ...            "samples": [{"labels": {}, "value": 3}]}}
    >>> merged = merge_registry_dicts({0: a, 1: b})
    >>> sum(s["value"] for s in merged["m"]["samples"])
    5
    """
    merged: dict = {}
    for key, export in by_source.items():
        tag = str(key)
        for name, metric in export.items():
            slot = merged.get(name)
            if slot is None:
                slot = {
                    "kind": metric.get("kind"),
                    "help": metric.get("help"),
                    "labels": list(metric.get("labels", ())) + [label],
                    "samples": [],
                }
                merged[name] = slot
            for sample in metric.get("samples", ()):
                labels = dict(sample.get("labels", {}))
                labels[label] = tag
                slot["samples"].append(
                    {"labels": labels, "value": sample.get("value")}
                )
    return merged
