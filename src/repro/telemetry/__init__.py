"""Unified telemetry: metrics registry, structured tracing, profiling.

The observability spine of the reproduction.  Every layer — plan search,
codegen, the simulated cluster, workers, the distributed store and its
caches — reports into this package, and every run's
:class:`~repro.engine.results.BenuResult` carries a
:class:`TelemetrySnapshot` exposing the quantities the paper's evaluation
(Figs. 7-10, Tables IV-VI) is built on.

Layout:

* :mod:`~repro.telemetry.registry` — typed counters/gauges/histograms
  with labels;
* :mod:`~repro.telemetry.tracing` — hierarchical spans with wall *and*
  simulated durations, exportable as nested JSON or Chrome
  ``trace_event`` (open in ``chrome://tracing``);
* :mod:`~repro.telemetry.profiler` — sampling probes for the hot loop;
* :mod:`~repro.telemetry.snapshot` — the per-run registry-backed view;
* :mod:`~repro.telemetry.runtime` — :class:`TelemetryConfig` and the
  per-job :class:`Telemetry` hub.

Enable it per run::

    from repro import BenuConfig, TelemetryConfig, run_benu

    config = BenuConfig(telemetry=TelemetryConfig(trace=True, profile=True))
    result = run_benu(pattern, data, config)
    result.telemetry.write_trace("out.json")      # chrome://tracing
    result.telemetry.summary()                    # headline metrics
"""

from .events import (
    EVENT_TYPES,
    NULL_EVENTS,
    BoundEventLog,
    Event,
    EventLog,
    FileEventSink,
    NullEventLog,
    parse_event,
    stitch_event_dicts,
)
from .profiler import INSTRUCTION_SECONDS_METRIC, SamplingProfiler
from .progress import NULL_PROGRESS, NullProgress, QueryProgress
from .prometheus import render_prometheus
from .registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricError,
    MetricsRegistry,
    merge_registry_dicts,
)
from .runtime import Telemetry, TelemetryConfig
from .snapshot import TelemetrySnapshot
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "BoundEventLog",
    "Counter",
    "EVENT_TYPES",
    "Event",
    "EventLog",
    "FileEventSink",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "INSTRUCTION_SECONDS_METRIC",
    "MetricError",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_PROGRESS",
    "NULL_TRACER",
    "NullEventLog",
    "NullProgress",
    "NullTracer",
    "QueryProgress",
    "SamplingProfiler",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySnapshot",
    "Tracer",
    "merge_registry_dicts",
    "parse_event",
    "render_prometheus",
    "stitch_event_dicts",
    "validate_chrome_trace",
]
