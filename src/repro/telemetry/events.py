"""Structured query-lifecycle event log — the service's flight recorder.

The resident service handles many queries concurrently; a span tree per
query shows *where time went* but not *what happened in what order*
across queries.  This module records the lifecycle as a flat, append-only
stream of typed events — submit, admit/reject, plan-cache outcome, task
dispatch/finish, cancel, deadline, catalog eviction, slow query — each
correlated by ``query_id`` (and ``task_id`` where applicable).

Design points:

* **Ring-buffered**: the in-memory view keeps the most recent
  ``capacity`` events (a ``deque``), so a long-lived ``benu serve``
  never grows without bound; drops are counted, never silent.
* **Pluggable sinks**: every event is also fanned out to registered
  sinks — a JSONL file sink for ``benu serve --event-log``, plain
  callables for tests.
* **JSONL schema round-trips**: :meth:`Event.to_json` /
  :func:`parse_event` are inverses for every event type, so the log can
  be replayed and correlated offline.
* **Free when off**: :data:`NULL_EVENTS` is the disabled stand-in; the
  one-shot pipeline only ever touches it through ``Telemetry.events``,
  so runs without a service pay a no-op call at most per *query*, never
  per instruction.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional

__all__ = [
    "Event",
    "EventLog",
    "BoundEventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "FileEventSink",
    "parse_event",
    "EVENT_TYPES",
    "EV_QUERY_SUBMITTED",
    "EV_QUERY_REJECTED",
    "EV_QUERY_STARTED",
    "EV_PLAN_RESOLVED",
    "EV_PLAN_LOWERED",
    "EV_TASK_DISPATCHED",
    "EV_TASK_FINISHED",
    "EV_QUERY_CANCELLED",
    "EV_QUERY_FINISHED",
    "EV_CATALOG_EVICTED",
    "EV_SLOW_QUERY",
    "EV_QUERY_QERROR",
    "EV_FAULT_INJECTED",
    "EV_WORKER_CRASHED",
    "EV_TASK_RETRIED",
    "EV_REPLICA_MARKED_DEAD",
    "EV_REPLICA_MARKED_ALIVE",
]

# -- event type vocabulary --------------------------------------------------
EV_QUERY_SUBMITTED = "query_submitted"
EV_QUERY_REJECTED = "query_rejected"
EV_QUERY_STARTED = "query_started"
EV_PLAN_RESOLVED = "plan_resolved"
# BENU-QL text was lowered through the rule optimizer (rules fired +
# logical-tree size ride along as payload).
EV_PLAN_LOWERED = "plan_lowered"
EV_TASK_DISPATCHED = "task_dispatched"
EV_TASK_FINISHED = "task_finished"
EV_QUERY_CANCELLED = "query_cancel_requested"
EV_QUERY_FINISHED = "query_finished"
EV_CATALOG_EVICTED = "catalog_evicted"
EV_SLOW_QUERY = "slow_query"
EV_QUERY_QERROR = "query_qerror"
# -- fault-tolerance vocabulary (PR 10): injected faults and what the
#    stack did to survive them.
EV_FAULT_INJECTED = "fault_injected"
EV_WORKER_CRASHED = "worker_crashed"
EV_TASK_RETRIED = "task_retried"
EV_REPLICA_MARKED_DEAD = "replica_marked_dead"
EV_REPLICA_MARKED_ALIVE = "replica_marked_alive"

#: Every event type the service can emit — the schema tests iterate this.
EVENT_TYPES = (
    EV_QUERY_SUBMITTED,
    EV_QUERY_REJECTED,
    EV_QUERY_STARTED,
    EV_PLAN_RESOLVED,
    EV_PLAN_LOWERED,
    EV_TASK_DISPATCHED,
    EV_TASK_FINISHED,
    EV_QUERY_CANCELLED,
    EV_QUERY_FINISHED,
    EV_CATALOG_EVICTED,
    EV_SLOW_QUERY,
    EV_QUERY_QERROR,
    EV_FAULT_INJECTED,
    EV_WORKER_CRASHED,
    EV_TASK_RETRIED,
    EV_REPLICA_MARKED_DEAD,
    EV_REPLICA_MARKED_ALIVE,
)

#: Registry counter incremented per emitted event, labeled by type.
M_EVENTS = "benu_events_total"


@dataclass
class Event:
    """One entry of the lifecycle log.

    ``ts`` is epoch seconds (events are correlated across processes and
    sessions, so a shared absolute clock beats a per-tracer origin);
    ``query_id``/``task_id`` are the correlation keys; everything
    type-specific rides in ``fields``.
    """

    type: str
    ts: float
    query_id: Optional[str] = None
    task_id: Optional[int] = None
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        d: Dict[str, object] = {"type": self.type, "ts": self.ts}
        if self.query_id is not None:
            d["query_id"] = self.query_id
        if self.task_id is not None:
            d["task_id"] = self.task_id
        if self.fields:
            d["fields"] = dict(self.fields)
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def parse_event(line: str) -> Event:
    """Inverse of :meth:`Event.to_json`.

    >>> e = Event(EV_QUERY_STARTED, ts=12.5, query_id="q-1")
    >>> parse_event(e.to_json()) == e
    True
    """
    d = json.loads(line)
    if not isinstance(d, dict) or "type" not in d or "ts" not in d:
        raise ValueError(f"not an event record: {line!r}")
    return Event(
        type=d["type"],
        ts=d["ts"],
        query_id=d.get("query_id"),
        task_id=d.get("task_id"),
        fields=d.get("fields", {}),
    )


class FileEventSink:
    """Appends each event as one JSON line; flushes so tails stay live."""

    def __init__(self, path) -> None:
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        line = event.to_json()
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            self._fh.close()


class EventLog:
    """Thread-safe ring buffer of :class:`Event` with sink fan-out.

    >>> log = EventLog(capacity=2)
    >>> _ = log.emit(EV_QUERY_SUBMITTED, query_id="q-1")
    >>> _ = log.emit(EV_QUERY_STARTED, query_id="q-1")
    >>> _ = log.emit(EV_QUERY_FINISHED, query_id="q-1")
    >>> [e.type for e in log.events()]
    ['query_started', 'query_finished']
    >>> log.dropped
    1
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 4096,
        clock: Callable[[], float] = time.time,
        registry=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._sinks: List[Callable[[Event], None]] = []
        self._lock = threading.Lock()
        self.emitted = 0
        self._counter = (
            registry.counter(
                M_EVENTS, help="lifecycle events emitted", labels=("type",)
            )
            if registry is not None
            else None
        )

    # ------------------------------------------------------------------
    def add_sink(self, sink: Callable[[Event], None]) -> None:
        """Register a callable invoked (under the log lock) per event."""
        with self._lock:
            self._sinks.append(sink)

    def emit(
        self,
        type: str,
        query_id: Optional[str] = None,
        task_id: Optional[int] = None,
        **fields: object,
    ) -> Event:
        """Record one event; returns it (handy in tests)."""
        event = Event(
            type=type,
            ts=self._clock(),
            query_id=query_id,
            task_id=task_id,
            fields=fields,
        )
        with self._lock:
            self._ring.append(event)
            self.emitted += 1
            sinks = list(self._sinks)
        if self._counter is not None:
            self._counter.inc(type=type)
        for sink in sinks:
            sink(event)
        return event

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events that have fallen off the ring (emitted - retained)."""
        with self._lock:
            return self.emitted - len(self._ring)

    def events(
        self,
        type: Optional[str] = None,
        query_id: Optional[str] = None,
    ) -> List[Event]:
        """Retained events, oldest first, optionally filtered."""
        with self._lock:
            out: Iterable[Event] = list(self._ring)
        if type is not None:
            out = (e for e in out if e.type == type)
        if query_id is not None:
            out = (e for e in out if e.query_id == query_id)
        return list(out)

    def as_dicts(
        self,
        type: Optional[str] = None,
        query_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[dict]:
        """JSON-able view of the retained events (the protocol export)."""
        rows = [e.to_dict() for e in self.events(type=type, query_id=query_id)]
        if limit is not None and limit >= 0:
            rows = rows[-limit:]
        return rows

    def bound(self, query_id: str) -> "BoundEventLog":
        """A view that stamps ``query_id`` on every emitted event."""
        return BoundEventLog(self, query_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class BoundEventLog:
    """A view of an :class:`EventLog` that stamps every emit's query_id.

    The service hands one to each query's telemetry hub so backend task
    events correlate without the backend knowing about query ids.
    """

    __slots__ = ("_log", "query_id")

    def __init__(self, log: "EventLog", query_id: str) -> None:
        self._log = log
        self.query_id = query_id

    @property
    def enabled(self) -> bool:
        return self._log.enabled

    def emit(
        self,
        type: str,
        query_id: Optional[str] = None,
        task_id: Optional[int] = None,
        **fields: object,
    ) -> Event:
        return self._log.emit(
            type,
            query_id=query_id if query_id is not None else self.query_id,
            task_id=task_id,
            **fields,
        )


class NullEventLog:
    """Disabled event log: the whole API, none of the work.

    >>> log = NullEventLog()
    >>> log.emit(EV_QUERY_STARTED, query_id="q-1")
    >>> (len(log), log.events(), log.dropped)
    (0, [], 0)
    """

    enabled = False
    emitted = 0
    dropped = 0

    def add_sink(self, sink) -> None:
        pass

    def emit(self, type, query_id=None, task_id=None, **fields) -> None:
        return None

    def events(self, type=None, query_id=None):
        return []

    def as_dicts(self, type=None, query_id=None, limit=None):
        return []

    def bound(self, query_id: str) -> "NullEventLog":
        return self

    def __len__(self) -> int:
        return 0


#: Shared disabled log for default arguments.
NULL_EVENTS = NullEventLog()


def stitch_event_dicts(by_source: dict, label: str = "shard") -> List[dict]:
    """Interleave several nodes' event exports into one timeline.

    ``by_source`` maps a source key (e.g. shard index) to a list of
    :meth:`Event.to_dict` rows.  Events carry epoch timestamps precisely
    so they stitch across processes: the merged log is globally ordered
    by ``ts`` (ties broken by source key for determinism) and every row
    gains a ``{label: key}`` field naming the node it came from.

    >>> rows = stitch_event_dicts({
    ...     1: [{"type": "b", "ts": 2.0}],
    ...     0: [{"type": "a", "ts": 1.0}],
    ... })
    >>> [(r["type"], r["shard"]) for r in rows]
    [('a', 0), ('b', 1)]
    """
    stitched: List[dict] = []
    for key in sorted(by_source, key=str):
        for row in by_source[key]:
            tagged = dict(row)
            tagged[label] = key
            stitched.append(tagged)
    stitched.sort(key=lambda r: (r.get("ts", 0.0), str(r.get(label))))
    return stitched
