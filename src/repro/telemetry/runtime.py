"""Run-time wiring: :class:`TelemetryConfig` and the :class:`Telemetry` hub.

``BenuConfig.telemetry`` holds a :class:`TelemetryConfig` (or None, the
default, meaning *disabled*: no tracing, no profiling, no per-query
hooks).  A metrics snapshot is still produced on every run — it is built
once at end-of-run from the same aggregated stats the result already
carries, so the disabled path stays identical to the pre-telemetry
engine on the hot loop.

The :class:`Telemetry` object is the per-job hub the engine threads
through its layers: it owns the tracer and builds per-run profilers and
snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .events import NULL_EVENTS, EventLog, NullEventLog
from .profiler import INSTRUCTION_SECONDS_METRIC, SamplingProfiler
from .registry import MetricsRegistry
from .snapshot import TelemetrySnapshot
from .tracing import NULL_TRACER, NullTracer, Tracer

__all__ = ["TelemetryConfig", "Telemetry"]


@dataclass(frozen=True)
class TelemetryConfig:
    """What to instrument when telemetry is enabled.

    >>> TelemetryConfig().trace
    True
    >>> TelemetryConfig(profile=True, sample_every=16).sample_every
    16
    """

    #: Record the span tree + simulated timeline (chrome://tracing export).
    trace: bool = True
    #: Compile sampling probes into the hot loop (per-instruction timings).
    profile: bool = False
    #: Profile every Nth instruction site execution.
    sample_every: int = 64
    #: Cap on simulated-timeline slices kept (excess is counted, not kept).
    max_sim_events: int = 50_000

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if self.max_sim_events < 0:
            raise ValueError("max_sim_events must be >= 0")


class Telemetry:
    """Per-job telemetry hub: tracer + profiler/snapshot factories.

    >>> t = Telemetry(None)
    >>> (t.enabled, t.tracer.enabled)
    (False, False)
    >>> t = Telemetry(TelemetryConfig())
    >>> (t.enabled, t.tracer.enabled)
    (True, True)
    """

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        events: "EventLog | NullEventLog" = NULL_EVENTS,
    ) -> None:
        self.config = config
        self.enabled = config is not None
        if self.enabled and config.trace:
            self.tracer: "Tracer | NullTracer" = Tracer(
                max_sim_events=config.max_sim_events
            )
        else:
            self.tracer = NULL_TRACER
        #: Lifecycle event log — the service passes its (query-bound)
        #: log; one-shot runs keep the shared no-op.
        self.events = events

    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(None)

    def make_profiler(
        self, registry: MetricsRegistry
    ) -> Optional[SamplingProfiler]:
        """A profiler recording into ``registry``, or None when off."""
        if not (self.enabled and self.config.profile):
            return None
        return SamplingProfiler(
            registry.histogram(
                INSTRUCTION_SECONDS_METRIC,
                help="sampled wall time per hot-loop instruction execution",
                labels=("instr",),
            ),
            sample_every=self.config.sample_every,
        )

    def snapshot(self, registry: MetricsRegistry) -> TelemetrySnapshot:
        """Bundle one run's registry (and the tracer, if on) for the result."""
        return TelemetrySnapshot(
            registry=registry,
            enabled=self.enabled,
            tracer=self.tracer if self.tracer.enabled else None,
        )
