"""Structured tracing: hierarchical spans on wall *and* simulated clocks.

A BENU run is a pipeline — plan-search → codegen → task-generation →
per-worker execution — and this module records it as a span tree.  Each
span carries its wall-clock duration (what the host machine paid) and,
where meaningful, a *simulated* duration (what the modeled cluster paid:
the clock Figs. 9-10 are plotted in).  On top of the tree, the tracer
keeps a *simulated timeline*: per-worker-thread slices showing how the
greedy LPT scheduler laid tasks out on the simulated cluster.

Two export formats:

* :meth:`Tracer.to_dict` — the nested span tree as plain JSON;
* :meth:`Tracer.to_chrome` — flat Chrome ``trace_event`` JSON loadable in
  ``chrome://tracing`` / Perfetto: wall-clock spans under one pid,
  the simulated timeline under another, one tid per track.

The :class:`NullTracer` is the disabled stand-in: every operation is a
no-op so the zero-telemetry path costs a handful of attribute lookups per
*run* (never per instruction).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SimSlice",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
    "span_to_wire",
    "span_from_wire",
]

#: Chrome trace pids for the two clock domains.
WALL_PID = 1
SIM_PID = 2


@dataclass
class Span:
    """One node of the span tree.

    ``t0``/``t1`` are wall-clock instants (``perf_counter`` seconds,
    relative to the tracer's origin); ``sim_seconds`` is the simulated
    duration when the spanned work has one (worker execution does, plan
    search does not).
    """

    name: str
    t0: float
    t1: Optional[float] = None
    category: str = ""
    #: Chrome display track; spans without one inherit the parent's.
    track: Optional[str] = None
    sim_seconds: Optional[float] = None
    args: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def wall_seconds(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def to_dict(self) -> dict:
        d: Dict[str, object] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
        }
        if self.category:
            d["category"] = self.category
        if self.track:
            d["track"] = self.track
        if self.sim_seconds is not None:
            d["sim_seconds"] = self.sim_seconds
        if self.args:
            d["args"] = dict(self.args)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d


def span_to_wire(span: Span) -> dict:
    """Flatten a span (sub)tree into a picklable wire dict.

    Wire instants stay in the *sender's* clock; the receiving tracer
    rebases them onto its own origin in :meth:`Tracer.add_remote_spans`.
    On Linux ``perf_counter`` is CLOCK_MONOTONIC, which fork children
    share with the parent, so rebasing is a plain origin subtraction.
    """
    d: Dict[str, object] = {"name": span.name, "t0": span.t0, "t1": span.t1}
    if span.category:
        d["category"] = span.category
    if span.sim_seconds is not None:
        d["sim_seconds"] = span.sim_seconds
    if span.args:
        d["args"] = dict(span.args)
    if span.children:
        d["children"] = [span_to_wire(c) for c in span.children]
    return d


def span_from_wire(wire: dict, offset: float = 0.0) -> Span:
    """Rebuild a span tree from :func:`span_to_wire`, shifting instants."""
    t1 = wire.get("t1")
    return Span(
        name=wire["name"],
        t0=wire["t0"] + offset,
        t1=None if t1 is None else t1 + offset,
        category=wire.get("category", ""),
        sim_seconds=wire.get("sim_seconds"),
        args=dict(wire.get("args", {})),
        children=[
            span_from_wire(c, offset) for c in wire.get("children", ())
        ],
    )


@dataclass
class SimSlice:
    """One slice of simulated work on one simulated thread."""

    track: str
    name: str
    start_seconds: float
    duration_seconds: float
    args: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Records the span tree and the simulated timeline of one job."""

    enabled = True

    def __init__(
        self,
        clock=time.perf_counter,
        max_sim_events: int = 50_000,
    ) -> None:
        self._clock = clock
        self._origin = clock()
        self._stack: List[Span] = []
        self.roots: List[Span] = []
        #: Stitched-in span trees from worker processes, keyed by pid.
        self.remote: Dict[int, List[Span]] = {}
        self.sim_events: List[SimSlice] = []
        self.max_sim_events = max_sim_events
        #: Slices discarded once the timeline hit ``max_sim_events`` —
        #: reported in exports so truncation is never silent.
        self.dropped_sim_events = 0

    # -- span tree ------------------------------------------------------
    def _now(self) -> float:
        return self._clock() - self._origin

    def begin(
        self,
        name: str,
        category: str = "",
        track: Optional[str] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> Span:
        span = Span(
            name=name,
            t0=self._now(),
            category=category,
            track=track,
            args=dict(args or {}),
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} ended out of order "
                f"(open: {[s.name for s in self._stack]})"
            )
        span.t1 = self._now()
        self._stack.pop()

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        track: Optional[str] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> Iterator[Span]:
        """Context-managed span; mutate the yielded span's ``args`` freely.

        Exception-safe: if the spanned work raises, this span *and every
        descendant still open* are closed at the raise instant and
        flagged ``error=True``, so exports never see unbalanced trees.

        >>> tracer = Tracer()
        >>> with tracer.span("outer") as outer:
        ...     with tracer.span("inner") as inner:
        ...         inner.args["k"] = 1
        >>> tracer.roots[0].children[0].name
        'inner'
        """
        span = self.begin(name, category=category, track=track, args=args)
        try:
            yield span
        except BaseException:
            self._unwind(span)
            raise
        else:
            self.end(span)

    def _unwind(self, span: Span) -> None:
        """Close ``span`` and any still-open descendants, flagging errors.

        Manual ``begin``/``end`` stays strict (out-of-order is a bug);
        exception unwinding is the one sanctioned way a subtree closes
        early.  Nested ``span()`` context managers each unwind their own
        span, so inner handlers may already have closed part of the
        subtree — a span no longer on the stack is simply skipped.
        """
        if not any(s is span for s in self._stack):
            return
        now = self._now()
        while self._stack:
            top = self._stack.pop()
            top.t1 = now
            top.args["error"] = True
            if top is span:
                break

    def add_span(
        self,
        name: str,
        wall_seconds: float,
        sim_seconds: Optional[float] = None,
        category: str = "",
        track: Optional[str] = None,
        args: Optional[Dict[str, object]] = None,
        start: Optional[float] = None,
    ) -> Span:
        """Attach a pre-measured child span (no begin/end bracketing).

        Used for quantities measured elsewhere — e.g. per-worker execution
        totals, whose wall time interleaves with other workers' and is
        summed, not bracketed.  ``start`` anchors the span on the wall
        timeline (defaults to now).
        """
        t0 = start if start is not None else self._now()
        span = Span(
            name=name,
            t0=t0,
            t1=t0 + wall_seconds,
            category=category,
            track=track,
            sim_seconds=sim_seconds,
            args=dict(args or {}),
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    # -- cross-process stitching ----------------------------------------
    def add_remote_spans(self, pid: int, wire_spans: List[dict]) -> List[Span]:
        """Stitch spans shipped from worker process ``pid`` into the trace.

        ``wire_spans`` are :func:`span_to_wire` dicts whose instants are
        absolute ``perf_counter`` readings from the worker.  Fork
        children share the parent's monotonic clock epoch, so rebasing
        onto this tracer's timeline is a single origin subtraction —
        the stitched spans land at their true wall positions relative
        to the parent pipeline.
        """
        spans = [span_from_wire(w, offset=-self._origin) for w in wire_spans]
        self.remote.setdefault(pid, []).extend(spans)
        return spans

    # -- simulated timeline ---------------------------------------------
    def add_sim_slice(
        self,
        track: str,
        name: str,
        start_seconds: float,
        duration_seconds: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one task's placement on the simulated cluster schedule."""
        if len(self.sim_events) >= self.max_sim_events:
            self.dropped_sim_events += 1
            return
        self.sim_events.append(
            SimSlice(track, name, start_seconds, duration_seconds, dict(args or {}))
        )

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict:
        """The nested-JSON export (span tree + simulated timeline)."""
        return {
            "clock": "seconds",
            "spans": [s.to_dict() for s in self.roots],
            "workers": {
                str(pid): [s.to_dict() for s in spans]
                for pid, spans in self.remote.items()
            },
            "sim_timeline": [
                {
                    "track": e.track,
                    "name": e.name,
                    "start_seconds": e.start_seconds,
                    "duration_seconds": e.duration_seconds,
                    "args": e.args,
                }
                for e in self.sim_events
            ],
            "dropped_sim_events": self.dropped_sim_events,
        }

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` export (the ``--trace`` default format).

        Wall-clock spans live under pid 1, the simulated timeline under
        pid 2; ``ts``/``dur`` are microseconds as the format requires.
        """
        events: List[dict] = [
            _meta(WALL_PID, 0, "process_name", name="benu pipeline (wall clock)"),
            _meta(SIM_PID, 0, "process_name", name="benu simulated cluster"),
        ]
        wall_tids: Dict[Optional[str], int] = {}

        def tid_for(track: Optional[str], inherited: int) -> int:
            if track is None:
                return inherited
            if track not in wall_tids:
                tid = len(wall_tids) + 2  # tid 1 = the main pipeline lane
                wall_tids[track] = tid
                events.append(_meta(WALL_PID, tid, "thread_name", name=track))
            return wall_tids[track]

        def emit(span: Span, inherited_tid: int) -> None:
            tid = tid_for(span.track, inherited_tid)
            args = dict(span.args)
            args["wall_seconds"] = span.wall_seconds
            if span.sim_seconds is not None:
                args["sim_seconds"] = span.sim_seconds
            events.append(
                {
                    "name": span.name,
                    "cat": span.category or "benu",
                    "ph": "X",
                    "ts": span.t0 * 1e6,
                    "dur": span.wall_seconds * 1e6,
                    "pid": WALL_PID,
                    "tid": tid,
                    "args": args,
                }
            )
            for child in span.children:
                emit(child, tid)

        events.append(_meta(WALL_PID, 1, "thread_name", name="pipeline"))
        for root in self.roots:
            emit(root, 1)

        def emit_remote(span: Span, pid: int, tid: int) -> None:
            args = dict(span.args)
            args["wall_seconds"] = span.wall_seconds
            if span.sim_seconds is not None:
                args["sim_seconds"] = span.sim_seconds
            events.append(
                {
                    "name": span.name,
                    "cat": span.category or "benu-worker",
                    "ph": "X",
                    "ts": max(span.t0, 0.0) * 1e6,
                    "dur": span.wall_seconds * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            for child in span.children:
                emit_remote(child, pid, tid)

        for pid, spans in self.remote.items():
            # Real worker pids become Chrome pids; dodge the two
            # reserved synthetic pids in the (unlikely) collision case.
            chrome_pid = pid if pid not in (WALL_PID, SIM_PID) else pid + 10_000
            events.append(
                _meta(
                    chrome_pid, 0, "process_name", name=f"benu worker (pid {pid})"
                )
            )
            events.append(_meta(chrome_pid, 1, "thread_name", name="worker"))
            for span in spans:
                emit_remote(span, chrome_pid, 1)

        sim_tids: Dict[str, int] = {}
        for e in self.sim_events:
            tid = sim_tids.get(e.track)
            if tid is None:
                tid = len(sim_tids) + 1
                sim_tids[e.track] = tid
                events.append(_meta(SIM_PID, tid, "thread_name", name=e.track))
            events.append(
                {
                    "name": e.name,
                    "cat": "sim",
                    "ph": "X",
                    "ts": e.start_seconds * 1e6,
                    "dur": e.duration_seconds * 1e6,
                    "pid": SIM_PID,
                    "tid": tid,
                    "args": e.args,
                }
            )

        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro (BENU reproduction)",
                "dropped_sim_events": self.dropped_sim_events,
            },
        }

    def write(self, path, format: str = "chrome") -> None:
        """Serialize to ``path`` as ``chrome`` trace_event or nested ``json``."""
        if format not in ("chrome", "json"):
            raise ValueError(f"format must be 'chrome' or 'json', got {format!r}")
        payload = self.to_chrome() if format == "chrome" else self.to_dict()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")


def _meta(pid: int, tid: int, kind: str, **args: object) -> dict:
    return {
        "name": kind,
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


class _NullSpan:
    """The span yielded while tracing is off; accepts writes, keeps nothing."""

    __slots__ = ("args",)

    def __init__(self) -> None:
        self.args: Dict[str, object] = {}

    wall_seconds = 0.0
    sim_seconds = None


class NullTracer:
    """Disabled tracer: the whole API, none of the work.

    >>> t = NullTracer()
    >>> with t.span("anything") as s:
    ...     s.args["ignored"] = True
    >>> t.roots, t.to_dict()
    ([], None)
    """

    enabled = False
    roots: List[Span] = []
    remote: Dict[int, List[Span]] = {}
    sim_events: List[SimSlice] = []
    dropped_sim_events = 0

    @contextmanager
    def span(self, name, category="", track=None, args=None):
        yield _NullSpan()

    def begin(self, name, category="", track=None, args=None) -> _NullSpan:
        return _NullSpan()

    def end(self, span) -> None:
        pass

    def add_span(self, name, wall_seconds, **kwargs) -> _NullSpan:
        return _NullSpan()

    def add_remote_spans(self, pid, wire_spans) -> List[Span]:
        return []

    def add_sim_slice(self, track, name, start_seconds, duration_seconds, args=None):
        pass

    def to_dict(self):
        return None

    def to_chrome(self):
        return None

    def write(self, path, format: str = "chrome") -> None:
        raise RuntimeError("tracing is disabled; enable TelemetryConfig.trace")


#: Shared disabled tracer for default arguments.
NULL_TRACER = NullTracer()


_PHASES = frozenset({"X", "M", "i", "B", "E", "C"})


def validate_chrome_trace(trace: object) -> List[str]:
    """Check a Chrome ``trace_event`` export against the minimal schema.

    Returns a list of human-readable problems; empty means valid.  This is
    the schema the smoke benchmark and CI assert against — it encodes what
    ``chrome://tracing`` actually requires to render the file.

    >>> validate_chrome_trace({"traceEvents": []})
    []
    >>> validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
    ["event 0: missing keys ['name']"]
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top level must contain a 'traceEvents' list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {i}: not an object")
            continue
        missing = {"name", "ph"} - set(event)
        if missing:
            errors.append(f"event {i}: missing keys {sorted(missing)}")
            continue
        ph = event["ph"]
        if ph not in _PHASES:
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(event["name"], str):
            errors.append(f"event {i}: name must be a string")
        for key in ("ts", "pid", "tid"):
            if key in ("pid", "tid") and key not in event:
                errors.append(f"event {i}: missing {key}")
                continue
            if key == "ts" and "ts" not in event:
                if ph != "M":
                    errors.append(f"event {i}: missing ts")
                continue
            if not isinstance(event.get(key, 0), (int, float)):
                errors.append(f"event {i}: {key} must be numeric")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                errors.append(f"event {i}: complete event needs numeric dur")
            elif dur < 0:
                errors.append(f"event {i}: negative dur")
            if isinstance(event.get("ts"), (int, float)) and event["ts"] < 0:
                errors.append(f"event {i}: negative ts")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"event {i}: args must be an object")
    return errors
