"""Sampling profiler for the enumeration hot loop.

The compiled-plan inner loop runs millions of instructions per second;
timing each one would dwarf the work being timed.  Instead, a
:class:`SamplingProfiler` times every ``sample_every``-th profiled site
and records the measurement into a wall-clock histogram labeled by
instruction type (``DBQ``/``INT``/``TRC``) — enough to see where wall
time actually goes, cheap enough to leave on for whole benchmark runs.

The zero-overhead guarantee is structural, not statistical: profiling is
compiled *in* only when a profiler is passed to
:func:`repro.plan.codegen.compile_plan`.  Without one, the generated
source is byte-identical to the unprofiled build, so the default path
pays nothing at all.
"""

from __future__ import annotations

import time
from typing import Callable

from .registry import Histogram

__all__ = ["SamplingProfiler", "INSTRUCTION_SECONDS_METRIC"]

#: Registry name of the per-instruction-type wall-time histogram.
INSTRUCTION_SECONDS_METRIC = "benu_instruction_wall_seconds"


class SamplingProfiler:
    """Gate + recorder for sampled hot-loop timings.

    >>> from repro.telemetry.registry import MetricsRegistry
    >>> reg = MetricsRegistry()
    >>> prof = SamplingProfiler(
    ...     reg.histogram(INSTRUCTION_SECONDS_METRIC, labels=("instr",)),
    ...     sample_every=3,
    ... )
    >>> [prof.should_sample() for _ in range(6)]
    [False, False, True, False, False, True]
    >>> prof.record("DBQ", 0.004)
    >>> prof.samples_taken
    1
    """

    def __init__(
        self,
        histogram: Histogram,
        sample_every: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.clock = clock
        self._histogram = histogram
        self._n = 0
        self.samples_taken = 0

    # ------------------------------------------------------------------
    def should_sample(self) -> bool:
        """The sampling gate: True on every ``sample_every``-th call."""
        self._n += 1
        return self._n % self.sample_every == 0

    def record(self, instr: str, seconds: float) -> None:
        """Account one sampled measurement for instruction type ``instr``."""
        self.samples_taken += 1
        self._histogram.observe(seconds, instr=instr)

    def timed(self, instr: str, fn: Callable) -> Callable:
        """Wrap a callable so sampled invocations are timed.

        Used on the interpreter path, where instructions are not code
        sites that can be compiled twice — the interpreter wraps its
        ``get_adj`` so DBQ round-trips get sampled identically.
        """
        gate = self.should_sample
        clock = self.clock
        record = self.record

        def wrapper(*args, **kwargs):
            if gate():
                t0 = clock()
                result = fn(*args, **kwargs)
                record(instr, clock() - t0)
                return result
            return fn(*args, **kwargs)

        return wrapper
