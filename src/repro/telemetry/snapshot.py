"""The per-run telemetry snapshot attached to every :class:`BenuResult`.

One :class:`TelemetrySnapshot` bundles the run's :class:`MetricsRegistry`
(populated from the legacy ``QueryStats``/``CacheStats``/``TaskCounters``
structs via their ``record_to`` adapters, plus any live histograms the
profiler and storage hooks filled in) and, when tracing was on, the
:class:`~repro.telemetry.tracing.Tracer` holding the span tree.

The snapshot's properties are *registry-backed views*: ``db_queries``,
``cache_hit_rate``, ``instruction_counts`` etc. read straight out of the
registry, so they agree with the legacy structs by construction — the
parity the telemetry tests pin down.

Mapping to the paper (details in DESIGN.md):

========================  ==============================================
registry metric           paper quantity
========================  ==============================================
benu_db_queries_total     #DB queries (Fig. 7's communication bars)
benu_db_bytes_total       shuffled bytes stand-in (Table V/VI comm.)
benu_cache_*_total        cache hit ratio sweep (Fig. 8)
benu_instructions_total   instruction-count cost model (Section IV-C)
benu_task_sim_seconds     task size distribution (Fig. 9 splitting)
benu_makespan_seconds     job makespan (Figs. 9, 10)
========================  ==============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from .registry import Counter, Histogram, HistogramValue, MetricsRegistry
from .tracing import Tracer

__all__ = [
    "TelemetrySnapshot",
    "M_DB_QUERIES",
    "M_DB_BYTES",
    "M_DB_SIM_SECONDS",
    "M_CACHE_HITS",
    "M_CACHE_MISSES",
    "M_CACHE_EVICTIONS",
    "M_INSTRUCTIONS",
    "M_TRC_MISSES",
    "M_TASKS",
    "M_KERNEL_CALLS",
    "M_SHM_ATTACHES",
    "G_SHM_BYTES",
    "G_MAKESPAN",
    "G_WALL",
    "G_WORKERS",
    "G_CACHE_HIT_RATIO",
    "H_TASK_SIM_SECONDS",
    "H_DB_QUERY_BYTES",
    "M_SERVICE_QUERIES",
    "M_SERVICE_REJECTED",
    "M_PLAN_CACHE_HITS",
    "M_PLAN_CACHE_MISSES",
    "G_SERVICE_RUNNING",
    "G_SERVICE_QUEUED",
    "G_CATALOG_BYTES",
    "M_CATALOG_EVICTIONS",
    "H_QUERY_WALL_SECONDS",
    "H_QUERY_QERROR",
    "QERROR_BUCKETS",
    "G_PLAN_PREDICTED",
    "G_PLAN_QERROR",
    "M_WORKER_CRASHES",
    "M_TASK_RETRIES",
    "M_FAULTS_INJECTED",
]

# Canonical metric names (``benu_`` prefix, Prometheus-style suffixes).
M_DB_QUERIES = "benu_db_queries_total"
M_DB_BYTES = "benu_db_bytes_total"
M_DB_SIM_SECONDS = "benu_db_sim_seconds_total"
M_CACHE_HITS = "benu_cache_hits_total"
M_CACHE_MISSES = "benu_cache_misses_total"
M_CACHE_EVICTIONS = "benu_cache_evictions_total"
M_INSTRUCTIONS = "benu_instructions_total"
M_TRC_MISSES = "benu_trc_cache_misses_total"
M_TASKS = "benu_tasks_total"
M_KERNEL_CALLS = "benu_kernel_calls_total"
M_SHM_ATTACHES = "benu_shm_attaches_total"
G_SHM_BYTES = "benu_shm_bytes"
G_MAKESPAN = "benu_makespan_seconds"
G_WALL = "benu_wall_seconds"
G_WORKERS = "benu_workers"
G_CACHE_HIT_RATIO = "benu_cache_hit_ratio"
H_TASK_SIM_SECONDS = "benu_task_sim_seconds"
H_DB_QUERY_BYTES = "benu_db_query_bytes"

# Query-service metrics (the resident engine built on top of one-shot runs).
M_SERVICE_QUERIES = "benu_service_queries_total"
M_SERVICE_REJECTED = "benu_service_rejected_total"
M_PLAN_CACHE_HITS = "benu_service_plan_cache_hits_total"
M_PLAN_CACHE_MISSES = "benu_service_plan_cache_misses_total"
G_SERVICE_RUNNING = "benu_service_running_queries"
G_SERVICE_QUEUED = "benu_service_queued_queries"
G_CATALOG_BYTES = "benu_service_catalog_bytes"
M_CATALOG_EVICTIONS = "benu_service_catalog_evictions_total"
H_QUERY_WALL_SECONDS = "benu_service_query_wall_seconds"

H_QUERY_QERROR = "benu_service_query_q_error"

# BENU-QL front-end: one count per logical-optimizer rule firing,
# labeled by rule name.
M_LANG_RULES = "benu_lang_rule_fired_total"

#: Bucket bounds for q-error histograms (a ratio >= 1).
QERROR_BUCKETS = (1.0, 1.5, 2.0, 5.0, 10.0, 100.0, 1000.0)

# Predicted-vs-actual plan accounting (the §IV-C/§V estimator confronted
# with the exact executed counts; the measurement half of adaptive
# re-planning).
G_PLAN_PREDICTED = "benu_plan_predicted_executions"
G_PLAN_QERROR = "benu_plan_q_error"

# Fault tolerance: crashes survived, work re-executed, faults injected.
M_WORKER_CRASHES = "benu_worker_crashes_total"
M_TASK_RETRIES = "benu_task_retries_total"
M_FAULTS_INJECTED = "benu_faults_injected_total"


@dataclass
class TelemetrySnapshot:
    """Everything one run measured, behind one machine-readable interface."""

    registry: MetricsRegistry
    #: Whether telemetry (tracing/profiling hooks) was enabled for the run.
    enabled: bool = False
    #: The job tracer; None when tracing was off.
    tracer: Optional[Tracer] = None

    # -- registry-backed views -----------------------------------------
    def _total(self, name: str) -> float:
        return self.registry.counter_total(name)

    @property
    def db_queries(self) -> int:
        """Total distributed-store queries (the paper's #queries)."""
        return int(self._total(M_DB_QUERIES))

    @property
    def db_bytes(self) -> int:
        return int(self._total(M_DB_BYTES))

    @property
    def db_sim_seconds(self) -> float:
        return self._total(M_DB_SIM_SECONDS)

    @property
    def cache_hits(self) -> int:
        return int(self._total(M_CACHE_HITS))

    @property
    def cache_misses(self) -> int:
        return int(self._total(M_CACHE_MISSES))

    @property
    def cache_evictions(self) -> int:
        return int(self._total(M_CACHE_EVICTIONS))

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of adjacency lookups served from worker caches (Fig. 8)."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def instruction_counts(self) -> Dict[str, int]:
        """Executions per instruction type: INT/TRC/DBQ/ENU/RES."""
        metric = self.registry.get(M_INSTRUCTIONS)
        out: Dict[str, int] = {}
        if isinstance(metric, Counter):
            for labels, value in metric.samples():
                instr = labels.get("instr", "?")
                out[instr] = out.get(instr, 0) + int(value)
        return out

    @property
    def results(self) -> int:
        return self.instruction_counts.get("RES", 0)

    @property
    def kernel_counts(self) -> Dict[str, int]:
        """Intersections served per kernel (csr backend; empty otherwise)."""
        metric = self.registry.get(M_KERNEL_CALLS)
        out: Dict[str, int] = {}
        if isinstance(metric, Counter):
            for labels, value in metric.samples():
                kernel = labels.get("kernel", "?")
                out[kernel] = out.get(kernel, 0) + int(value)
        return {k: v for k, v in out.items() if v}

    def _gauge_by_instr(self, name: str) -> Dict[str, float]:
        metric = self.registry.get(name)
        out: Dict[str, float] = {}
        if metric is not None and metric.kind == "gauge":
            for labels, value in metric.samples():
                out[labels.get("instr", "?")] = float(value)
        return out

    @property
    def predicted_counts(self) -> Dict[str, float]:
        """Cost-model execution estimates per instruction type.

        Empty when the run's plan carried no predictions (plans built
        outside :func:`repro.engine.benu.build_plan`).
        """
        return self._gauge_by_instr(G_PLAN_PREDICTED)

    @property
    def q_errors(self) -> Dict[str, float]:
        """Per-instruction-type q-error: max(pred/actual, actual/pred)."""
        return self._gauge_by_instr(G_PLAN_QERROR)

    def instruction_wall_samples(self) -> Dict[str, HistogramValue]:
        """Sampled wall-time distributions per instruction type.

        Empty unless the run profiled (``TelemetryConfig(profile=True)``).
        """
        from .profiler import INSTRUCTION_SECONDS_METRIC

        metric = self.registry.get(INSTRUCTION_SECONDS_METRIC)
        out: Dict[str, HistogramValue] = {}
        if isinstance(metric, Histogram):
            for labels, value in metric.samples():
                out[labels.get("instr", "?")] = value
        return out

    @property
    def tasks(self) -> int:
        return int(self._total(M_TASKS))

    def _gauge(self, name: str) -> float:
        metric = self.registry.get(name)
        return metric.value() if metric is not None else 0.0

    @property
    def makespan_seconds(self) -> float:
        return self._gauge(G_MAKESPAN)

    @property
    def wall_seconds(self) -> float:
        return self._gauge(G_WALL)

    # -- exports --------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """The headline quantities as one flat JSON-able record."""
        return {
            "db_queries": self.db_queries,
            "db_bytes": self.db_bytes,
            "db_sim_seconds": self.db_sim_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": self.cache_hit_rate,
            "instruction_counts": self.instruction_counts,
            "predicted_counts": self.predicted_counts,
            "q_errors": self.q_errors,
            "tasks": self.tasks,
            "makespan_seconds": self.makespan_seconds,
            "wall_seconds": self.wall_seconds,
        }

    def as_dict(self) -> dict:
        """Full JSON-able export: summary + every registered metric."""
        return {
            "enabled": self.enabled,
            "summary": self.summary(),
            "metrics": self.registry.as_dict(),
        }

    def trace_tree(self) -> Optional[dict]:
        """The nested span-tree export, or None when tracing was off."""
        return self.tracer.to_dict() if self.tracer is not None else None

    def chrome_trace(self) -> Optional[dict]:
        """The Chrome ``trace_event`` export, or None when tracing was off."""
        return self.tracer.to_chrome() if self.tracer is not None else None

    def write_trace(self, path, format: str = "chrome") -> None:
        """Write the trace to ``path`` ('chrome' trace_event or nested 'json')."""
        if self.tracer is None:
            raise RuntimeError(
                "no trace was recorded; run with "
                "BenuConfig(telemetry=TelemetryConfig(trace=True))"
            )
        self.tracer.write(path, format=format)

    def write_metrics(self, path) -> None:
        """Write the metrics export (``as_dict``) to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
