"""Live per-query progress: tasks done, embeddings found, monotone ETA.

A BENU query fans out into embarrassingly parallel tasks (one per start
vertex group), so *tasks completed / tasks total* is an honest progress
measure — each task carries comparable work after the LPT split, and the
count only moves forward.  The tracker extrapolates an ETA from the
measured per-task wall cost so far; both are surfaced through the
service ``poll``/``stats`` verbs and ``benu stats --watch``.

Guarantees:

* ``fraction()`` is **monotone non-decreasing** even if ``total_tasks``
  is revised upward mid-run (re-splitting) — callers never see a
  progress bar move backwards.
* Thread-safe: backends report completions from the dispatch thread
  while service clients poll concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["QueryProgress", "NullProgress", "NULL_PROGRESS"]


class QueryProgress:
    """Mutable progress state for one running query.

    >>> clock = iter([0.0, 4.0]).__next__
    >>> p = QueryProgress(clock=clock)
    >>> p.set_total_tasks(4)
    >>> p.fraction()
    0.0
    >>> p.task_done(embeddings=10); p.task_done(embeddings=5)
    >>> p.fraction(), p.embeddings
    (0.5, 15)
    >>> p.eta_seconds()  # 2 tasks took 4s -> 2 remaining ~ 4s more
    4.0
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._t0 = clock()
        self.total_tasks: Optional[int] = None
        self.tasks_done = 0
        self.embeddings = 0
        self._max_fraction = 0.0

    # ------------------------------------------------------------------
    def set_total_tasks(self, total: int) -> None:
        """Announce the task count (after task generation / re-splitting)."""
        with self._lock:
            self.total_tasks = max(int(total), self.total_tasks or 0)

    def task_done(self, embeddings: int = 0) -> None:
        """Account one finished task and the embeddings it produced."""
        with self._lock:
            self.tasks_done += 1
            self.embeddings += int(embeddings)

    def add_embeddings(self, embeddings: int) -> None:
        with self._lock:
            self.embeddings += int(embeddings)

    # ------------------------------------------------------------------
    def elapsed_seconds(self) -> float:
        return self._clock() - self._t0

    def fraction(self) -> float:
        """Completed fraction in [0, 1]; monotone across calls."""
        with self._lock:
            if not self.total_tasks:
                f = 0.0
            else:
                f = min(self.tasks_done / self.total_tasks, 1.0)
            # A mid-run total_tasks revision could shrink the raw ratio;
            # clamp to the highest fraction ever reported instead.
            self._max_fraction = max(self._max_fraction, f)
            return self._max_fraction

    def eta_seconds(self) -> Optional[float]:
        """Remaining wall estimate from the measured per-task cost.

        None until at least one task has finished (no rate to
        extrapolate from) or when the task count is unknown.
        """
        with self._lock:
            done, total = self.tasks_done, self.total_tasks
        if not total or done <= 0:
            return None
        remaining = max(total - done, 0)
        per_task = self.elapsed_seconds() / done
        return remaining * per_task

    def describe(self) -> Dict[str, object]:
        """JSON-able snapshot for ``poll`` responses and ``stats``."""
        with self._lock:
            done, total = self.tasks_done, self.total_tasks
            embeddings = self.embeddings
        return {
            "tasks_done": done,
            "total_tasks": total,
            "embeddings": embeddings,
            "fraction": self.fraction(),
            "eta_seconds": self.eta_seconds(),
            "elapsed_seconds": self.elapsed_seconds(),
        }


class NullProgress:
    """Disabled progress tracker (one-shot runs that nobody polls)."""

    enabled = False
    total_tasks = None
    tasks_done = 0
    embeddings = 0

    def set_total_tasks(self, total: int) -> None:
        pass

    def task_done(self, embeddings: int = 0) -> None:
        pass

    def add_embeddings(self, embeddings: int) -> None:
        pass

    def elapsed_seconds(self) -> float:
        return 0.0

    def fraction(self) -> float:
        return 0.0

    def eta_seconds(self) -> Optional[float]:
        return None

    def describe(self) -> Dict[str, object]:
        return {}


#: Shared disabled tracker for default arguments.
NULL_PROGRESS = NullProgress()
