"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

``benu serve`` answers a ``metrics`` protocol verb (and ``benu stats
--format prometheus`` renders locally) with the standard text format, so
a scraper pointed at the service sees the same counters Figs. 7-10 are
built from: DB query volume, cache hits, instruction counts, per-query
latency histograms.

Faithful to the exposition format where it matters:

* ``# HELP`` / ``# TYPE`` headers per metric family;
* label values escaped (backslash, double-quote, newline);
* histograms rendered **cumulatively** with a ``+Inf`` bucket plus
  ``_sum``/``_count`` series — the registry stores non-cumulative
  bucket counts, the renderer does the partial-summing;
* metric and label names sanitized to the allowed charset.

The renderer depends only on :mod:`repro.telemetry.registry` — it is a
pure function over the registry's public surface.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "escape_label_value"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """Sanitize a registry name into the Prometheus charset."""
    if _NAME_OK.match(name):
        return name
    fixed = _NAME_FIX.sub("_", name)
    if not fixed or not re.match(r"[a-zA-Z_:]", fixed[0]):
        fixed = "_" + fixed
    return fixed


def escape_label_value(value: str) -> str:
    r"""Escape a label value per the exposition format.

    >>> escape_label_value('a"b\\c\nd')
    'a\\"b\\\\c\\nd'
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_metric_name(k)}="{escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _number(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in ``registry`` as exposition text.

    >>> from repro.telemetry.registry import MetricsRegistry
    >>> reg = MetricsRegistry()
    >>> reg.counter("jobs_total", help="jobs run").inc(3)
    >>> print(render_prometheus(reg), end="")
    # HELP jobs_total jobs run
    # TYPE jobs_total counter
    jobs_total 3
    """
    lines: List[str] = []
    for metric in registry.metrics():
        name = _metric_name(metric.name)
        help_text = metric.help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {name} {help_text}".rstrip())
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            for labels, value in metric.samples():
                lines.append(f"{name}{_labels(labels)} {_number(value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            for labels, value in metric.samples():
                lines.append(f"{name}{_labels(labels)} {_number(value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            bounds = list(metric.buckets)
            for labels, hv in metric.samples():
                cumulative = 0
                for bound, count in zip(bounds, hv.bucket_counts):
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _number(float(bound))
                    lines.append(
                        f"{name}_bucket{_labels(bucket_labels)} {cumulative}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(f"{name}_bucket{_labels(inf_labels)} {hv.count}")
                lines.append(f"{name}_sum{_labels(labels)} {_number(hv.sum)}")
                lines.append(f"{name}_count{_labels(labels)} {hv.count}")
        else:  # pragma: no cover - registry only makes the three kinds
            lines.append(f"# TYPE {name} untyped")
            for labels, value in metric.samples():
                lines.append(f"{name}{_labels(labels)} {_number(value)}")
    return "\n".join(lines) + ("\n" if lines else "")
