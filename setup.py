"""Shim for environments without the `wheel` package (offline PEP 660 fallback)."""
from setuptools import setup

setup()
