#!/usr/bin/env python
"""Forbid bare ``print(`` calls in the library (``src/repro/``).

Library code reports through the telemetry package — the metrics
registry, the tracer, the event log — never by printing to stdout: a
resident ``benu serve`` speaks a line protocol on stdout, so any stray
``print`` corrupts the wire.  The only sanctioned user-facing printer is
the CLI (``src/repro/cli.py``), which is excluded.

The check is AST-based: only genuine ``print(...)`` call expressions
fail; ``print`` inside docstrings/doctests or comments does not.

Usage::

    python scripts/lint_no_print.py            # lint src/repro
    python scripts/lint_no_print.py PATH ...   # lint specific trees
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"

#: Files allowed to print (relative to the lint target root).
ALLOWED = {"cli.py"}


def find_prints(source: str, filename: str) -> list:
    """``(line, col)`` of every ``print(...)`` call in ``source``."""
    tree = ast.parse(source, filename=filename)
    hits = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            hits.append((node.lineno, node.col_offset))
    return hits


def lint_tree(target: Path, out=sys.stdout) -> int:
    """Lint every ``.py`` under ``target``; return the violation count."""
    violations = 0
    files = [target] if target.is_file() else sorted(target.rglob("*.py"))
    for path in files:
        if path.name in ALLOWED:
            continue
        try:
            hits = find_prints(path.read_text(encoding="utf-8"), str(path))
        except SyntaxError as exc:
            print(f"{path}: syntax error: {exc}", file=out)
            violations += 1
            continue
        for line, col in hits:
            print(
                f"{path}:{line}:{col + 1}: print() call in library code "
                "(use the telemetry package; only cli.py may print)",
                file=out,
            )
            violations += 1
    return violations


def main(argv=None) -> int:
    targets = [Path(a) for a in (argv if argv is not None else sys.argv[1:])]
    if not targets:
        targets = [DEFAULT_TARGET]
    violations = sum(lint_tree(t) for t in targets)
    if violations:
        print(f"lint-no-print: {violations} violation(s)")
        return 1
    print("lint-no-print: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
