#!/usr/bin/env python
"""Multi-shard smoke: 3 ``benu serve`` shard processes + a router, over
real localhost TCP.

Launches three shard nodes (``--shard-index i --shard-count 3``), routes
the Table-1 pattern suite through a :class:`~repro.shard.ShardRouter`,
and checks every count against a single-node run of the same dataset.
Writes the cluster's stitched event log (every shard's lifecycle events
merged into one globally-ordered JSONL timeline) to the path given by
``--event-log`` so CI can upload it as an artifact.

Exit status is non-zero on any divergence — this is the deployment-level
acceptance check that the in-process test matrix cannot cover (real
sockets, real processes, real concurrent shards).
"""

import argparse
import json
import re
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.service import BenuService  # noqa: E402
from repro.graph.datasets import load_dataset  # noqa: E402
from repro.shard import ShardRouter, TCPShardClient  # noqa: E402

#: The Table-1 suite the smoke routes (small enough for CI wall clock).
SUITE = ("triangle", "square", "chordal_square", "clique4", "q1", "q3")
DATASET = "as_sim"
NUM_SHARDS = 3
EPOCH = 1


def _launch_shard(index: int) -> tuple:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--shard-index", str(index), "--shard-count", str(NUM_SHARDS),
            "--epoch", str(EPOCH), "--graph", f"g={DATASET}",
        ],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if "serving on" in line:
            port = int(re.search(r":(\d+) as", line).group(1))
            return process, port
        if process.poll() is not None:
            break
    raise RuntimeError(f"shard {index} failed to start")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--event-log", default=None,
        help="write the stitched cluster event log here (JSON lines)",
    )
    parser.add_argument(
        "--deadline-budget", type=float, default=120.0,
        help="global wall budget per routed query (seconds)",
    )
    args = parser.parse_args()

    print(f"single-node reference over {DATASET} ...", flush=True)
    reference = {}
    with BenuService() as service:
        service.register_graph("g", load_dataset(DATASET), relabel=False)
        for name in SUITE:
            handle = service.submit(name, "g", stream=False)
            handle.wait(timeout=600)
            reference[name] = handle.result().count

    shards = []
    try:
        for index in range(NUM_SHARDS):
            shards.append(_launch_shard(index))
        ports = [port for _, port in shards]
        print(f"shards up on ports {ports}", flush=True)

        router = ShardRouter(
            [TCPShardClient("127.0.0.1", port) for port in ports],
            expected_epoch=EPOCH,
        )
        failures = 0
        for name in SUITE:
            result = router.submit(
                name, "g", stream=False, deadline=args.deadline_budget
            ).result()
            per_shard = [entry["count"] for entry in result["per_shard"]]
            ok = result["count"] == reference[name]
            print(
                f"{'OK  ' if ok else 'FAIL'} {name}: router "
                f"{result['count']} = {' + '.join(map(str, per_shard))}"
                f" (single-node {reference[name]})",
                flush=True,
            )
            failures += 0 if ok else 1

        if args.event_log:
            rows = router.events()
            path = Path(args.event_log)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", encoding="utf-8") as fh:
                for row in rows:
                    fh.write(json.dumps(row, sort_keys=True) + "\n")
            stamps = [row["ts"] for row in rows]
            assert stamps == sorted(stamps), "stitched log must be ordered"
            print(
                f"stitched event log: {len(rows)} events from "
                f"{len({row['shard'] for row in rows})} shards -> {path}",
                flush=True,
            )

        router.shutdown()
        router.close()
        if failures:
            print(f"{failures} pattern(s) diverged", file=sys.stderr)
            return 1
        print(f"all {len(SUITE)} routed patterns match single-node counts")
        return 0
    finally:
        for process, _ in shards:
            process.terminate()
        for process, _ in shards:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    sys.exit(main())
