#!/usr/bin/env python
"""Multi-shard smoke: 3 ``benu serve`` shard processes + a router, over
real localhost TCP.

Launches three shard nodes (``--shard-index i --shard-count 3``), routes
the Table-1 pattern suite through a :class:`~repro.shard.ShardRouter`,
and checks every count against a single-node run of the same dataset.
Writes the cluster's stitched event log (every shard's lifecycle events
merged into one globally-ordered JSONL timeline) to the path given by
``--event-log`` so CI can upload it as an artifact.

``--chaos`` runs the fault-tolerance acceptance instead: a 3-partition
deployment with a replica for partition 0 gets its partition-0 primary
``kill -9``'d mid-stream (the router must fail over and still deliver
the byte-identical match set), and an in-process process-backend service
has one pool worker SIGKILLed mid-query — plus a deterministic
``worker.task:crash`` schedule as a backstop — and must still report the
exact single-node count, with ``worker_crashed`` / ``task_retried``
events in the log.

Exit status is non-zero on any divergence — this is the deployment-level
acceptance check that the in-process test matrix cannot cover (real
sockets, real processes, real kill -9).
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.service import BenuService  # noqa: E402
from repro.graph.datasets import load_dataset  # noqa: E402
from repro.shard import ShardRouter, TCPShardClient  # noqa: E402

#: The Table-1 suite the smoke routes (small enough for CI wall clock).
SUITE = ("triangle", "square", "chordal_square", "clique4", "q1", "q3")
DATASET = "as_sim"
NUM_SHARDS = 3
EPOCH = 1


def _launch_shard(index: int, shard_count: int = NUM_SHARDS) -> tuple:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--shard-index", str(index), "--shard-count", str(shard_count),
            "--epoch", str(EPOCH), "--graph", f"g={DATASET}",
        ],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if "serving on" in line:
            port = int(re.search(r":(\d+) as", line).group(1))
            return process, port
        if process.poll() is not None:
            break
    raise RuntimeError(f"shard {index} failed to start")


def _write_event_log(rows, path_text: str) -> None:
    path = Path(path_text)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    stamps = [row["ts"] for row in rows]
    assert stamps == sorted(stamps), "stitched log must be ordered"
    print(
        f"stitched event log: {len(rows)} events from "
        f"{len({row['shard'] for row in rows})} sources -> {path}",
        flush=True,
    )


def chaos(args) -> int:
    """Fault-tolerance acceptance: kill -9 a shard and a pool worker."""
    from repro.engine.config import BenuConfig

    pattern = "triangle"
    print(f"single-node reference over {DATASET} ...", flush=True)
    with BenuService() as service:
        service.register_graph("g", load_dataset(DATASET), relabel=False)
        handle = service.submit(pattern, "g", stream=True)
        ref_matches = sorted(tuple(m) for m in handle.matches())
    ref_count = len(ref_matches)
    failures = 0

    # -- phase A: kill -9 the partition-0 primary mid-stream ------------
    # 3 partitions plus one extra replica of partition 0 (4 processes).
    shards = []
    try:
        for index in [0, 0, 1, 2]:
            shards.append(_launch_shard(index))
        by_port = {port: process for process, port in shards}
        print(f"shards up on ports {sorted(by_port)}", flush=True)
        router = ShardRouter(
            [TCPShardClient("127.0.0.1", port) for port in by_port],
            expected_epoch=EPOCH,
        )
        query = router.submit(pattern, "g", stream=True)
        got = []
        page = query.fetch(limit=32)  # a prefix lands before the kill
        got.extend(tuple(m) for m in page.matches)
        victim = query._slices[0].client
        victim_port = int(victim.endpoint.rsplit(":", 1)[1])
        print(
            f"kill -9 partition-0 primary on port {victim_port} "
            f"after {len(got)} matches",
            flush=True,
        )
        os.kill(by_port[victim_port].pid, signal.SIGKILL)
        for m in query.matches():
            got.append(tuple(m))
        ok = sorted(got) == ref_matches
        print(
            f"{'OK  ' if ok else 'FAIL'} shard-kill: {len(got)} matches "
            f"streamed across the failover (single-node {ref_count})",
            flush=True,
        )
        failures += 0 if ok else 1
        dead = [
            ep for ep, state in router.stats()["replicas"].items()
            if state == "dead"
        ]
        print(f"replicas marked dead: {dead}", flush=True)
        rows = router.events()
        router.shutdown()
        router.close()
    finally:
        for process, _ in shards:
            process.terminate()
        for process, _ in shards:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()

    # -- phase B: SIGKILL a pool worker mid-query ------------------------
    # A real kill -9 lands opportunistically; the deterministic
    # worker.task:crash schedule guarantees at least one worker death
    # even if the query outruns the killer thread.
    import multiprocessing as mp

    service = BenuService(
        config=BenuConfig(
            execution_backend="process",
            num_workers=2,
            relabel=False,
            task_retries=3,
            faults="seed=7,worker.task:crash@5",
        ),
        # Big enough that the handful of worker_crashed events is not
        # evicted from the ring by the per-task dispatch/finish flood.
        event_log_capacity=200_000,
    )
    try:
        service.register_graph("g", load_dataset(DATASET), relabel=False)
        stop = threading.Event()

        def killer():
            while not stop.is_set():
                children = mp.active_children()
                if children:
                    try:
                        os.kill(children[0].pid, signal.SIGKILL)
                        print(
                            f"kill -9 pool worker {children[0].pid}",
                            flush=True,
                        )
                    except (OSError, ProcessLookupError):
                        pass
                    return
                time.sleep(0.02)

        thread = threading.Thread(target=killer, daemon=True)
        thread.start()
        handle = service.submit(pattern, "g", stream=False)
        handle.wait(timeout=600)
        stop.set()
        thread.join(timeout=5)
        result = handle.result()
        ok = result.count == ref_count
        print(
            f"{'OK  ' if ok else 'FAIL'} worker-kill: count {result.count} "
            f"(single-node {ref_count}), {result.worker_crashes} worker "
            f"crash(es), {result.tasks_retried} task(s) retried",
            flush=True,
        )
        failures += 0 if ok else 1
        types = {e["type"] for e in service.events.as_dicts()}
        for required in ("worker_crashed", "task_retried"):
            if required not in types:
                print(f"FAIL missing event {required}", flush=True)
                failures += 1
        # The pool-recovery events join the stitched timeline.
        rows.extend(
            dict(e, shard="pool") for e in service.events.as_dicts()
        )
    finally:
        service.close()

    if args.event_log:
        _write_event_log(sorted(rows, key=lambda r: r["ts"]), args.event_log)
    if failures:
        print(f"{failures} chaos check(s) failed", file=sys.stderr)
        return 1
    print("chaos smoke passed: both kills recovered with exact results")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--event-log", default=None,
        help="write the stitched cluster event log here (JSON lines)",
    )
    parser.add_argument(
        "--deadline-budget", type=float, default=120.0,
        help="global wall budget per routed query (seconds)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="run the fault-tolerance acceptance (kill -9 a shard "
             "mid-stream and a pool worker mid-query) instead",
    )
    args = parser.parse_args()
    if args.chaos:
        return chaos(args)

    print(f"single-node reference over {DATASET} ...", flush=True)
    reference = {}
    with BenuService() as service:
        service.register_graph("g", load_dataset(DATASET), relabel=False)
        for name in SUITE:
            handle = service.submit(name, "g", stream=False)
            handle.wait(timeout=600)
            reference[name] = handle.result().count

    shards = []
    try:
        for index in range(NUM_SHARDS):
            shards.append(_launch_shard(index))
        ports = [port for _, port in shards]
        print(f"shards up on ports {ports}", flush=True)

        router = ShardRouter(
            [TCPShardClient("127.0.0.1", port) for port in ports],
            expected_epoch=EPOCH,
        )
        failures = 0
        for name in SUITE:
            result = router.submit(
                name, "g", stream=False, deadline=args.deadline_budget
            ).result()
            per_shard = [entry["count"] for entry in result["per_shard"]]
            ok = result["count"] == reference[name]
            print(
                f"{'OK  ' if ok else 'FAIL'} {name}: router "
                f"{result['count']} = {' + '.join(map(str, per_shard))}"
                f" (single-node {reference[name]})",
                flush=True,
            )
            failures += 0 if ok else 1

        if args.event_log:
            rows = router.events()
            path = Path(args.event_log)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w", encoding="utf-8") as fh:
                for row in rows:
                    fh.write(json.dumps(row, sort_keys=True) + "\n")
            stamps = [row["ts"] for row in rows]
            assert stamps == sorted(stamps), "stitched log must be ordered"
            print(
                f"stitched event log: {len(rows)} events from "
                f"{len({row['shard'] for row in rows})} shards -> {path}",
                flush=True,
            )

        router.shutdown()
        router.close()
        if failures:
            print(f"{failures} pattern(s) diverged", file=sys.stderr)
            return 1
        print(f"all {len(SUITE)} routed patterns match single-node counts")
        return 0
    finally:
        for process, _ in shards:
            process.terminate()
        for process, _ in shards:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    sys.exit(main())
