#!/usr/bin/env python
"""BENU-QL end-to-end smoke: the query op over real process boundaries.

Two phases, both checked against the in-process ``repro.lang.run_query``
oracle:

1. **stdio serve** — a ``benu serve`` child process speaks the JSON-lines
   protocol over its stdin/stdout.  A labeled graph is registered over
   the wire (``labels`` field), then BENU-QL count / stream / GROUP BY
   queries are piped through the ``query`` op and polled to completion.
   A syntactically broken query must come back as a structured
   ``query_syntax`` error carrying line, column and a caret snippet.
2. **routed shards** — two real ``benu serve --shard-index`` TCP
   processes behind a :class:`~repro.shard.ShardRouter`; the same
   queries fan out through ``ShardRouter.submit_query`` and the merged
   counts / group sums / match sets must equal the oracle exactly.

Exit status is non-zero on any divergence — this is the deployment-level
acceptance for the declarative front-end (real processes, real sockets),
complementing the in-process equivalence sweep in
``tests/test_lang_equivalence.py``.
"""

import json
import re
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.labeled.graphs import LabeledGraph  # noqa: E402
from repro.lang.run import run_query  # noqa: E402
from repro.shard import ShardRouter, TCPShardClient  # noqa: E402

EPOCH = 1

#: A small labeled graph shared by both phases (two fused triangles and
#: a pendant edge; labels chosen so label predicates actually prune).
EDGES = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5), (1, 4), (5, 6)]
LABELS = {1: "A", 2: "B", 3: "A", 4: "B", 5: "A", 6: "C"}

Q_COUNT = "MATCH (a)-(b), (b)-(c), (a)-(c) RETURN COUNT(*)"
Q_STREAM = "MATCH (a)-(b), (b)-(c), (a)-(c) RETURN a, b"
Q_GROUPS = (
    "MATCH (a)-(b), (b)-(c), (a)-(c) WHERE a.label = 'A' "
    "RETURN COUNT(*) GROUP BY a"
)
Q_UNSAT = (
    "MATCH (a)-(b) WHERE a.label = 'A' AND a.label = 'B' RETURN COUNT(*)"
)
Q_BROKEN = "MATCH (a)-(b), RETURN COUNT(*)"


def oracle():
    data = LabeledGraph(EDGES, LABELS)
    return {
        "count": run_query(Q_COUNT, data).count,
        "stream": sorted(run_query(Q_STREAM, data).matches),
        "groups": {
            str(k): v for k, v in run_query(Q_GROUPS, data).groups.items()
        },
        "unsat": run_query(Q_UNSAT, data).count,
    }


# ---------------------------------------------------------------- phase 1
class StdioService:
    """A ``benu serve`` child driven over stdin/stdout JSON lines."""

    def __init__(self):
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve"],
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )

    def ask(self, payload):
        self.process.stdin.write(json.dumps(payload) + "\n")
        self.process.stdin.flush()
        line = self.process.stdout.readline()
        if not line:
            raise RuntimeError("serve closed its stdout")
        return json.loads(line)

    def close(self):
        try:
            self.ask({"op": "shutdown"})
        except (RuntimeError, BrokenPipeError, OSError):
            pass
        self.process.stdin.close()
        self.process.wait(timeout=10)


def run_wire_query(ask, text, expect_kind):
    """Submit one query op and drain it; returns (count, matches, groups)."""
    submitted = ask({"op": "query", "text": text, "graph": "g"})
    assert submitted.get("ok"), submitted
    assert submitted.get("kind") == expect_kind, submitted
    query_id = submitted["query"]
    if expect_kind == "stream":
        matches, cursor = [], 0
        while True:
            page = ask(
                {"op": "poll", "query": query_id, "limit": 64,
                 "cursor": cursor}
            )
            assert page.get("ok"), page
            matches.extend(tuple(m) for m in page.get("matches", []))
            cursor = page.get("cursor", cursor)
            if page.get("done"):
                return len(matches), sorted(matches), None
            time.sleep(0.005)
    while True:
        response = ask({"op": "poll", "query": query_id, "wait": 5.0})
        assert response.get("ok"), response
        if response.get("done"):
            return (
                int(response.get("count", 0)),
                None,
                response.get("groups"),
            )


def phase_stdio(expected):
    print("phase 1: BENU-QL over `benu serve` stdio ...", flush=True)
    failures = 0
    service = StdioService()
    try:
        registered = service.ask(
            {
                "op": "register", "name": "g",
                "edges": [list(e) for e in EDGES],
                "labels": {str(v): l for v, l in LABELS.items()},
            }
        )
        assert registered.get("ok") and registered.get("labeled"), registered

        count, _, _ = run_wire_query(service.ask, Q_COUNT, "count")
        ok = count == expected["count"]
        print(f"{'OK  ' if ok else 'FAIL'} count: {count}", flush=True)
        failures += 0 if ok else 1

        _, matches, _ = run_wire_query(service.ask, Q_STREAM, "stream")
        ok = matches == expected["stream"]
        print(
            f"{'OK  ' if ok else 'FAIL'} stream: {len(matches)} rows",
            flush=True,
        )
        failures += 0 if ok else 1

        _, _, groups = run_wire_query(service.ask, Q_GROUPS, "groups")
        ok = groups == expected["groups"]
        print(f"{'OK  ' if ok else 'FAIL'} groups: {groups}", flush=True)
        failures += 0 if ok else 1

        count, _, _ = run_wire_query(service.ask, Q_UNSAT, "count")
        ok = count == expected["unsat"] == 0
        print(f"{'OK  ' if ok else 'FAIL'} unsatisfiable: {count}", flush=True)
        failures += 0 if ok else 1

        error = service.ask({"op": "query", "text": Q_BROKEN, "graph": "g"})
        ok = (
            not error.get("ok")
            and error.get("error") == "query_syntax"
            and error.get("line") == 1
            and isinstance(error.get("column"), int)
            and "^" in error.get("snippet", "")
        )
        print(
            f"{'OK  ' if ok else 'FAIL'} structured syntax error: "
            f"{error.get('error')} at {error.get('line')}:"
            f"{error.get('column')}",
            flush=True,
        )
        failures += 0 if ok else 1
    finally:
        service.close()
    return failures


# ---------------------------------------------------------------- phase 2
def _launch_shard(index, shard_count):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--shard-index", str(index), "--shard-count", str(shard_count),
            "--epoch", str(EPOCH),
        ],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if "serving on" in line:
            port = int(re.search(r":(\d+) as", line).group(1))
            return process, port
        if process.poll() is not None:
            break
    raise RuntimeError(f"shard {index} failed to start")


def phase_routed(expected, num_shards=2):
    print(
        f"phase 2: BENU-QL routed over {num_shards} TCP shards ...",
        flush=True,
    )
    failures = 0
    shards = []
    try:
        for index in range(num_shards):
            shards.append(_launch_shard(index, num_shards))
        ports = [port for _, port in shards]
        print(f"shards up on ports {ports}", flush=True)
        router = ShardRouter(
            [TCPShardClient("127.0.0.1", port) for port in ports],
            expected_epoch=EPOCH,
        )
        router.register(
            "g",
            edges=[list(e) for e in EDGES],
            labels={str(v): l for v, l in LABELS.items()},
        )

        result = router.submit_query(Q_COUNT, "g").result()
        per_shard = [entry["count"] for entry in result["per_shard"]]
        ok = result["count"] == expected["count"]
        print(
            f"{'OK  ' if ok else 'FAIL'} count: router {result['count']} = "
            f"{' + '.join(map(str, per_shard))}",
            flush=True,
        )
        failures += 0 if ok else 1

        got = sorted(
            tuple(m) for m in router.submit_query(Q_STREAM, "g").matches()
        )
        ok = got == expected["stream"]
        print(f"{'OK  ' if ok else 'FAIL'} stream: {len(got)} rows", flush=True)
        failures += 0 if ok else 1

        result = router.submit_query(Q_GROUPS, "g").result()
        ok = result.get("groups") == expected["groups"]
        print(
            f"{'OK  ' if ok else 'FAIL'} groups: {result.get('groups')}",
            flush=True,
        )
        failures += 0 if ok else 1

        result = router.submit_query(Q_UNSAT, "g").result()
        ok = result["count"] == 0
        print(
            f"{'OK  ' if ok else 'FAIL'} unsatisfiable: {result['count']}",
            flush=True,
        )
        failures += 0 if ok else 1

        router.shutdown()
        router.close()
    finally:
        for process, _ in shards:
            process.terminate()
        for process, _ in shards:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
    return failures


def main():
    expected = oracle()
    print(
        f"oracle: count={expected['count']} "
        f"stream={len(expected['stream'])} groups={expected['groups']}",
        flush=True,
    )
    failures = phase_stdio(expected)
    failures += phase_routed(expected)
    if failures:
        print(f"{failures} query-smoke check(s) failed", file=sys.stderr)
        return 1
    print("query smoke passed: wire results equal the in-process oracle")
    return 0


if __name__ == "__main__":
    sys.exit(main())
