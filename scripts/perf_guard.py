#!/usr/bin/env python
"""Fail the build when a benchmark record regresses vs its previous run.

``benchmarks/common.write_bench_record`` archives the prior
``BENCH_<name>.json`` to ``BENCH_<name>.prev.json`` before every
overwrite, so each results directory carries the newest record and the
one before it.  This guard walks every such pair, compares each numeric
figure found under an ``"ops_per_sec"`` key or any key containing
``speedup`` — suffixed (``exact_hit_speedup``) *and* prefixed
(``speedup_vs_inline``) forms both count — and fails when any figure
fell by more than the threshold (default 20%).  A failing record prints
the full per-metric diff, not just the regressed figures.

Besides the relative diff, ``--min`` imposes *absolute* floors on
guarded figures — e.g. "the process backend must never be slower than
inline, full stop", independent of what the previous record says::

    python scripts/perf_guard.py \
        --min backends:speedup_vs_inline.process=1.0

Usage::

    python scripts/perf_guard.py                    # guard all records
    python scripts/perf_guard.py --name intersect   # one record
    python scripts/perf_guard.py --threshold 0.1    # stricter

Exit status 0 means every guarded figure is within tolerance (records
without a previous run are reported as SKIP — absolute floors still
apply); 1 means at least one regressed.  The pair comparison is
deliberately one-sided: speedups never fail, only slowdowns, so noisy
improvements don't ratchet the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

DEFAULT_RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
DEFAULT_THRESHOLD = 0.20
GUARDED_KEY = "ops_per_sec"
#: Keys ending in this also guard (warm-vs-cold and service speedups).
GUARDED_SUFFIX = "speedup"
#: ... as do keys starting with it (``speedup_vs_inline`` groups).
GUARDED_PREFIX = "speedup"


@dataclass(frozen=True)
class Regression:
    """One guarded figure that fell past the threshold."""

    record: str
    path: str
    previous: float
    current: float

    @property
    def drop(self) -> float:
        return 1.0 - self.current / self.previous

    def __str__(self) -> str:
        unit = "x speedup" if GUARDED_SUFFIX in self.path else "ops/sec"
        return (
            f"{self.record}: {self.path} fell {self.drop:.1%} "
            f"({self.previous:,.1f} -> {self.current:,.1f} {unit})"
        )


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def collect_ops(record: dict, prefix: str = "") -> dict:
    """Flatten every guarded numeric figure into ``{dotted.path: value}``.

    Guarded keys are ``ops_per_sec`` (scalar ``"ops_per_sec": 42.0`` and
    grouped ``"ops_per_sec": {"csr": ..., "frozenset": ...}`` both
    count) and any key ending *or starting* with ``speedup`` — the
    warm-vs-cold ratios the service benchmark records
    (``exact_hit_speedup``, ``service_speedup``, ...) and the
    cross-backend groups of the backend benchmark
    (``speedup_vs_inline``).  Non-numeric leaves are ignored.
    """
    out = {}
    for key, value in record.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        guarded = key == GUARDED_KEY or (
            isinstance(key, str)
            and (key.endswith(GUARDED_SUFFIX) or key.startswith(GUARDED_PREFIX))
        )
        if guarded:
            if _is_number(value):
                out[path] = float(value)
            elif isinstance(value, dict):
                for sub, v in value.items():
                    if _is_number(v):
                        out[f"{path}.{sub}"] = float(v)
        elif isinstance(value, dict):
            out.update(collect_ops(value, path))
    return out


def diff_records(
    previous: dict, current: dict, threshold: float = DEFAULT_THRESHOLD, name: str = ""
) -> list:
    """Regressions between two parsed records.

    Figures present only on one side are ignored — experiments come and
    go; the guard protects figures measured by *both* runs.
    """
    prev_ops = collect_ops(previous)
    curr_ops = collect_ops(current)
    regressions = []
    for path in sorted(prev_ops.keys() & curr_ops.keys()):
        prev, curr = prev_ops[path], curr_ops[path]
        if prev > 0 and curr < prev * (1.0 - threshold):
            regressions.append(Regression(name, path, prev, curr))
    return regressions


def format_diff(
    previous: dict, current: dict, threshold: float = DEFAULT_THRESHOLD
) -> list:
    """Readable per-metric diff lines covering *every* shared figure.

    Printed under a FAIL so the report shows the whole record's shape —
    what regressed, what held, and by how much — not just the offenders.
    """
    prev_ops = collect_ops(previous)
    curr_ops = collect_ops(current)
    shared = sorted(prev_ops.keys() & curr_ops.keys())
    if not shared:
        return []
    width = max(len(path) for path in shared)
    lines = []
    for path in shared:
        prev, curr = prev_ops[path], curr_ops[path]
        change = (curr - prev) / prev if prev else float("inf")
        flag = (
            "  <-- REGRESSED"
            if prev > 0 and curr < prev * (1.0 - threshold)
            else ""
        )
        lines.append(
            f"      {path:<{width}}  {prev:>14,.2f} -> {curr:>14,.2f}"
            f"  {change:+8.1%}{flag}"
        )
    return lines


def parse_floors(specs) -> dict:
    """``["backends:speedup_vs_inline.process=1.0", ...]`` parsed to
    ``{record_name: {dotted.path: floor}}``."""
    floors: dict = {}
    for spec in specs or ():
        try:
            target, value = spec.rsplit("=", 1)
            record_name, path = target.split(":", 1)
            floors.setdefault(record_name, {})[path] = float(value)
        except ValueError:
            raise SystemExit(
                f"perf-guard: bad --min spec {spec!r} "
                "(expected NAME:dotted.path=VALUE)"
            )
    return floors


def check_floors(current: dict, floors: dict, name: str, out=sys.stdout) -> list:
    """Guarded figures of ``current`` below their absolute floor."""
    ops = collect_ops(current)
    failures = []
    for path, floor in floors.items():
        value = ops.get(path)
        if value is None:
            print(f"FAIL  {name}: --min path {path} not in record", file=out)
            failures.append(path)
        elif value < floor:
            print(
                f"FAIL  {name}: {path} = {value:,.2f} below floor {floor:,.2f}",
                file=out,
            )
            failures.append(path)
        else:
            print(
                f"OK    {name}: {path} = {value:,.2f} >= floor {floor:,.2f}",
                file=out,
            )
    return failures


def guard(
    results_dir: Path = DEFAULT_RESULTS_DIR,
    threshold: float = DEFAULT_THRESHOLD,
    name: str = None,
    out=sys.stdout,
    floors: dict = None,
) -> int:
    """Guard every BENCH pair in ``results_dir``; return the exit code."""
    pattern = f"BENCH_{name}.json" if name else "BENCH_*.json"
    records = sorted(
        p for p in results_dir.glob(pattern) if not p.name.endswith(".prev.json")
    )
    if not records:
        print(f"perf-guard: no records matching {pattern} in {results_dir}", file=out)
        return 1 if name else 0
    failures = []
    floors = floors or {}
    for path in records:
        label = path.stem[len("BENCH_"):]
        current = json.loads(path.read_text(encoding="utf-8"))
        # Absolute floors apply to the current record alone — even on a
        # fresh results directory with no previous run to diff against.
        failures.extend(check_floors(current, floors.get(label, {}), label, out))
        prev_path = path.with_name(f"BENCH_{label}.prev.json")
        if not prev_path.exists():
            print(f"SKIP  {label}: no previous record", file=out)
            continue
        previous = json.loads(prev_path.read_text(encoding="utf-8"))
        guarded = len(collect_ops(previous).keys() & collect_ops(current).keys())
        regressions = diff_records(previous, current, threshold, label)
        if regressions:
            print(f"FAIL  {label}: {len(regressions)}/{guarded} figures regressed", file=out)
            for r in regressions:
                print(f"      {r}", file=out)
            for line in format_diff(previous, current, threshold):
                print(line, file=out)
            failures.extend(regressions)
        else:
            print(f"OK    {label}: {guarded} figures within {threshold:.0%}", file=out)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir", type=Path, default=DEFAULT_RESULTS_DIR,
        help="directory holding BENCH_*.json records",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="max tolerated fractional drop (default 0.20)",
    )
    parser.add_argument(
        "--name", default=None,
        help="guard only BENCH_<name>.json instead of every record",
    )
    parser.add_argument(
        "--min", action="append", dest="floors", metavar="NAME:PATH=VALUE",
        help="absolute floor on a guarded figure, e.g. "
        "backends:speedup_vs_inline.process=1.0 (repeatable)",
    )
    args = parser.parse_args(argv)
    return guard(
        args.results_dir, args.threshold, args.name,
        floors=parse_floors(args.floors),
    )


if __name__ == "__main__":
    sys.exit(main())
