#!/usr/bin/env python
"""Enforce the engine-layering contracts (AST import lint).

Two architectural invariants, both born out of refactors that must not
silently regress:

1. **labeled/ owns no execution loop.**  The labeled front-end lowers
   onto the shared plan pipeline (``prepare_plan`` / ``execute_plan``);
   it must never reach into the execution internals — the simulated
   cluster, task generation/splitting, workers, the interpreter or the
   backend registry — to run matches itself.  If labeled code needs a
   runtime behavior, it belongs in the engine behind the shared
   pipeline.
2. **engine/parallel is a sealed deprecation shim.**  Nothing under
   ``src/repro/`` may import it (or its ``ParallelRunner`` /
   ``parallel_count`` names) except the shim itself and the lazy
   re-export in ``engine/__init__.py``; new code goes through
   ``BenuConfig(execution_backend="process")``.

The check is AST-based and resolves relative imports, so aliasing or
``from .. import`` spellings cannot slip past it.

Usage::

    python scripts/lint_layering.py            # lint src/repro
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGET = REPO_ROOT / "src" / "repro"

#: Execution internals the labeled/ package must not touch (prefixes).
EXECUTION_INTERNALS = (
    "repro.engine.cluster",
    "repro.engine.task_split",
    "repro.engine.worker",
    "repro.engine.interpreter",
    "repro.engine.backends",
    "repro.engine.local_task",
)
#: Names that expose an execution loop even via ``from ..engine import``.
EXECUTION_NAMES = {
    "SimulatedCluster",
    "Worker",
    "generate_tasks",
    "split_slices",
    "interpret_plan",
    "interpret_all",
    "LocalSearchTask",
    "get_backend",
}
#: The deprecated shim module and its entry points.
PARALLEL_MODULE = "repro.engine.parallel"
PARALLEL_NAMES = {"ParallelRunner", "parallel_count"}
#: Files allowed to reference the shim (relative to src/repro).
PARALLEL_ALLOWED = {"engine/parallel.py", "engine/__init__.py"}


def module_package(path: Path, root: Path) -> str:
    """Dotted package of the module at ``path`` (root maps to 'repro')."""
    rel = path.relative_to(root).with_suffix("")
    parts = ("repro",) + rel.parts
    if parts[-1] == "__init__":
        return ".".join(parts[:-1])  # a package IS its own __package__
    return ".".join(parts[:-1])  # the containing package


def resolve_imports(tree: ast.AST, package: str):
    """Yield ``(lineno, module, names)`` with relative imports resolved."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name, ()
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level:
                base = package.split(".")
                # level 1 = the current package, each extra level one up.
                base = base[: len(base) - (node.level - 1)]
                module = ".".join(base + ([module] if module else []))
            yield node.lineno, module, tuple(a.name for a in node.names)


def lint_file(path: Path, root: Path, out=sys.stdout) -> int:
    rel = path.relative_to(root).as_posix()
    package = module_package(path, root)
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations = 0
    in_labeled = rel.startswith("labeled/")
    for lineno, module, names in resolve_imports(tree, package):
        if in_labeled:
            if any(
                module == p or module.startswith(p + ".")
                for p in EXECUTION_INTERNALS
            ):
                print(
                    f"{path}:{lineno}: labeled/ imports execution internal "
                    f"{module!r} — lower through prepare_plan/execute_plan "
                    "instead of running an enumeration loop",
                    file=out,
                )
                violations += 1
            if module in ("repro.engine", "repro.engine.benu"):
                loops = sorted(set(names) & EXECUTION_NAMES)
                if loops:
                    print(
                        f"{path}:{lineno}: labeled/ imports execution "
                        f"primitives {loops} — labeled enumeration must go "
                        "through the shared plan pipeline",
                        file=out,
                    )
                    violations += 1
        if rel not in PARALLEL_ALLOWED:
            if module == PARALLEL_MODULE or module.startswith(
                PARALLEL_MODULE + "."
            ):
                print(
                    f"{path}:{lineno}: import of deprecated {module!r} — use "
                    'BenuConfig(execution_backend="process")',
                    file=out,
                )
                violations += 1
            elif module == "repro.engine" and set(names) & PARALLEL_NAMES:
                print(
                    f"{path}:{lineno}: import of deprecated "
                    f"{sorted(set(names) & PARALLEL_NAMES)} — use "
                    'BenuConfig(execution_backend="process")',
                    file=out,
                )
                violations += 1
    return violations


def main(argv=None) -> int:
    targets = [Path(a) for a in (argv if argv is not None else sys.argv[1:])]
    if not targets:
        targets = [DEFAULT_TARGET]
    violations = 0
    for target in targets:
        root = target if target.is_dir() else target.parent
        files = [target] if target.is_file() else sorted(target.rglob("*.py"))
        for path in files:
            violations += lint_file(path, root)
    if violations:
        print(f"lint-layering: {violations} violation(s)")
        return 1
    print("lint-layering: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
