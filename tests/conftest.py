"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.generators import erdos_renyi, random_connected_graph
from repro.graph.graph import Graph, complete_graph, cycle_graph
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import PATTERNS, get_pattern
from repro.pattern.pattern_graph import PatternGraph


@pytest.fixture
def triangle() -> Graph:
    return get_pattern("triangle")


@pytest.fixture
def small_data_graph() -> Graph:
    """A ~30-vertex random graph, relabeled under the (degree, id) order."""
    g, _ = relabel_by_degree_order(erdos_renyi(30, 0.25, seed=42))
    return g


@pytest.fixture
def medium_data_graph() -> Graph:
    """A denser ~60-vertex random graph, relabeled."""
    g, _ = relabel_by_degree_order(erdos_renyi(60, 0.15, seed=7))
    return g


@pytest.fixture
def paper_demo_graph() -> Graph:
    """A small hand-made graph in the spirit of Fig. 1(b)."""
    return Graph(
        [
            (1, 2), (1, 3), (1, 5), (1, 7), (1, 8),
            (2, 3), (2, 5), (2, 7),
            (3, 4), (3, 5), (3, 7),
            (4, 5), (4, 6),
            (5, 8), (6, 7), (7, 8),
        ]
    )


def all_pattern_names():
    """Every named pattern small enough for exhaustive testing."""
    return sorted(PATTERNS)


def pattern_graph(name: str) -> PatternGraph:
    return PatternGraph(get_pattern(name), name=name)
