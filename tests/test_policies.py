"""Tests for cache replacement policies."""

import pytest

from repro.graph.graph import complete_graph
from repro.storage.cache import LRUDatabaseCache
from repro.storage.kvstore import DistributedKVStore
from repro.storage.policies import (
    POLICIES,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestFactory:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_known_policies(self, name):
        policy = make_policy(name)
        policy.on_insert("a")
        assert policy.victim() == "a"

    def test_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown replacement policy"):
            make_policy("mru")


class TestLRU:
    def test_evicts_least_recent(self):
        p = LRUPolicy()
        for k in "abc":
            p.on_insert(k)
        p.on_hit("a")
        assert p.victim() == "b"

    def test_eviction_removes_tracking(self):
        p = LRUPolicy()
        p.on_insert("a")
        p.on_insert("b")
        p.on_evict("a")
        assert p.victim() == "b"


class TestFIFO:
    def test_hits_do_not_refresh(self):
        p = FIFOPolicy()
        for k in "abc":
            p.on_insert(k)
        p.on_hit("a")
        assert p.victim() == "a"


class TestLFU:
    def test_evicts_least_frequent(self):
        p = LFUPolicy()
        for k in "abc":
            p.on_insert(k)
        p.on_hit("a")
        p.on_hit("a")
        p.on_hit("b")
        assert p.victim() == "c"

    def test_tie_broken_by_arrival(self):
        p = LFUPolicy()
        p.on_insert("x")
        p.on_insert("y")
        assert p.victim() == "x"


class TestRandom:
    def test_victim_is_tracked_key(self):
        p = RandomPolicy(seed=3)
        for k in "abcdef":
            p.on_insert(k)
        p.on_evict("c")
        for _ in range(20):
            assert p.victim() in set("abdef")

    def test_deterministic_with_seed(self):
        def victims(seed):
            p = RandomPolicy(seed=seed)
            for k in "abcdef":
                p.on_insert(k)
            return [p.victim() for _ in range(5)]

        assert victims(1) == victims(1)


class TestCacheIntegration:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_values_always_correct(self, name):
        g = complete_graph(8)
        store = DistributedKVStore.from_graph(g)
        per_entry = store.value_bytes(1)
        cache = LRUDatabaseCache(store, capacity_bytes=3 * per_entry, policy=name)
        for _ in range(3):
            for v in g.vertices:
                assert cache.get(v) == g.neighbors(v)
        assert cache.used_bytes <= 3 * per_entry
        assert cache.stats.evictions > 0

    def test_fifo_vs_lru_on_looping_access(self):
        """A revisit-heavy trace favors LRU — the paper's rationale."""
        g = complete_graph(10)
        store = DistributedKVStore.from_graph(g)
        per_entry = store.value_bytes(1)
        trace = [1, 2, 3, 1, 2, 3, 1, 2, 3, 4, 1, 2, 3, 5, 1, 2, 3]

        def misses(policy):
            cache = LRUDatabaseCache(
                store, capacity_bytes=4 * per_entry, policy=policy
            )
            for v in trace:
                cache.get(v)
            return cache.stats.misses

        assert misses("lru") <= misses("fifo")

    def test_clear_resets_policy_state(self):
        g = complete_graph(4)
        store = DistributedKVStore.from_graph(g)
        cache = LRUDatabaseCache(store, policy="lfu")
        cache.get(1)
        cache.clear()
        cache.get(2)
        assert len(cache) == 1

    def test_config_rejects_unknown_policy(self):
        from repro.engine.config import BenuConfig

        with pytest.raises(ValueError, match="cache policy"):
            BenuConfig(cache_policy="mru")

    def test_run_benu_with_each_policy(self):
        from repro.engine.benu import count_subgraphs
        from repro.engine.config import BenuConfig
        from repro.graph.generators import erdos_renyi
        from repro.graph.patterns import get_pattern

        g = erdos_renyi(25, 0.3, seed=3)
        expected = None
        for name in sorted(POLICIES):
            config = BenuConfig(cache_policy=name, cache_capacity_bytes=512)
            got = count_subgraphs(get_pattern("triangle"), g, config)
            if expected is None:
                expected = got
            assert got == expected, name
