"""Tests for vertex-cover utilities (VCBC support)."""

import pytest

from repro.graph.graph import Graph, complete_graph, cycle_graph, star_graph
from repro.graph.patterns import get_pattern
from repro.pattern.vertex_cover import (
    cover_prefix_length,
    is_vertex_cover,
    minimal_covers,
    minimum_vertex_cover,
)


class TestIsVertexCover:
    def test_full_vertex_set_covers(self):
        g = get_pattern("q1")
        assert is_vertex_cover(g, g.vertices)

    def test_empty_cover_only_for_edgeless(self):
        assert is_vertex_cover(Graph(vertices=[1, 2]), [])
        assert not is_vertex_cover(Graph([(1, 2)]), [])

    def test_star_hub(self):
        g = star_graph(4)
        assert is_vertex_cover(g, [1])
        assert not is_vertex_cover(g, [2, 3])


class TestMinimumCover:
    @pytest.mark.parametrize(
        "graph,size",
        [
            (complete_graph(4), 3),
            (cycle_graph(4), 2),
            (cycle_graph(5), 3),
            (star_graph(5), 1),
        ],
    )
    def test_known_sizes(self, graph, size):
        cover = minimum_vertex_cover(graph)
        assert len(cover) == size
        assert is_vertex_cover(graph, cover)

    def test_minimal_covers_all_valid(self):
        g = cycle_graph(4)
        covers = minimal_covers(g)
        assert covers == [frozenset({1, 3}), frozenset({2, 4})]


class TestCoverPrefix:
    def test_demo_pattern_paper_order(self):
        g = get_pattern("demo")
        assert cover_prefix_length(g, [1, 3, 5, 2, 6, 4]) == 3

    def test_prefix_is_minimal(self):
        g = cycle_graph(4)
        assert cover_prefix_length(g, [1, 3, 2, 4]) == 2
        assert cover_prefix_length(g, [1, 2, 3, 4]) == 3

    def test_edgeless_pattern(self):
        g = Graph(vertices=[1])
        assert cover_prefix_length(g, [1]) == 0

    def test_full_order_always_covers(self):
        for name in ["q1", "q5", "q9"]:
            g = get_pattern(name)
            k = cover_prefix_length(g, list(g.vertices))
            assert 1 <= k <= g.num_vertices
            assert is_vertex_cover(g, list(g.vertices)[:k])
            assert not is_vertex_cover(g, list(g.vertices)[: k - 1])
