"""Tests for the LRU database cache (Section V-A)."""

import pytest

from repro.graph.graph import complete_graph, star_graph
from repro.storage.cache import CacheStats, LRUDatabaseCache, new_triangle_cache
from repro.storage.kvstore import DistributedKVStore


def store_for(graph):
    return DistributedKVStore.from_graph(graph)


class TestHitsAndMisses:
    def test_first_get_misses_second_hits(self):
        cache = LRUDatabaseCache(store_for(complete_graph(3)))
        cache.get(1)
        cache.get(1)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert cache.store.stats.queries == 1

    def test_hit_rate(self):
        cache = LRUDatabaseCache(store_for(complete_graph(3)))
        assert cache.stats.hit_rate == 0.0
        cache.get(1)
        cache.get(1)
        cache.get(1)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_values_correct_after_cache(self):
        g = complete_graph(4)
        cache = LRUDatabaseCache(store_for(g))
        for _ in range(2):
            for v in g.vertices:
                assert cache.get(v) == g.neighbors(v)

    def test_merge_stats(self):
        a = CacheStats(1, 2, 3)
        a.merge(CacheStats(10, 20, 30))
        assert (a.hits, a.misses, a.evictions) == (11, 22, 33)


class TestCapacity:
    def test_unbounded_never_evicts(self):
        g = star_graph(50)
        cache = LRUDatabaseCache(store_for(g), capacity_bytes=None)
        for v in g.vertices:
            cache.get(v)
        assert cache.stats.evictions == 0
        assert len(cache) == g.num_vertices

    def test_zero_capacity_disables_caching(self):
        g = complete_graph(3)
        cache = LRUDatabaseCache(store_for(g), capacity_bytes=0)
        cache.get(1)
        cache.get(1)
        assert cache.stats.hits == 0
        assert cache.store.stats.queries == 2
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUDatabaseCache(store_for(complete_graph(3)), capacity_bytes=-1)

    def test_eviction_respects_capacity(self):
        g = complete_graph(6)
        store = store_for(g)
        per_entry = store.value_bytes(1)
        cache = LRUDatabaseCache(store, capacity_bytes=per_entry * 2)
        for v in g.vertices:
            cache.get(v)
        assert cache.used_bytes <= per_entry * 2
        assert cache.stats.evictions > 0

    def test_lru_order(self):
        g = complete_graph(4)
        store = store_for(g)
        per_entry = store.value_bytes(1)
        cache = LRUDatabaseCache(store, capacity_bytes=per_entry * 2)
        cache.get(1)
        cache.get(2)
        cache.get(1)       # refresh 1: now 2 is least recent
        cache.get(3)       # evicts 2
        cache.get(1)
        assert cache.stats.hits == 2  # the refresh + the final get(1)
        before = cache.store.stats.queries
        cache.get(2)       # 2 was evicted: must re-query
        assert cache.store.stats.queries == before + 1

    def test_oversized_value_not_admitted(self):
        g = star_graph(100)  # hub adjacency is big
        store = store_for(g)
        hub_bytes = store.value_bytes(1)
        cache = LRUDatabaseCache(store, capacity_bytes=hub_bytes - 1)
        cache.get(1)
        assert len(cache) == 0  # too big to cache, nothing evicted for it

    def test_clear(self):
        cache = LRUDatabaseCache(store_for(complete_graph(3)))
        cache.get(1)
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0


class TestInterfaces:
    def test_as_getter(self):
        g = complete_graph(3)
        cache = LRUDatabaseCache(store_for(g))
        get = cache.as_getter()
        assert get(2) == g.neighbors(2)

    def test_query_stats_ledger_counts_misses_only(self):
        from repro.storage.kvstore import QueryStats

        ledger = QueryStats()
        cache = LRUDatabaseCache(store_for(complete_graph(3)), query_stats=ledger)
        cache.get(1)
        cache.get(1)
        assert ledger.queries == 1

    def test_new_triangle_cache_is_fresh_dict(self):
        a, b = new_triangle_cache(), new_triangle_cache()
        assert a == {} and a is not b
