"""Measured task granularity + the process backend's chunking contract.

Three layers pinned here:

* the chunk-size math of :mod:`repro.engine.granularity` — budget-driven
  sizing, the balance clamp, the cold-start fallback, and the EWMA cost
  profile;
* the end-to-end feedback loop — ``mean_task_wall_seconds`` measured by
  one process-backend run re-chunks the next via ``task_cost_hint``, and
  the service's catalog records per-plan costs across queries;
* ``_run_chunk``'s contract — the parent chunks manually and submits
  with ``imap_unordered(chunksize=1)`` so results stay timeout-pollable,
  chunk arrival order never affects accounting (records are
  self-contained), and packed ``array('q')`` task/match buffers survive
  worker restarts (``maxtasksperchild=1``) byte-for-byte.
"""

from array import array

import pytest

from repro.engine.backends.process import ProcessBackend, _run_chunk
from repro.engine.benu import run_benu
from repro.engine.config import BenuConfig
from repro.engine.granularity import (
    FALLBACK_PULLS_PER_WORKER,
    TaskCostProfile,
    fallback_chunksize,
    measured_chunksize,
    task_cost_key,
)
from repro.engine.local_task import LocalSearchTask
from repro.graph.generators import chung_lu
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import get_pattern
from repro.service import BenuService


@pytest.fixture(scope="module")
def workload():
    g, _ = relabel_by_degree_order(chung_lu(250, 5.0, exponent=2.4, seed=23))
    return g


class TestChunkSizeMath:
    def test_fallback_is_pulls_per_worker(self):
        assert fallback_chunksize(2400, 2) == 2400 // (2 * FALLBACK_PULLS_PER_WORKER)
        assert fallback_chunksize(3, 8) == 1  # never zero

    def test_measured_targets_the_budget(self):
        # 1ms tasks, 20ms budget -> 20 tasks per pull.
        assert measured_chunksize(10_000, 2, 0.001, target_seconds=0.02) == 20

    def test_measured_clamped_by_balance(self):
        # Huge budget would want one giant chunk; the balance clamp keeps
        # at least MIN_PULLS_PER_WORKER pulls per worker.
        assert measured_chunksize(2400, 2, 1e-9) == 2400 // (2 * 4)

    def test_measured_heavy_tasks_go_fine_grained(self):
        assert measured_chunksize(2400, 2, 0.5) == 1

    def test_no_hint_falls_back(self):
        assert measured_chunksize(2400, 2, None) == fallback_chunksize(2400, 2)
        assert measured_chunksize(2400, 2, 0.0) == fallback_chunksize(2400, 2)
        assert measured_chunksize(2400, 2, -1.0) == fallback_chunksize(2400, 2)

    def test_backend_precedence_explicit_then_hint_then_fallback(self):
        explicit = ProcessBackend(queue_chunksize=7)
        assert explicit._chunksize(1000, 2, task_cost_hint=0.001) == 7
        auto = ProcessBackend()
        assert auto._chunksize(1000, 2) == fallback_chunksize(1000, 2)
        assert auto._chunksize(1000, 2, task_cost_hint=0.001) == measured_chunksize(
            1000, 2, 0.001
        )


class TestTaskCostProfile:
    def test_ewma_and_cold_start(self):
        profile = TaskCostProfile(alpha=0.5)
        key = ("p", ("1", "2"), 64, "count")
        assert profile.hint(key) is None
        profile.record(key, 0.004)
        assert profile.hint(key) == 0.004
        profile.record(key, 0.002)
        assert profile.hint(key) == pytest.approx(0.003)
        assert len(profile) == 1

    def test_nonpositive_measurements_ignored(self):
        profile = TaskCostProfile()
        key = ("p", (), None, "count")
        profile.record(key, 0.0)
        profile.record(key, -1.0)
        assert profile.hint(key) is None

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            TaskCostProfile(alpha=0.0)
        with pytest.raises(ValueError):
            TaskCostProfile(alpha=1.5)

    def test_key_ignores_worker_count_but_not_mode(self, workload):
        from repro.engine.benu import build_plan

        plan = build_plan(get_pattern("triangle"), workload)
        a = task_cost_key(plan, 64, "count")
        b = task_cost_key(plan, 64, "collect")
        c = task_cost_key(plan, None, "count")
        assert len({a, b, c}) == 3


class TestMeasuredFeedback:
    def test_mean_task_wall_measured_and_usable(self, workload):
        config = BenuConfig(
            execution_backend="process", num_workers=2, relabel=False
        )
        cold = run_benu(get_pattern("triangle"), workload, config)
        assert cold.mean_task_wall_seconds > 0
        # Feeding the measurement back must not change results.
        from repro.engine.benu import execute_plan, prepare_data, prepare_plan

        prepared = prepare_data(workload, config)
        plan = prepare_plan(get_pattern("triangle"), prepared, config)
        warm = execute_plan(
            plan, prepared, config,
            task_cost_hint=cold.mean_task_wall_seconds,
        )
        assert warm.count == cold.count
        assert warm.counters == cold.counters

    def test_simulated_backend_reports_zero(self, workload):
        result = run_benu(
            get_pattern("triangle"), workload, BenuConfig(relabel=False)
        )
        assert result.mean_task_wall_seconds == 0.0

    def test_service_records_costs_per_plan_profile(self, workload):
        with BenuService() as service:
            service.register_graph("g", workload, relabel=False)
            entry = service.catalog.get("g")
            assert len(entry.task_costs) == 0
            handle = service.submit(
                pattern=get_pattern("triangle"), graph="g",
                config=BenuConfig(
                    execution_backend="process", num_workers=2, relabel=False
                ),
            )
            handle.result(timeout=120)
            assert len(entry.task_costs) == 1
            # A second identical query reuses (and re-records) the key.
            handle = service.submit(
                pattern=get_pattern("triangle"), graph="g",
                config=BenuConfig(
                    execution_backend="process", num_workers=2, relabel=False
                ),
            )
            handle.result(timeout=120)
            assert len(entry.task_costs) == 1


class TestChunkContract:
    """_run_chunk's manual-chunking and packed-buffer invariants."""

    def _simulated(self, workload, **config):
        return run_benu(
            get_pattern("triangle"), workload,
            BenuConfig(relabel=False, collect=True, **config),
        )

    def test_packed_chunks_rehydrate_and_results_match(self, workload):
        # queue_chunksize=1 -> every chunk is its own pool task; the
        # packed starts round-trip through array('q') rehydration.
        oracle = self._simulated(workload)
        result = run_benu(
            get_pattern("triangle"), workload,
            BenuConfig(
                relabel=False, collect=True, execution_backend="process",
                num_workers=2,
            ),
        )
        assert sorted(result.matches) == sorted(oracle.matches)
        assert result.counters == oracle.counters

    def test_worker_restarts_cannot_corrupt_packed_accounting(self, workload):
        # maxtasksperchild=1 restarts a worker after every chunk — the
        # harshest interleaving: every chunk crosses a fresh process and
        # arrival order is scrambled.  Self-contained records must still
        # reproduce the exact simulated counters, kernel deltas, and
        # match multiset.
        from repro.engine.backends.base import ExecutionRequest
        from repro.engine.benu import prepare_data, prepare_plan

        config = BenuConfig(
            relabel=False, collect=True, execution_backend="process",
            num_workers=2, adjacency_backend="csr",
        )
        prepared = prepare_data(workload, config)
        plan = prepare_plan(get_pattern("triangle"), prepared, config)
        backend = ProcessBackend(queue_chunksize=1, maxtasksperchild=1)
        result = backend.execute(
            ExecutionRequest(plan=plan, graph=prepared.graph, config=config)
        )
        oracle = self._simulated(workload, adjacency_backend="csr")
        assert sorted(result.matches) == sorted(oracle.matches)
        assert result.counters == oracle.counters
        assert (
            result.telemetry.kernel_counts == oracle.telemetry.kernel_counts
        )

    def test_run_chunk_rehydrates_packed_starts_in_order(self, workload):
        # Worker-side unit check, run in-process via the inline path's
        # initializer state.
        from repro.engine.backends.process import _init_worker, _worker_state
        from repro.engine.benu import prepare_data, prepare_plan

        config = BenuConfig(relabel=False, collect=True)
        prepared = prepare_data(workload, config)
        plan = prepare_plan(get_pattern("triangle"), prepared, config)
        _init_worker(plan, "frozenset", prepared.graph, "collect", None)
        starts = [v for v in list(prepared.graph.vertices)[:5]]
        base, records = _run_chunk((17, array("q", starts)))
        assert base == 17
        assert len(records) == len(starts)
        packed_base, packed_records = _run_chunk(
            (17, [LocalSearchTask(s) for s in starts])
        )
        assert [r[0] for r in records] == [r[0] for r in packed_records]
        _worker_state.clear()

    def test_unsplit_int_tasks_pack_split_tasks_do_not(self):
        packed = ProcessBackend._pack_tasks(
            [LocalSearchTask(3), LocalSearchTask(5)]
        )
        assert isinstance(packed, array) and list(packed) == [3, 5]
        mixed = [
            LocalSearchTask(3),
            LocalSearchTask(5, candidate_slice=(7, 9), split_index=1, split_total=2),
        ]
        assert ProcessBackend._pack_tasks(mixed) is mixed
