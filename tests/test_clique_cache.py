"""Tests for the generalized clique cache (the paper's future-work §IV-B)."""

import pytest

from repro.engine.benu import build_plan, count_subgraphs
from repro.engine.config import BenuConfig
from repro.engine.interpreter import interpret_plan
from repro.graph.generators import erdos_renyi
from repro.graph.graph import complete_graph
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import get_pattern
from repro.pattern.pattern_graph import PatternGraph
from repro.plan.codegen import compile_plan
from repro.plan.generation import generate_raw_plan
from repro.plan.instructions import InstructionType, kcc, trc
from repro.plan.optimizer import (
    _restorations,
    apply_generalized_clique_cache,
    optimize,
)
from repro.plan.validate import validate_plan


@pytest.fixture
def data_graph():
    g, _ = relabel_by_degree_order(erdos_renyi(26, 0.4, seed=19))
    return g


def gcc_plan(name, order=None, compressed=False):
    pg = PatternGraph(get_pattern(name), name)
    plan = optimize(generate_raw_plan(pg, order or list(pg.vertices)))
    apply_generalized_clique_cache(plan)
    return plan


class TestInstructionForm:
    def test_kcc_constructor(self):
        inst = kcc("T9", ["f1", "f2", "f3"], "T7", "A3")
        assert inst.type is InstructionType.TRC
        assert inst.operands == ("f1", "f2", "f3", "T7", "A3")

    def test_key_operands_must_be_fvars(self):
        with pytest.raises(ValueError, match="f-variables"):
            kcc("T9", ["f1", "A2"], "T7", "A3")

    def test_minimum_arity(self):
        with pytest.raises(ValueError):
            kcc("T9", [], "T7", "A3")


class TestRestorations:
    def test_adjacency_vars_restore_to_singletons(self):
        pg = PatternGraph(complete_graph(4), "k4")
        plan = optimize(generate_raw_plan(pg, [1, 2, 3, 4]), 2)
        restored = _restorations(plan)
        assert restored["A1"] == frozenset({1})

    def test_chained_temporaries_restore_to_unions(self):
        pg = PatternGraph(complete_graph(5), "k5")
        plan = optimize(generate_raw_plan(pg, [1, 2, 3, 4, 5]), 2)
        restored = _restorations(plan)
        # Some temporary composes at least three adjacency sets in K5.
        assert any(len(v) >= 3 for v in restored.values())

    def test_filtered_ints_not_restorable(self):
        pg = PatternGraph(complete_graph(4), "k4")
        plan = optimize(generate_raw_plan(pg, [1, 2, 3, 4]), 2)
        restored = _restorations(plan)
        filtered = [i.target for i in plan.instructions if i.filters]
        assert all(t not in restored for t in filtered)


class TestTransformation:
    def test_clique_pattern_gets_multi_key_trc(self):
        plan = gcc_plan("clique5")
        multi = [
            i
            for i in plan.instructions
            if i.type is InstructionType.TRC and len(i.operands) > 4
        ]
        assert multi, "K5 plans have higher-clique intersections to cache"
        validate_plan(plan)

    def test_non_clique_intersections_untouched(self):
        # In the square, candidate sets intersect adjacency of two
        # *non-adjacent* corners: not a clique, never cached.
        plan = gcc_plan("square", [1, 3, 2, 4])
        assert not plan.instructions_of_type(InstructionType.TRC)

    def test_triangle_cache_subsumed(self):
        """Every start-adjacent pair Opt3 would cache is also a 2-clique."""
        pg = PatternGraph(get_pattern("demo"), "demo")
        opt3 = optimize(generate_raw_plan(pg, [1, 3, 5, 2, 6, 4]), 3)
        opt3_trcs = len(opt3.instructions_of_type(InstructionType.TRC))
        gcc = gcc_plan("demo", [1, 3, 5, 2, 6, 4])
        gcc_trcs = len(gcc.instructions_of_type(InstructionType.TRC))
        assert gcc_trcs >= opt3_trcs


class TestCorrectness:
    @pytest.mark.parametrize(
        "name", ["triangle", "clique4", "clique5", "q3", "q7", "demo"]
    )
    def test_results_unchanged(self, name, data_graph):
        pg = PatternGraph(get_pattern(name), name)
        base = optimize(generate_raw_plan(pg, list(pg.vertices)))
        gcc = gcc_plan(name)
        vset = frozenset(data_graph.vertices)

        def collect(plan):
            compiled = compile_plan(plan, mode="collect")
            out = []
            for v in data_graph.vertices:
                compiled.run(v, data_graph.neighbors, vset=vset, emit=out.append)
            return sorted(out)

        assert collect(base) == collect(gcc)

    def test_interpreter_agrees_with_codegen(self, data_graph):
        plan = gcc_plan("clique4")
        vset = frozenset(data_graph.vertices)
        compiled = compile_plan(plan)
        for v in list(data_graph.vertices)[:10]:
            a = compiled.run(v, data_graph.neighbors, vset=vset, tcache={})
            b = interpret_plan(plan, v, data_graph.neighbors, vset, tcache={})
            assert (a.results, a.trc_ops, a.trc_misses) == (
                b.results,
                b.trc_ops,
                b.trc_misses,
            )

    def test_config_flag_end_to_end(self, data_graph):
        for name in ("clique4", "q3"):
            plain = count_subgraphs(
                get_pattern(name), data_graph, BenuConfig(relabel=False)
            )
            cached = count_subgraphs(
                get_pattern(name),
                data_graph,
                BenuConfig(relabel=False, generalized_clique_cache=True),
            )
            assert plain == cached

    def test_build_plan_flag(self):
        plan = build_plan(
            get_pattern("clique5"),
            order=[1, 2, 3, 4, 5],
            generalized_clique_cache=True,
        )
        validate_plan(plan)
        assert any(
            i.type is InstructionType.TRC and len(i.operands) > 4
            for i in plan.instructions
        )


class TestReuse:
    def test_cache_hits_on_clique_pattern(self, data_graph):
        """On K5, the 3-clique set around (f1, f2, f3) is recomputed by
        deeper levels without the cache; with it, repeats hit."""
        pg = PatternGraph(complete_graph(5), "k5")
        # An order that revisits earlier cliques deeper in the search.
        plan = optimize(generate_raw_plan(pg, [1, 2, 3, 4, 5]))
        apply_generalized_clique_cache(plan)
        compiled = compile_plan(plan)
        vset = frozenset(data_graph.vertices)
        totals = [
            compiled.run(v, data_graph.neighbors, vset=vset)
            for v in data_graph.vertices
        ]
        assert sum(t.trc_ops for t in totals) >= sum(
            t.trc_misses for t in totals
        )
