"""Tests for repro.graph.graph."""

import pytest

from repro.graph.graph import (
    Graph,
    GraphError,
    complete_graph,
    cycle_graph,
    normalize_edge,
    path_graph,
    star_graph,
    union_graphs,
)


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(3, 1) == (1, 3)
        assert normalize_edge(1, 3) == (1, 3)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            normalize_edge(2, 2)


class TestGraphConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_isolated_vertices(self):
        g = Graph(vertices=[1, 2, 3])
        assert g.num_vertices == 3
        assert g.num_edges == 0
        assert g.degree(2) == 0

    def test_duplicate_edges_collapse(self):
        g = Graph([(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph([(1, 1)])

    def test_vertices_sorted(self):
        g = Graph([(5, 3), (1, 9)])
        assert g.vertices == (1, 3, 5, 9)

    def test_edges_canonical_sorted(self):
        g = Graph([(4, 2), (3, 1), (2, 1)])
        assert list(g.edges()) == [(1, 2), (1, 3), (2, 4)]


class TestAccessors:
    def test_neighbors_and_degree(self):
        g = Graph([(1, 2), (1, 3), (2, 3), (3, 4)])
        assert g.neighbors(3) == frozenset({1, 2, 4})
        assert g.degree(3) == 3
        assert g.degree(4) == 1

    def test_neighbors_unknown_vertex(self):
        with pytest.raises(KeyError):
            Graph([(1, 2)]).neighbors(99)

    def test_has_edge_both_orientations(self):
        g = Graph([(1, 2)])
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert not g.has_edge(1, 3)
        assert not g.has_edge(7, 8)  # unknown vertices do not raise

    def test_contains_iter_len(self):
        g = Graph([(1, 2), (2, 3)])
        assert 2 in g and 9 not in g
        assert list(g) == [1, 2, 3]
        assert len(g) == 3

    def test_equality_and_hash(self):
        g1 = Graph([(1, 2), (2, 3)])
        g2 = Graph([(2, 3), (1, 2)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != Graph([(1, 2)])

    def test_degree_sequence(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.degree_sequence() == [3, 1, 1, 1]


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = complete_graph(4)
        sub = g.induced_subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_isolated_vertex_preserved(self):
        g = Graph([(1, 2), (3, 4)])
        sub = g.induced_subgraph([1, 3])
        assert sub.num_vertices == 2
        assert sub.num_edges == 0

    def test_unknown_vertices_ignored(self):
        g = Graph([(1, 2)])
        sub = g.induced_subgraph([1, 99])
        assert sub.vertices == (1,)


class TestRelabel:
    def test_relabel_preserves_structure(self):
        g = Graph([(1, 2), (2, 3)])
        h = g.relabel({1: 10, 2: 20, 3: 30})
        assert h.has_edge(10, 20) and h.has_edge(20, 30)
        assert h.num_edges == 2

    def test_non_injective_rejected(self):
        g = Graph([(1, 2), (2, 3)])
        with pytest.raises(GraphError):
            g.relabel({1: 5, 2: 5, 3: 6})


class TestTraversal:
    def test_connected_components(self):
        g = Graph([(1, 2), (3, 4), (4, 5)])
        comps = sorted(g.connected_components(), key=min)
        assert comps == [frozenset({1, 2}), frozenset({3, 4, 5})]

    def test_is_connected(self):
        assert complete_graph(4).is_connected()
        assert not Graph([(1, 2), (3, 4)]).is_connected()
        assert Graph().is_connected()

    def test_bfs_hops(self):
        g = path_graph(4)  # 1-2-3-4
        assert g.bfs_hops(1) == {1: 0, 2: 1, 3: 2, 4: 3}

    def test_eccentricity_and_radius(self):
        g = path_graph(5)
        assert g.eccentricity(1) == 4
        assert g.eccentricity(3) == 2
        assert g.radius() == 2

    def test_r_hop_neighborhood(self):
        g = path_graph(5)
        assert g.r_hop_neighborhood(3, 1) == frozenset({2, 3, 4})
        assert g.r_hop_neighborhood(3, 0) == frozenset({3})
        with pytest.raises(GraphError):
            g.r_hop_neighborhood(3, -1)

    def test_neighborhood_size(self):
        g = star_graph(3)  # hub=1, leaves 2..4
        # γ^1(hub) = whole graph, S = 3 + 1 + 1 + 1
        assert g.neighborhood_size(1, 1) == 6


class TestFactories:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 10

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in g.vertices)
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path_graph(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert g.degree(1) == 1 and g.degree(2) == 2

    def test_star_graph(self):
        g = star_graph(4)
        assert g.num_vertices == 5
        assert g.degree(1) == 4

    def test_union_graphs(self):
        g = union_graphs([complete_graph(3, offset=1), complete_graph(3, offset=10)])
        assert g.num_vertices == 6
        assert g.num_edges == 6
        assert not g.is_connected()

    def test_offset(self):
        g = complete_graph(3, offset=7)
        assert g.vertices == (7, 8, 9)
