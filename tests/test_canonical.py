"""Canonical pattern hashing: stable across relabelings, separates structures."""

import random

import pytest

from repro.graph.graph import Graph, complete_graph, cycle_graph, path_graph, star_graph
from repro.graph.patterns import PATTERNS
from repro.pattern.canonical import (
    canonical_form,
    canonical_key,
    canonical_relabeling,
    wl_colors,
)
from repro.pattern.isomorphism import are_isomorphic


def shuffled(graph: Graph, seed: int) -> Graph:
    """A random relabeling of ``graph`` onto fresh, non-contiguous ids."""
    rng = random.Random(seed)
    ids = rng.sample(range(1000, 9999), graph.num_vertices)
    mapping = dict(zip(graph.vertices, ids))
    return graph.relabel(mapping)


class TestInvariance:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_bundled_patterns_stable_under_relabeling(self, name):
        g = PATTERNS[name]
        key = canonical_key(g)
        for seed in range(5):
            assert canonical_key(shuffled(g, seed)) == key

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_canonical_graphs_coincide(self, name):
        g = PATTERNS[name]
        cg, mapping = canonical_form(g)
        assert sorted(mapping.values()) == list(range(g.num_vertices))
        for seed in range(3):
            other, _ = canonical_form(shuffled(g, seed))
            assert other == cg

    def test_mapping_is_an_isomorphism(self):
        g = PATTERNS["q4"]
        cg, mapping = canonical_form(g)
        for a, b in g.edges():
            assert cg.has_edge(mapping[a], mapping[b])
        assert cg.num_edges == g.num_edges

    def test_random_graphs_stable(self):
        rng = random.Random(11)
        for trial in range(20):
            n = rng.randint(3, 7)
            edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
            g = Graph(rng.sample(edges, rng.randint(n - 1, len(edges))),
                      vertices=range(n))
            key = canonical_key(g)
            assert canonical_key(shuffled(g, trial)) == key


class TestSeparation:
    def test_bundled_patterns_pairwise_distinct(self):
        keys = {}
        for name, g in PATTERNS.items():
            keys.setdefault(canonical_key(g), []).append(name)
        for key, names in keys.items():
            # Same key must mean genuinely isomorphic patterns.
            for a in names[1:]:
                assert are_isomorphic(PATTERNS[names[0]], PATTERNS[a])

    def test_same_degree_sequence_different_structure(self):
        # Both tadpoles have degree sequence (3, 2, 2, 2, 1) but one
        # rings a square and the other a triangle.
        square_tadpole = Graph([(1, 2), (2, 3), (3, 4), (4, 1), (1, 5)])
        triangle_tadpole = Graph([(1, 2), (2, 3), (3, 1), (1, 4), (4, 5)])
        assert sorted(square_tadpole.degree_sequence()) == sorted(
            triangle_tadpole.degree_sequence()
        )
        assert not are_isomorphic(square_tadpole, triangle_tadpole)
        assert canonical_key(square_tadpole) != canonical_key(triangle_tadpole)

    def test_wl_hard_pair_separated_by_search(self):
        # C6 and 2×C3 have identical WL colors (all 2-regular) but the
        # exhaustive minimization still separates them.
        c6 = cycle_graph(6)
        two_triangles = Graph(
            [(1, 2), (2, 3), (3, 1), (4, 5), (5, 6), (6, 4)]
        )
        assert set(wl_colors(c6).values()) == set(wl_colors(two_triangles).values())
        assert canonical_key(c6) != canonical_key(two_triangles)

    def test_basic_families_distinct(self):
        graphs = [
            complete_graph(4),
            cycle_graph(4),
            path_graph(4),
            star_graph(3),
            complete_graph(5),
            cycle_graph(5),
        ]
        keys = [canonical_key(g) for g in graphs]
        assert len(set(keys)) == len(keys)


class TestShape:
    def test_relabeling_is_dense(self):
        g = shuffled(complete_graph(4), 3)
        mapping = canonical_relabeling(g)
        assert sorted(mapping.values()) == [0, 1, 2, 3]

    def test_single_vertex(self):
        g = Graph([], vertices=[42])
        cg, mapping = canonical_form(g)
        assert mapping == {42: 0}
        assert cg.num_vertices == 1 and cg.num_edges == 0
