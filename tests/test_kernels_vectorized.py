"""Property tests: the numpy kernels are element-identical to the python ones.

Randomized sorted-array suites (seeded, so failures reproduce) assert
that every vectorized kernel of :mod:`repro.kernels.vectorized` returns
exactly what its python counterpart in :mod:`repro.kernels.intersect`
returns — including symmetry bounds, injectivity exclusions, and the
empty/singleton/disjoint edges — plus dispatch tests pinning *when* the
adaptive ``_intersect2``/``_intersectn`` sites take the numpy path (and
that they never do once ``CROSSOVER`` is None).

When hypothesis is installed locally, an extra exhaustive-ish suite runs
the same assertions under its shrinking search; CI without hypothesis
skips only that class.
"""

import random

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph
from repro.kernels import vectorized as vec
from repro.kernels.intersect import (
    KernelStats,
    intersect_filtered,
    intersect_gallop,
    intersect_merge,
    intersect_views,
)

pytestmark = pytest.mark.skipif(
    not vec.HAVE_NUMPY, reason="numpy unavailable"
)


@pytest.fixture(autouse=True)
def _restore_crossover():
    """Dispatch tests pin CROSSOVER; put the measured value back after."""
    before = vec.CROSSOVER
    yield
    vec.set_crossover(before)


def _sorted_unique(rng, size, universe=10_000):
    return sorted(rng.sample(range(universe), size))


def _arr(seq):
    return np.asarray(seq, dtype=np.int64)


SIZES = [0, 1, 2, 3, 7, 50, 400]


class TestKernelParity:
    """np_* kernels == python kernels, element for element."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("na", SIZES)
    @pytest.mark.parametrize("nb", [0, 1, 8, 300])
    def test_merge_parity(self, seed, na, nb):
        rng = random.Random((seed, na, nb).__hash__())
        a = _sorted_unique(rng, na)
        b = _sorted_unique(rng, nb)
        expected = intersect_merge(a, b)
        got = vec.np_intersect_merge(_arr(a), _arr(b)).tolist()
        assert got == expected

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("nsmall", [0, 1, 5, 40])
    def test_gallop_parity(self, seed, nsmall):
        rng = random.Random((seed, nsmall).__hash__())
        small = _sorted_unique(rng, nsmall)
        large = _sorted_unique(rng, 800)
        # Force overlap so the intersection is non-trivial.
        small = sorted(set(small) | set(large[::97]))
        expected = intersect_gallop(small, large)
        got = vec.np_intersect_gallop(_arr(small), _arr(large)).tolist()
        assert got == expected

    def test_gallop_element_past_end_of_large(self):
        # The pos == n guard: a small element beyond large's maximum.
        got = vec.np_intersect_gallop(_arr([5, 999]), _arr([1, 5, 7])).tolist()
        assert got == intersect_gallop([5, 999], [1, 5, 7]) == [5]

    def test_adaptive_matches_merge_and_gallop(self):
        rng = random.Random(7)
        a = _sorted_unique(rng, 10)
        b = _sorted_unique(rng, 900)
        assert vec.np_intersect(_arr(a), _arr(b)).tolist() == intersect_merge(a, b)
        # Symmetry: argument order must not matter.
        assert (
            vec.np_intersect(_arr(b), _arr(a)).tolist()
            == vec.np_intersect(_arr(a), _arr(b)).tolist()
        )

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("nops", [1, 2, 3, 4])
    def test_filtered_parity_with_bounds_and_exclusions(self, seed, nops):
        rng = random.Random((seed, nops).__hash__())
        ops = [_sorted_unique(rng, rng.choice([0, 1, 6, 60, 500])) for _ in range(nops)]
        lo = rng.choice([None, 2_000, 9_999])
        hi = rng.choice([None, 8_000, 1])
        pool = sorted(set().union(*map(set, ops))) or [0]
        exclude = tuple(rng.sample(pool, min(len(pool), rng.choice([0, 1, 3]))))
        stats = KernelStats()
        expected = sorted(intersect_filtered(ops, lo, hi, exclude, stats=stats))
        got = vec.np_intersect_filtered(ops, lo, hi, exclude)
        assert got == expected
        assert all(isinstance(v, int) for v in got)

    def test_bounds_slice_edges(self):
        arr = _arr([10, 20, 30, 40])
        assert vec.np_bounds_slice(arr, None, None).tolist() == [10, 20, 30, 40]
        assert vec.np_bounds_slice(arr, 10, None).tolist() == [20, 30, 40]
        assert vec.np_bounds_slice(arr, None, 40).tolist() == [10, 20, 30]
        assert vec.np_bounds_slice(arr, 40, None).tolist() == []
        assert vec.np_bounds_slice(arr, None, 10).tolist() == []

    def test_exclude_edges(self):
        arr = _arr([1, 2, 3])
        assert vec.np_exclude(arr, (2,)).tolist() == [1, 3]
        assert vec.np_exclude(arr, (99,)).tolist() == [1, 2, 3]
        assert vec.np_exclude(arr, (1, 2, 3)).tolist() == []
        assert vec.np_exclude(_arr([]), (1,)).tolist() == []


def _views(*rows):
    """AdjacencyViews over a real CSR graph containing the given rows.

    Row contents are shifted past the row indices so no edge is a self
    loop; intersections between rows are preserved by the common shift.
    """
    base = len(rows)
    edges = [(u, base + v) for u, row in enumerate(rows) for v in row]
    csr = CSRAdjacency.from_graph(Graph(edges, vertices=range(len(rows))))
    return [csr.row(u) for u in range(len(rows))]


class TestDispatch:
    """When the adaptive sites take the numpy path — and when they must not."""

    def test_views_route_through_vector_above_crossover(self):
        a, b = _views(range(0, 400, 2), range(0, 600, 3))
        stats = KernelStats()
        vec.set_crossover(16)
        got = intersect_views(a, b, stats=stats)
        assert stats.vector == 1 and stats.hash == 0
        assert sorted(got) == sorted(set(a.materialize()) & set(b.materialize()))

    def test_views_below_crossover_stay_python(self):
        a, b = _views([1, 2, 3], [2, 3, 4])
        stats = KernelStats()
        vec.set_crossover(16)
        got = intersect_views(a, b, stats=stats)
        assert stats.vector == 0 and stats.hash == 1
        assert sorted(got) == sorted(set(a.materialize()) & set(b.materialize()))

    def test_crossover_none_disables_dispatch_entirely(self):
        a, b = _views(range(0, 4000, 2), range(0, 6000, 3))
        stats = KernelStats()
        vec.set_crossover(None)
        intersect_views(a, b, stats=stats)
        assert stats.vector == 0 and stats.hash == 1

    def test_filtered_views_dispatch_with_bounds(self):
        a, b = _views(range(0, 400, 2), range(0, 600, 3))
        stats = KernelStats()
        vec.set_crossover(16)
        got = intersect_filtered([a, b], lo=10, hi=500, exclude=(12,), stats=stats)
        assert stats.vector == 1
        oracle = sorted(
            v
            for v in set(a.materialize()) & set(b.materialize())
            if 10 < v < 500 and v != 12
        )
        assert sorted(got) == oracle

    def test_set_crossover_ignores_value_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vec, "HAVE_NUMPY", False)
        vec.set_crossover(64)
        assert vec.CROSSOVER is None

    def test_env_override_disables(self, monkeypatch):
        monkeypatch.setenv(vec.ENV_CROSSOVER, "off")
        assert vec._compute_crossover() is None
        monkeypatch.setenv(vec.ENV_CROSSOVER, "-1")
        assert vec._compute_crossover() is None
        monkeypatch.setenv(vec.ENV_CROSSOVER, "123")
        assert vec._compute_crossover() == 123

    def test_measure_crossover_returns_probed_or_sentinel(self):
        value = vec.measure_crossover(sizes=(32, 64), repeats=2)
        assert value in (32, 64, 256)


try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs pytest only
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
class TestHypothesisParity:
    """The same parity claims under hypothesis's shrinking search."""

    sorted_sets = st.lists(
        st.integers(min_value=0, max_value=5_000), max_size=120
    ).map(lambda xs: sorted(set(xs)))

    @settings(max_examples=60, deadline=None)
    @given(a=sorted_sets, b=sorted_sets)
    def test_merge(self, a, b):
        got = vec.np_intersect_merge(_arr(a), _arr(b)).tolist()
        assert got == intersect_merge(a, b)

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(sorted_sets, min_size=1, max_size=4),
        lo=st.one_of(st.none(), st.integers(0, 5_000)),
        hi=st.one_of(st.none(), st.integers(0, 5_000)),
        exclude=st.lists(st.integers(0, 5_000), max_size=3).map(tuple),
    )
    def test_filtered(self, ops, lo, hi, exclude):
        expected = sorted(
            intersect_filtered(ops, lo, hi, exclude, stats=KernelStats())
        )
        assert vec.np_intersect_filtered(ops, lo, hi, exclude) == expected
