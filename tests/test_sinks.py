"""Tests for match sinks and streaming runs."""

import pytest

from repro.engine.cluster import SimulatedCluster
from repro.engine.config import BenuConfig
from repro.engine.sinks import (
    CallbackSink,
    CollectSink,
    CountSink,
    FileSink,
    ReservoirSink,
)
from repro.graph.generators import erdos_renyi
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import get_pattern
from repro.pattern.pattern_graph import PatternGraph
from repro.plan.compression import compress_plan
from repro.plan.generation import generate_raw_plan
from repro.plan.optimizer import optimize


@pytest.fixture(scope="module")
def setting():
    g, _ = relabel_by_degree_order(erdos_renyi(30, 0.3, seed=71))
    plan = optimize(
        generate_raw_plan(PatternGraph(get_pattern("triangle"), "t"), [1, 2, 3])
    )
    cluster = SimulatedCluster(g, BenuConfig(relabel=False))
    return g, plan, cluster


class TestSinkObjects:
    def test_count_sink(self):
        sink = CountSink()
        for i in range(5):
            sink.emit((i,))
        assert sink.count == 5

    def test_collect_sink(self):
        sink = CollectSink()
        sink.emit((1, 2))
        sink.emit((3, 4))
        assert sink.results == [(1, 2), (3, 4)]
        assert sink.count == 2

    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit((9,))
        assert seen == [(9,)] and sink.count == 1

    def test_file_sink(self, tmp_path):
        path = tmp_path / "out.tsv"
        with FileSink(path) as sink:
            sink.emit((1, 2, 3))
            sink.emit((4, frozenset({7, 5}), 6))
        text = path.read_text()
        assert text.splitlines() == ["1\t2\t3", "4\t{5,7}\t6"]
        assert sink.count == 2

    def test_reservoir_basic(self):
        sink = ReservoirSink(capacity=3, seed=1)
        for i in range(100):
            sink.emit((i,))
        assert sink.count == 100
        assert len(sink.sample) == 3
        assert all(0 <= s[0] < 100 for s in sink.sample)

    def test_reservoir_under_capacity_keeps_all(self):
        sink = ReservoirSink(capacity=10)
        for i in range(4):
            sink.emit((i,))
        assert sorted(s[0] for s in sink.sample) == [0, 1, 2, 3]

    def test_reservoir_uniformity(self):
        """Each item lands in the sample with probability ≈ capacity/N."""
        hits = [0] * 20
        for seed in range(300):
            sink = ReservoirSink(capacity=5, seed=seed)
            for i in range(20):
                sink.emit((i,))
            for (i,) in sink.sample:
                hits[i] += 1
        expected = 300 * 5 / 20
        assert all(0.5 * expected < h < 1.6 * expected for h in hits)

    def test_reservoir_bad_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSink(0)


class TestStreamingRuns:
    def test_file_sink_streams_matches(self, setting, tmp_path):
        g, plan, cluster = setting
        path = tmp_path / "matches.tsv"
        with FileSink(path) as sink:
            result = cluster.run_plan(plan, sink=sink)
        assert result.matches is None  # streamed, not collected
        lines = path.read_text().splitlines()
        assert len(lines) == result.count == sink.count

    def test_collect_sink_equals_internal_collection(self, setting):
        g, plan, cluster = setting
        sink = CollectSink()
        streamed = cluster.run_plan(plan, sink=sink)
        collected_cluster = SimulatedCluster(
            g, BenuConfig(relabel=False, collect=True)
        )
        collected = collected_cluster.run_plan(plan)
        assert sorted(sink.results) == sorted(collected.matches)
        assert streamed.count == collected.count

    def test_reservoir_on_compressed_codes(self, setting):
        g, plan, cluster = setting
        compressed = compress_plan(plan)
        sink = ReservoirSink(capacity=5, seed=2)
        result = cluster.run_plan(compressed, sink=sink)
        assert sink.count == result.count
        assert len(sink.sample) == min(5, result.count)
