"""Tests for the degree-filter hook (Section IV-A)."""

import pytest

from repro.engine.benu import build_plan, count_subgraphs
from repro.engine.config import BenuConfig
from repro.graph.generators import chung_lu, erdos_renyi
from repro.graph.graph import star_graph
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import get_pattern
from repro.pattern.pattern_graph import PatternGraph
from repro.plan.codegen import compile_plan
from repro.plan.compression import compress_plan
from repro.plan.degree_filter import apply_degree_filter, degree_pools
from repro.plan.generation import generate_raw_plan
from repro.plan.optimizer import optimize
from repro.plan.validate import validate_plan


@pytest.fixture(scope="module")
def data_graph():
    g, _ = relabel_by_degree_order(chung_lu(200, 5.0, exponent=2.2, seed=81))
    return g


def plan_for(name, compressed=False):
    pg = PatternGraph(get_pattern(name), name)
    plan = optimize(generate_raw_plan(pg, list(pg.vertices)))
    return compress_plan(plan) if compressed else plan


class TestPools:
    def test_pool_contents(self, data_graph):
        pools = degree_pools(data_graph, [2, 5])
        for v in pools["VD2"]:
            assert data_graph.degree(v) >= 2
        assert pools["VD5"] <= pools["VD2"]

    def test_thresholds_deduplicated(self, data_graph):
        pools = degree_pools(data_graph, [3, 3, 3])
        assert list(pools) == ["VD3"]


class TestTransformation:
    def test_constants_injected(self, data_graph):
        plan = apply_degree_filter(plan_for("chordal_square"), data_graph)
        validate_plan(plan)
        assert any(name.startswith("VD") for name in plan.constants)

    def test_degree_one_pattern_untouched(self, data_graph):
        pg = PatternGraph(star_graph(3), "star")
        plan = optimize(generate_raw_plan(pg, [1, 2, 3, 4]))
        filtered = apply_degree_filter(plan, data_graph)
        # Only the hub (degree 3) needs a pool; leaves are degree 1.
        pools = [n for n in filtered.constants if n.startswith("VD")]
        assert pools == ["VD3"]

    def test_compressed_res_sets_filtered(self, data_graph):
        plan = apply_degree_filter(
            plan_for("chordal_square", compressed=True), data_graph
        )
        validate_plan(plan)


class TestCorrectness:
    @pytest.mark.parametrize("name", ["triangle", "q1", "q4", "q9", "chordal_square"])
    def test_results_unchanged(self, name, data_graph):
        base = plan_for(name)
        filtered = apply_degree_filter(base, data_graph)
        vset = frozenset(data_graph.vertices)

        def count(plan):
            compiled = compile_plan(plan)
            return sum(
                compiled.run(v, data_graph.neighbors, vset=vset).results
                for v in data_graph.vertices
            )

        assert count(base) == count(filtered)

    def test_filter_reduces_enumeration_steps(self, data_graph):
        """On a skewed graph the filter prunes low-degree candidates for
        high-degree pattern vertices."""
        base = plan_for("clique4")
        filtered = apply_degree_filter(base, data_graph)
        vset = frozenset(data_graph.vertices)

        def enu_steps(plan):
            compiled = compile_plan(plan)
            return sum(
                compiled.run(v, data_graph.neighbors, vset=vset).enu_steps
                for v in data_graph.vertices
            )

        assert enu_steps(filtered) <= enu_steps(base)

    def test_end_to_end_config_flag(self):
        g = erdos_renyi(40, 0.25, seed=5)
        for name in ("q3", "q6"):
            plain = count_subgraphs(get_pattern(name), g, BenuConfig())
            filtered = count_subgraphs(
                get_pattern(name), g, BenuConfig(degree_filter=True)
            )
            assert plain == filtered

    def test_build_plan_parameter(self, data_graph):
        plan = build_plan(
            get_pattern("q4"),
            order=[1, 2, 3, 4, 5],
            degree_filter_data=data_graph,
        )
        validate_plan(plan)
        assert any(n.startswith("VD") for n in plan.constants)

    def test_combines_with_clique_cache(self, data_graph):
        g = data_graph
        plain = count_subgraphs(get_pattern("q3"), g, BenuConfig(relabel=False))
        both = count_subgraphs(
            get_pattern("q3"),
            g,
            BenuConfig(
                relabel=False,
                degree_filter=True,
                generalized_clique_cache=True,
            ),
        )
        assert plain == both
