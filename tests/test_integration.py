"""End-to-end integration tests: every engine, one truth.

These runs exercise the whole stack — plan search, optimization, VCBC,
storage, caches, task splitting, the simulated cluster — against the
oracle and every baseline on shared data graphs, including a bundled
power-law dataset.
"""

import pytest

from repro.baselines.inmemory import run_inmemory
from repro.baselines.joins import run_join_baseline
from repro.baselines.multiway import run_multiway
from repro.baselines.wcoj import run_wcoj
from repro.engine.benu import count_subgraphs, enumerate_subgraphs, run_benu
from repro.engine.config import BenuConfig
from repro.graph.datasets import tiny_dataset
from repro.graph.generators import chung_lu
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import FIG6_PATTERNS, get_pattern
from repro.pattern.pattern_graph import PatternGraph


@pytest.fixture(scope="module")
def power_law_graph():
    g, _ = relabel_by_degree_order(chung_lu(250, 5.0, exponent=2.4, seed=23))
    return g


class TestAllEnginesAgree:
    @pytest.mark.parametrize("name", ["triangle", "square", "chordal_square"])
    def test_five_engines_one_count(self, name, power_law_graph):
        g = power_law_graph
        pattern = PatternGraph(get_pattern(name), name)
        cfg = BenuConfig(relabel=False, num_workers=2)
        counts = {
            "benu": count_subgraphs(pattern, g, cfg),
            "inmemory": run_inmemory(pattern, g).count,
            "join": run_join_baseline(pattern, g, "star").count,
            "wcoj": run_wcoj(pattern, g).count,
            "multiway": run_multiway(pattern, g, num_reducers=4).count,
        }
        assert len(set(counts.values())) == 1, counts

    @pytest.mark.parametrize("name", ["q2", "q6"])
    def test_larger_patterns_three_engines(self, name, power_law_graph):
        """Six-vertex patterns skip the O(b^n)-replication multiway run."""
        g = power_law_graph
        pattern = PatternGraph(get_pattern(name), name)
        cfg = BenuConfig(relabel=False, num_workers=2)
        counts = {
            count_subgraphs(pattern, g, cfg),
            run_inmemory(pattern, g).count,
            run_wcoj(pattern, g).count,
        }
        assert len(counts) == 1, counts


class TestFig6PatternsOnDataset:
    @pytest.mark.parametrize("name", FIG6_PATTERNS)
    def test_benu_vs_inmemory(self, name):
        g = tiny_dataset(seed=7, num_vertices=160, average_degree=4.5)
        pattern = PatternGraph(get_pattern(name), name)
        cfg = BenuConfig(relabel=False)
        assert count_subgraphs(pattern, g, cfg) == run_inmemory(pattern, g).count


class TestConfigurationMatrix:
    """The count is invariant across every runtime configuration."""

    def test_workers_threads_cache_tau_compression(self, power_law_graph):
        g = power_law_graph
        pattern = get_pattern("q1")
        reference = count_subgraphs(pattern, g, BenuConfig(relabel=False))
        variants = [
            BenuConfig(relabel=False, num_workers=1, threads_per_worker=1),
            BenuConfig(relabel=False, num_workers=8, threads_per_worker=2),
            BenuConfig(relabel=False, cache_capacity_bytes=0),
            BenuConfig(relabel=False, cache_capacity_bytes=2048),
            BenuConfig(relabel=False, split_threshold=None),
            BenuConfig(relabel=False, split_threshold=4),
            BenuConfig(relabel=False, optimization_level=0),
            BenuConfig(relabel=False, optimization_level=1),
            BenuConfig(relabel=False, optimization_level=2),
        ]
        for cfg in variants:
            assert count_subgraphs(pattern, g, cfg) == reference, cfg

    def test_compressed_run_expands_to_reference(self, power_law_graph):
        g = power_law_graph
        pattern = get_pattern("q4")
        reference = count_subgraphs(pattern, g, BenuConfig(relabel=False))
        compressed = run_benu(
            pattern, g, BenuConfig(relabel=False, compressed=True, collect=True)
        )
        assert compressed.expanded_count() == reference


class TestCommunicationShape:
    """The headline claim: BENU reads ≲ data-graph-scale bytes while the
    join baseline shuffles intermediate results far larger."""

    def test_benu_reads_bounded_by_graph_scale(self, power_law_graph):
        from repro.storage.serialization import graph_size_bytes

        g = power_law_graph
        result = run_benu(
            get_pattern("q1"), g, BenuConfig(relabel=False, num_workers=1)
        )
        # With an unbounded shared cache, each worker fetches each
        # adjacency set at most once: p × |G| upper bound (Section V-A).
        assert result.communication.bytes_transferred <= graph_size_bytes(g)

    def test_join_baseline_shuffles_more(self, power_law_graph):
        g = power_law_graph
        pattern = PatternGraph(get_pattern("q1"), "q1")
        join = run_join_baseline(pattern, g, "twintwig")
        benu = run_benu(
            pattern.graph, g, BenuConfig(relabel=False, num_workers=1)
        )
        assert join.total_shuffled_bytes > benu.communication.bytes_transferred


class TestEnumerationOutput:
    def test_matches_are_valid_embeddings(self, power_law_graph):
        g = power_law_graph
        pattern = get_pattern("q6")
        matches = enumerate_subgraphs(pattern, g, BenuConfig(relabel=False, collect=True))
        pv = list(pattern.vertices)
        index = {u: i for i, u in enumerate(pv)}
        for match in matches[:50]:
            assert len(set(match)) == len(match)  # injective
            for a, b in pattern.edges():
                assert g.has_edge(match[index[a]], match[index[b]])
