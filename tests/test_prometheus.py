"""Tests for the Prometheus text-format exposition.

Pins format validity with a miniature parser: every non-comment line
must be ``name{labels} value``, histogram bucket series must be
cumulative and end in a ``+Inf`` bucket equal to ``_count``, and label
values must round-trip through the escaping rules.  Then points the
renderer at a real run's registry and the real service ``metrics`` verb.
"""

import re

import pytest

from repro.engine.benu import run_benu
from repro.engine.config import BenuConfig
from repro.graph.generators import erdos_renyi
from repro.graph.patterns import get_pattern
from repro.telemetry.prometheus import escape_label_value, render_prometheus
from repro.telemetry.registry import MetricsRegistry

#: ``name{labels} value`` — the exposition sample-line grammar (labels
#: optional, values are Go-style floats incl. +Inf/-Inf/NaN).
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\})?"
    r" (\+Inf|-Inf|NaN|-?[0-9.e+-]+)$"
)


def assert_valid_exposition(text):
    """Every line is a comment or a well-formed sample; families typed."""
    assert text.endswith("\n")
    typed = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            name, kind = line.split()[2:4]
            assert kind in ("counter", "gauge", "histogram", "untyped")
            assert name not in typed, f"duplicate TYPE for {name}"
            typed.add(name)
        elif line.startswith("# HELP "):
            pass
        else:
            assert SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
    return typed


class TestRendering:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", help="jobs run", labels=("kind",)).inc(
            3, kind="fast"
        )
        reg.gauge("temperature", help="degrees").set(-1.5)
        text = render_prometheus(reg)
        assert_valid_exposition(text)
        assert '# HELP jobs_total jobs run\n' in text
        assert 'jobs_total{kind="fast"} 3\n' in text
        assert "temperature -1.5\n" in text

    def test_integral_floats_render_as_ints(self):
        reg = MetricsRegistry()
        reg.gauge("n").set(4.0)
        assert "\nn 4\n" in render_prometheus(reg)

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", labels=("path",)).inc(1, path='a"b\\c\nd')
        text = render_prometheus(reg)
        assert_valid_exposition(text)
        assert 'c{path="a\\"b\\\\c\\nd"} 1' in text

    def test_escape_label_value_rules(self):
        assert escape_label_value('plain') == 'plain'
        assert escape_label_value('\\') == '\\\\'
        assert escape_label_value('"') == '\\"'
        assert escape_label_value('\n') == '\\n'

    def test_metric_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("bad-name.with dots").inc()
        text = render_prometheus(reg)
        assert_valid_exposition(text)
        assert "bad_name_with_dots 1" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestHistograms:
    def test_buckets_are_cumulative_with_inf_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", help="latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        text = render_prometheus(reg)
        assert_valid_exposition(text)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="10"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text
        assert "lat_count 5" in text
        assert "lat_sum 56.25" in text

    def test_labeled_histogram_keeps_le_per_series(self):
        reg = MetricsRegistry()
        h = reg.histogram("t", labels=("instr",), buckets=(1.0,))
        h.observe(0.5, instr="INT")
        h.observe(2.0, instr="ENU")
        text = render_prometheus(reg)
        assert_valid_exposition(text)
        assert 't_bucket{instr="INT",le="1"} 1' in text
        assert 't_bucket{instr="INT",le="+Inf"} 1' in text
        assert 't_bucket{instr="ENU",le="1"} 0' in text
        assert 't_bucket{instr="ENU",le="+Inf"} 1' in text

    def test_bucket_monotonicity_invariant(self):
        """Parsed cumulative bucket counts never decrease as le grows."""
        reg = MetricsRegistry()
        h = reg.histogram("d", buckets=(1, 2, 4, 8))
        for v in (0.5, 1.5, 3, 9, 100):
            h.observe(v)
        counts = []
        for line in render_prometheus(reg).splitlines():
            m = re.match(r'd_bucket\{le="[^"]+"\} (\d+)', line)
            if m:
                counts.append(int(m.group(1)))
        assert counts == sorted(counts)
        assert counts[-1] == 5  # +Inf == count


class TestRealRegistries:
    def test_full_run_registry_is_valid(self):
        result = run_benu(
            get_pattern("chordal_square"),
            erdos_renyi(40, 0.2, seed=11),
            BenuConfig(num_workers=2),
        )
        text = render_prometheus(result.telemetry.registry)
        typed = assert_valid_exposition(text)
        assert {
            "benu_db_queries_total",
            "benu_instructions_total",
            "benu_task_sim_seconds",
            "benu_plan_q_error",
        } <= typed
        assert re.search(r'benu_instructions_total\{instr="RES",worker="\d+"\}', text)

    def test_service_registry_is_valid(self):
        from repro.graph.graph import complete_graph
        from repro.service import BenuService

        with BenuService() as service:
            service.register_graph("k6", complete_graph(6))
            handle = service.submit("triangle", "k6", stream=False)
            handle.wait(timeout=30)
            text = render_prometheus(service.registry)
        typed = assert_valid_exposition(text)
        assert {
            "benu_events_total",
            "benu_service_queries_total",
            "benu_service_query_q_error",
            "benu_service_query_wall_seconds",
        } <= typed
        assert 'benu_events_total{type="query_submitted"} 1' in text
