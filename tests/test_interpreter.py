"""Tests for the reference interpreter itself."""

import pytest

from repro.engine.interpreter import interpret_all, interpret_plan
from repro.graph.generators import erdos_renyi
from repro.graph.graph import complete_graph
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import get_pattern
from repro.pattern.isomorphism import enumerate_matches
from repro.pattern.pattern_graph import PatternGraph
from repro.plan.generation import generate_raw_plan
from repro.plan.optimizer import optimize


@pytest.fixture
def data_graph():
    g, _ = relabel_by_degree_order(erdos_renyi(22, 0.3, seed=41))
    return g


def plan_for(name, order=None, level=3):
    pg = PatternGraph(get_pattern(name), name)
    return optimize(generate_raw_plan(pg, order or list(pg.vertices)), level)


class TestInterpretPlan:
    def test_triangle_counts(self):
        g = complete_graph(4, offset=0)
        plan = plan_for("triangle")
        total = sum(
            interpret_plan(plan, v, g.neighbors).results for v in g.vertices
        )
        assert total == 4

    def test_counters_accumulate(self, data_graph):
        plan = plan_for("q1")
        counters = interpret_all(plan, data_graph.vertices, data_graph.neighbors)
        assert counters.dbq_ops > 0
        assert counters.int_ops > 0
        assert counters.enu_steps >= counters.results

    def test_matches_against_oracle(self, data_graph):
        plan = plan_for("square")
        out = []
        interpret_all(
            plan, data_graph.vertices, data_graph.neighbors, emit=out.append
        )
        oracle = sorted(
            enumerate_matches(
                plan.pattern.graph,
                data_graph,
                partial_order=plan.pattern.symmetry_conditions,
            )
        )
        assert sorted(out) == oracle

    def test_candidate_override(self, data_graph):
        plan = plan_for("triangle")
        hub = max(data_graph.vertices, key=data_graph.degree)
        vset = frozenset(data_graph.vertices)
        full = interpret_plan(plan, hub, data_graph.neighbors, vset).results
        empty = interpret_plan(
            plan,
            hub,
            data_graph.neighbors,
            vset,
            candidate_override=frozenset(),
        ).results
        assert empty == 0 <= full

    def test_triangle_cache_shared_across_calls(self, data_graph):
        """Passing the same tcache dict lets a task reuse entries."""
        plan = plan_for("q6", [1, 4, 5, 6, 2, 3])
        hub = max(data_graph.vertices, key=data_graph.degree)
        cache = {}
        first = interpret_plan(
            plan, hub, data_graph.neighbors, frozenset(data_graph.vertices), tcache=cache
        )
        second = interpret_plan(
            plan, hub, data_graph.neighbors, frozenset(data_graph.vertices), tcache=cache
        )
        assert second.trc_misses == 0 or second.trc_misses < first.trc_misses
