"""Tests for the Section V-A communication-complexity bounds."""

import pytest

from repro.engine.cluster import SimulatedCluster
from repro.engine.config import BenuConfig
from repro.graph.generators import chung_lu
from repro.graph.graph import star_graph
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import get_pattern
from repro.pattern.pattern_graph import PatternGraph
from repro.plan.generation import generate_raw_plan
from repro.plan.optimizer import optimize


@pytest.fixture(scope="module")
def data_graph():
    g, _ = relabel_by_degree_order(chung_lu(300, 6.0, exponent=2.3, seed=3))
    return g


def plan_for(name):
    pg = PatternGraph(get_pattern(name), name)
    return optimize(generate_raw_plan(pg, list(pg.vertices)))


class TestUnboundedCacheBound:
    """With C larger than the data graph, the paper's tight bound is
    O(p · |V(G)|) database queries, independent of the pattern."""

    @pytest.mark.parametrize("name", ["triangle", "q1", "q6"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_queries_at_most_workers_times_vertices(
        self, name, workers, data_graph
    ):
        config = BenuConfig(
            num_workers=workers, cache_capacity_bytes=None, relabel=False
        )
        result = SimulatedCluster(data_graph, config).run_plan(plan_for(name))
        assert result.communication.queries <= workers * data_graph.num_vertices

    def test_single_worker_fetches_each_vertex_once(self, data_graph):
        """One worker with an unbounded cache misses each key at most once."""
        config = BenuConfig(num_workers=1, relabel=False)
        result = SimulatedCluster(data_graph, config).run_plan(plan_for("q1"))
        assert result.cache.misses <= data_graph.num_vertices
        assert result.communication.queries == result.cache.misses


class TestLocalityBound:
    def test_queried_vertices_within_pattern_radius(self, data_graph):
        """A task only ever queries γ^r(start) for r = radius(P) — the
        locality Fig. 5 illustrates and the cache bound relies on."""
        from repro.plan.codegen import compile_plan

        pattern = PatternGraph(get_pattern("q8"), "q8")
        plan = optimize(generate_raw_plan(pattern, list(pattern.vertices)))
        radius = pattern.graph.radius()
        compiled = compile_plan(plan)
        vset = frozenset(data_graph.vertices)
        for start in list(data_graph.vertices)[::40]:
            queried = set()

            def spy(v, queried=queried):
                queried.add(v)
                return data_graph.neighbors(v)

            compiled.run(start, spy, vset=vset)
            assert queried <= data_graph.r_hop_neighborhood(start, radius)

    def test_star_task_queries_only_the_start(self, data_graph):
        """Matching a star hub-first needs exactly one adjacency set per
        task: radius(star) = 1 and leaves need no DBQ."""
        pg = PatternGraph(star_graph(3), "star")
        plan = optimize(generate_raw_plan(pg, [1, 2, 3, 4]))
        from repro.plan.codegen import compile_plan

        compiled = compile_plan(plan)
        vset = frozenset(data_graph.vertices)
        hub = max(data_graph.vertices, key=data_graph.degree)
        counters = compiled.run(hub, data_graph.neighbors, vset=vset)
        assert counters.dbq_ops == 1
