"""BENU-QL through the service tier: submit_query, the wire protocol's
``query`` op, telemetry, plan-cache label signatures, and the router.

What must hold:

* ``BenuService.submit_query`` answers every result shape (count /
  stream / GROUP BY / projection / unsatisfiable) identically to the
  in-process ``run_query`` oracle, for plain and labeled graphs;
* the ``query`` op speaks JSON end to end and maps front-end failures to
  **structured** error responses (``query_syntax`` / ``query_semantic``
  with line, column and a caret snippet);
* each lowered query emits a ``plan_lowered`` event and bumps the
  ``benu_lang_rule_fired_total`` counter per fired rule;
* the plan cache shares the winning matching *order* between a labeled
  pattern and its structural twin but never the built plan;
* a 2-shard router merges BENU-QL counts, streams and GROUP BY buckets
  exactly.
"""

import json

import pytest

from repro.engine.config import BenuConfig
from repro.graph.graph import Graph
from repro.labeled.graphs import LabeledGraph
from repro.labeled.pattern import LabeledPatternGraph
from repro.lang import QuerySemanticError, run_query
from repro.lang.run import QueryResult  # noqa: F401 — re-exported API
from repro.pattern.pattern_graph import PatternGraph
from repro.service import BenuService
from repro.service.plan_cache import PlanCache
from repro.service.protocol import ServiceProtocol
from repro.shard import LocalShardClient, RouterProtocol, ShardNode, ShardRouter
from repro.telemetry.events import EV_PLAN_LOWERED
from repro.telemetry.snapshot import M_LANG_RULES

EDGES = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5), (1, 4), (5, 6)]
LABELS = {1: "A", 2: "B", 3: "A", 4: "B", 5: "A", 6: "C"}

Q_COUNT = "MATCH (a)-(b), (b)-(c), (a)-(c) RETURN COUNT(*)"
Q_STREAM = "MATCH (a)-(b), (b)-(c), (a)-(c) RETURN *"
Q_PROJECT = "MATCH (a)-(b), (b)-(c), (a)-(c) RETURN c, a"
Q_GROUPS = (
    "MATCH (a)-(b), (b)-(c), (a)-(c) WHERE a.label = 'A' "
    "RETURN COUNT(*) GROUP BY a"
)
Q_UNSAT = "MATCH (a)-(b) WHERE a.label = 'A' AND a.label = 'B' RETURN *"


@pytest.fixture()
def service():
    s = BenuService()
    s.register_graph("g", Graph(EDGES), labels=LABELS)
    yield s
    s.close()


@pytest.fixture()
def oracle():
    data = LabeledGraph(EDGES, LABELS)

    def run(text):
        return run_query(text, data)

    return run


# ---------------------------------------------------------------- service
def test_submit_query_count(service, oracle):
    handle = service.submit_query(Q_COUNT, "g")
    assert handle.lang_kind == "count"
    assert handle.lang_columns == ("count",)
    handle.wait(timeout=60)
    assert handle.result().count == oracle(Q_COUNT).count


def test_submit_query_stream_and_projection(service, oracle):
    handle = service.submit_query(Q_STREAM, "g")
    assert handle.lang_kind == "stream"
    got = sorted(tuple(m) for m in handle.matches())
    assert got == sorted(oracle(Q_STREAM).matches)

    handle = service.submit_query(Q_PROJECT, "g")
    assert handle.lang_columns == ("c", "a")
    got = sorted(tuple(m) for m in handle.matches())
    assert got == sorted(oracle(Q_PROJECT).matches)
    assert all(len(m) == 2 for m in got)


def test_submit_query_groups(service, oracle):
    handle = service.submit_query(Q_GROUPS, "g")
    assert handle.lang_kind == "groups"
    handle.wait(timeout=60)
    handle.result()
    assert handle.lang_groups == oracle(Q_GROUPS).groups


def test_submit_query_unsatisfiable_empty_stream(service):
    handle = service.submit_query(Q_UNSAT, "g")
    got = list(handle.matches())
    assert got == []


def test_submit_query_labeled_needs_labeled_registration(service):
    service.register_graph("plain", Graph(EDGES))
    with pytest.raises(QuerySemanticError, match="without labels"):
        service.submit_query(Q_GROUPS, "plain")
    # Structure-only queries still work against the plain registration.
    handle = service.submit_query(Q_COUNT, "plain")
    handle.wait(timeout=60)
    assert handle.result().count == run_query(Q_COUNT, Graph(EDGES)).count


def test_submit_query_limit_truncates(service):
    handle = service.submit_query(Q_STREAM, "g", limit=2)
    assert len(list(handle.matches())) == 2


def test_register_graph_reports_labeled(service):
    info = service.register_graph("g2", Graph(EDGES), labels=LABELS)
    assert info["labeled"] is True
    info = service.register_graph("g3", Graph(EDGES))
    assert info["labeled"] is False


# -------------------------------------------------------------- telemetry
def test_plan_lowered_event_and_rule_counters(service):
    handle = service.submit_query(Q_COUNT, "g")
    handle.wait(timeout=60)
    rows = [
        e for e in service.events.as_dicts() if e["type"] == EV_PLAN_LOWERED
    ]
    assert rows, "submit_query must emit plan_lowered"
    row = rows[-1]
    assert row["query_id"] == handle.query_id
    fields = row["fields"]
    assert fields["kind"] == "count"
    assert "detect-count-only" in fields["rules"]
    assert fields["logical_size"] >= 2

    counter = service.registry.get(M_LANG_RULES)
    assert counter is not None
    assert counter.value(rule="detect-count-only") >= 1
    before = counter.value(rule="push-label-filter")
    service.submit_query(Q_GROUPS, "g").wait(timeout=60)
    assert counter.value(rule="push-label-filter") == before + 1


# -------------------------------------------------------------- plan cache
def test_plan_cache_shares_order_not_plans_across_labelings(service):
    from repro.engine.benu import prepare_data

    cache = PlanCache()
    graph = Graph(EDGES)
    config = BenuConfig(relabel=False)
    prepared = prepare_data(graph, config)
    triangle = Graph([(1, 2), (2, 3), (1, 3)])

    plain = PatternGraph(triangle, "t")
    labeled = LabeledPatternGraph(
        triangle, {1: "A", 2: None, 3: None}, name="t-labeled"
    )
    plan_plain, outcome = cache.get_or_build(plain, prepared, "g", config)
    assert outcome == "miss"
    plan_labeled, outcome = cache.get_or_build(labeled, prepared, "g", config)
    # Structural twin: the winning order is reused (no plan search), but
    # the built plan is NOT shared — labeled plans differ.
    assert outcome == "isomorphic"
    assert plan_labeled is not plan_plain
    _, outcome = cache.get_or_build(labeled, prepared, "g", config)
    assert outcome == "exact"
    _, outcome = cache.get_or_build(plain, prepared, "g", config)
    assert outcome == "exact"


# ---------------------------------------------------------------- protocol
@pytest.fixture()
def protocol(service):
    return ServiceProtocol(service)


def _ask(protocol, payload):
    return json.loads(protocol.handle_line_json(json.dumps(payload)))


def test_protocol_query_count(protocol, oracle):
    response = _ask(
        protocol, {"op": "query", "text": Q_COUNT, "graph": "g"}
    )
    assert response["ok"] and response["kind"] == "count"
    poll = _ask(
        protocol, {"op": "poll", "query": response["query"], "wait": 60}
    )
    assert poll["done"] and poll["count"] == oracle(Q_COUNT).count


def test_protocol_query_groups(protocol, oracle):
    response = _ask(protocol, {"op": "query", "text": Q_GROUPS, "graph": "g"})
    assert response["columns"] == ["a", "count"]
    poll = _ask(
        protocol, {"op": "poll", "query": response["query"], "wait": 60}
    )
    expected = {str(k): v for k, v in oracle(Q_GROUPS).groups.items()}
    assert poll["groups"] == expected


def test_protocol_query_syntax_error_is_structured(protocol):
    response = _ask(
        protocol,
        {"op": "query", "text": "MATCH (a)-(b), RETURN *", "graph": "g"},
    )
    assert not response["ok"]
    assert response["error"] == "query_syntax"
    assert response["line"] == 1 and response["column"] == 16
    text_line, caret_line = response["snippet"].splitlines()
    assert caret_line.index("^") == response["column"] - 1


def test_protocol_query_semantic_error_is_structured(protocol):
    response = _ask(
        protocol,
        {"op": "query", "text": "MATCH (a)-(a) RETURN *", "graph": "g"},
    )
    assert not response["ok"] and response["error"] == "query_semantic"
    assert "self-loop" in response["message"]


def test_protocol_capabilities_advertise_query(protocol):
    response = _ask(protocol, {"op": "hello", "version": 2})
    assert "query" in response["capabilities"]


def test_protocol_register_with_labels(protocol):
    response = _ask(
        protocol,
        {
            "op": "register", "name": "wired",
            "edges": [list(e) for e in EDGES],
            "labels": {str(v): l for v, l in LABELS.items()},
        },
    )
    assert response["ok"] and response["labeled"] is True
    submitted = _ask(
        protocol, {"op": "query", "text": Q_GROUPS, "graph": "wired"}
    )
    assert submitted["ok"], submitted


def test_protocol_register_rejects_bad_labels(protocol):
    response = _ask(
        protocol,
        {
            "op": "register", "name": "bad",
            "edges": [[1, 2]], "labels": {"not-an-int": "A"},
        },
    )
    assert not response["ok"] and response["error"] == "invalid_query"


# ------------------------------------------------------------------ router
@pytest.fixture()
def routed():
    nodes = [ShardNode(i, 2, epoch=1) for i in range(2)]
    router = ShardRouter([LocalShardClient(node) for node in nodes])
    router.register(
        "g",
        edges=[list(e) for e in EDGES],
        labels={str(v): l for v, l in LABELS.items()},
    )
    yield router
    for node in nodes:
        node.close()


def test_router_submit_query_count(routed, oracle):
    result = routed.submit_query(Q_COUNT, "g").result()
    assert result["count"] == oracle(Q_COUNT).count
    assert len(result["per_shard"]) == 2
    assert sum(e["count"] for e in result["per_shard"]) == result["count"]


def test_router_submit_query_stream(routed, oracle):
    query = routed.submit_query(Q_STREAM, "g")
    assert query.stream and query.kind == "stream"
    got = sorted(tuple(m) for m in query.matches())
    assert got == sorted(oracle(Q_STREAM).matches)


def test_router_submit_query_groups_merge(routed, oracle):
    result = routed.submit_query(Q_GROUPS, "g").result()
    expected = {str(k): v for k, v in oracle(Q_GROUPS).groups.items()}
    assert result["groups"] == expected


def test_router_query_errors_before_network(routed):
    from repro.lang import QuerySyntaxError

    with pytest.raises(QuerySyntaxError):
        routed.submit_query("MATCH (a)-(b), RETURN *", "g")


def test_router_protocol_query_op(routed, oracle):
    protocol = RouterProtocol(routed)
    submitted = _ask(
        protocol, {"op": "query", "text": Q_GROUPS, "graph": "g"}
    )
    assert submitted["ok"] and submitted["kind"] == "groups"
    assert len(submitted["shards"]) == 2
    poll = _ask(protocol, {"op": "poll", "query": submitted["query"]})
    expected = {str(k): v for k, v in oracle(Q_GROUPS).groups.items()}
    assert poll["done"] and poll["groups"] == expected


def test_router_protocol_query_error_is_structured(routed):
    protocol = RouterProtocol(routed)
    response = _ask(
        protocol,
        {"op": "query", "text": "MATCH (a)-(b), RETURN *", "graph": "g"},
    )
    assert not response["ok"] and response["error"] == "query_syntax"
    assert response["line"] == 1 and "^" in response["snippet"]
