"""Tests for the PatternGraph analysis bundle."""

import pytest

from repro.graph.graph import Graph, complete_graph
from repro.graph.patterns import get_pattern
from repro.pattern.pattern_graph import PatternGraph


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PatternGraph(Graph())

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            PatternGraph(Graph([(1, 2), (3, 4)]))

    def test_accepts_single_vertex(self):
        p = PatternGraph(Graph(vertices=[1]))
        assert p.n == 1 and p.m == 0


class TestCachedAnalysis:
    def test_basic_counts(self):
        p = PatternGraph(get_pattern("q1"), "q1")
        assert (p.n, p.m) == (5, 6)

    def test_triangle_bundle(self):
        p = PatternGraph(complete_graph(3))
        assert p.num_automorphisms == 6
        assert p.symmetry_conditions == [(1, 2), (1, 3), (2, 3)]
        assert p.se_classes == [[1, 2, 3]]
        assert p.min_vertex_cover == frozenset({1, 2})

    def test_caching_returns_same_object(self):
        p = PatternGraph(get_pattern("q4"), "q4")
        assert p.automorphisms is p.automorphisms
        assert p.symmetry_conditions is p.symmetry_conditions

    def test_neighbors_and_degree_delegate(self):
        p = PatternGraph(get_pattern("q3"), "q3")
        assert p.degree(4) == p.graph.degree(4)
        assert p.neighbors(1) == p.graph.neighbors(1)

    def test_cover_prefix_delegates(self):
        p = PatternGraph(get_pattern("demo"), "demo")
        assert p.cover_prefix([1, 3, 5, 2, 6, 4]) == 3

    def test_repr(self):
        p = PatternGraph(get_pattern("q2"), "q2")
        assert "q2" in repr(p)
