"""Tests for the unified telemetry layer (registry, tracing, profiling)."""

import json

import pytest

from repro.engine.benu import run_benu
from repro.engine.config import BenuConfig
from repro.graph.generators import erdos_renyi
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import get_pattern
from repro.telemetry import (
    MetricsRegistry,
    TelemetryConfig,
    Tracer,
    validate_chrome_trace,
)
from repro.telemetry.profiler import INSTRUCTION_SECONDS_METRIC, SamplingProfiler
from repro.telemetry.registry import MetricError
from repro.telemetry.tracing import NULL_TRACER


@pytest.fixture
def data_graph():
    g, _ = relabel_by_degree_order(erdos_renyi(40, 0.2, seed=3))
    return g


def run(data_graph, telemetry=None):
    config = BenuConfig(
        num_workers=2, threads_per_worker=2, relabel=False, telemetry=telemetry
    )
    return run_benu(get_pattern("chordal_square"), data_graph, config)


class TestRegistry:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        c = reg.counter("requests", labels=("worker",))
        c.inc(worker=0)
        c.inc(4, worker=0)
        c.inc(2, worker=1)
        assert c.value(worker=0) == 5
        assert c.value(worker=1) == 2
        assert c.value(worker=9) == 0  # never-seen label set reads as 0
        assert c.total() == 7
        # get-or-create: re-requesting the name returns the same metric.
        assert reg.counter("requests", labels=("worker",)) is c
        assert reg.counter_total("requests") == 7
        assert reg.counter_total("never_registered") == 0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("n").inc(-1)

    def test_label_mismatch_at_use_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("tagged", labels=("worker",))
        with pytest.raises(MetricError):
            c.inc(phase="x")

    def test_gauge_semantics(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3.5)
        g.add(-1.0)
        assert g.value() == 2.5

    def test_histogram_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=(1.0, 10.0))
        for x in (0.5, 2.0, 100.0):
            h.observe(x)
        hv = h.value()
        assert hv.count == 3
        assert hv.sum == pytest.approx(102.5)
        assert hv.min == 0.5
        assert hv.max == 100.0
        assert hv.mean == pytest.approx(102.5 / 3)
        # one observation per bucket + one in the implicit overflow bucket
        assert hv.bucket_counts == [1, 1, 1]

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")

    def test_label_set_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("y", labels=("a",))
        with pytest.raises(MetricError):
            reg.counter("y", labels=("b",))

    def test_as_dict_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c", labels=("k",)).inc(3, k="v")
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        loaded = json.loads(json.dumps(reg.as_dict()))
        assert set(loaded) == {"c", "g", "h"}
        assert loaded["c"]["kind"] == "counter"
        assert loaded["c"]["samples"] == [
            {"labels": {"k": "v"}, "value": 3}
        ]
        assert loaded["h"]["samples"][0]["value"]["count"] == 1


class TestTracer:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b", args={"k": 1}):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner-a", "inner-b"]
        assert root.find("inner-b").args == {"k": 1}
        assert root.wall_seconds >= sum(c.wall_seconds for c in root.children)

    def test_end_out_of_order_raises(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(RuntimeError):
            tracer.end(outer)

    def test_json_export_roundtrip(self):
        tracer = Tracer()
        with tracer.span("job"):
            with tracer.span("step"):
                pass
        d = json.loads(json.dumps(tracer.to_dict()))
        assert d["spans"][0]["name"] == "job"
        assert d["spans"][0]["children"][0]["name"] == "step"
        assert d["dropped_sim_events"] == 0

    def test_chrome_export_validates(self):
        tracer = Tracer()
        with tracer.span("job"):
            with tracer.span("step"):
                pass
        tracer.add_sim_slice("worker-0/thread-0", "task v=1", 0.0, 0.5)
        trace = tracer.to_chrome()
        assert validate_chrome_trace(trace) == []
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in phases and "M" in phases
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids == {1, 2}  # wall-clock pipeline + simulated timeline

    def test_validate_catches_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        bad_dur = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1, "dur": -1}
            ]
        }
        assert validate_chrome_trace(bad_dur) != []

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", args={"x": 1}) as s:
            s.args["more"] = 2
        NULL_TRACER.add_sim_slice("t", "n", 0.0, 1.0)
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.to_dict() is None

    def test_exception_unwinds_and_flags_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("job"):
                with tracer.span("step", args={"k": 1}):
                    raise ValueError("boom")
        # Both spans are closed (no dangling stack) and flagged.
        (root,) = tracer.roots
        step = root.find("step")
        assert step.t1 is not None and root.t1 is not None
        assert step.args["error"] is True
        assert root.args["error"] is True
        assert step.args["k"] == 1  # pre-raise args survive
        # The tracer is reusable after the unwind.
        with tracer.span("after"):
            pass
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_exception_unwind_is_scoped_to_each_span(self):
        """A span that observed the raise but exited cleanly isn't closed
        twice, and siblings after recovery carry no error flag."""
        tracer = Tracer()
        with tracer.span("outer"):
            with pytest.raises(RuntimeError):
                with tracer.span("failing"):
                    raise RuntimeError("handled")
            with tracer.span("recovery"):
                pass
        (root,) = tracer.roots
        assert root.find("failing").args["error"] is True
        assert "error" not in root.find("recovery").args
        assert "error" not in root.args

    def test_raising_plan_function_leaves_trace_consistent(
        self, data_graph, monkeypatch
    ):
        """Regression: a plan function that raises mid-run used to leave
        the tracer's span stack dangling, so the *export* — not the
        user's error — blew up.  Now every open span is closed at the
        raise instant with ``error=True`` and the trace stays exportable."""
        from repro.engine.benu import (
            execute_plan,
            prepare_data,
            prepare_plan,
        )
        from repro.telemetry.runtime import Telemetry

        def broken_compile(*args, **kwargs):
            raise RuntimeError("synthetic codegen failure")

        monkeypatch.setattr(
            "repro.engine.backends.simulated.compile_plan", broken_compile
        )
        config = BenuConfig(
            num_workers=2, relabel=False,
            telemetry=TelemetryConfig(trace=True),
        )
        hub = Telemetry(config.telemetry)
        prepared = prepare_data(data_graph, config)
        plan = prepare_plan(get_pattern("triangle"), prepared, config)
        with pytest.raises(RuntimeError, match="synthetic codegen"):
            execute_plan(plan, prepared, config, telemetry=hub)
        tracer = hub.tracer
        # No dangling open spans: everything closed by the unwind ...
        def all_spans(spans):
            for s in spans:
                yield s
                yield from all_spans(s.children)
        assert all(s.t1 is not None for s in all_spans(tracer.roots))
        # ... the failing path is flagged, and the export still works.
        assert any(
            s.args.get("error") for s in all_spans(tracer.roots)
        )
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_sim_slice_cap_reports_drops(self):
        tracer = Tracer(max_sim_events=2)
        for i in range(5):
            tracer.add_sim_slice("t", f"s{i}", float(i), 1.0)
        assert len(tracer.sim_events) == 2
        assert tracer.dropped_sim_events == 3
        assert tracer.to_chrome()["otherData"]["dropped_sim_events"] == 3


class TestProfiler:
    def test_sampling_gate(self):
        reg = MetricsRegistry()
        hist = reg.histogram(INSTRUCTION_SECONDS_METRIC, labels=("instr",))
        prof = SamplingProfiler(hist, sample_every=4)
        fired = [prof.should_sample() for _ in range(12)]
        assert fired == [False, False, False, True] * 3

    def test_timed_preserves_return_value(self):
        reg = MetricsRegistry()
        hist = reg.histogram(INSTRUCTION_SECONDS_METRIC, labels=("instr",))
        prof = SamplingProfiler(hist, sample_every=1)
        wrapped = prof.timed("DBQ", lambda x: x * 2)
        assert wrapped(21) == 42
        assert hist.value(instr="DBQ").count == 1
        assert prof.samples_taken == 1

    def test_rejects_bad_rate(self):
        hist = MetricsRegistry().histogram("h", labels=("instr",))
        with pytest.raises(ValueError):
            SamplingProfiler(hist, sample_every=0)


class TestPipelineIntegration:
    def test_disabled_telemetry_no_extra_queries(self, data_graph):
        plain = run(data_graph, telemetry=None)
        traced = run(
            data_graph,
            telemetry=TelemetryConfig(trace=True, profile=True, sample_every=4),
        )
        # Observability must not perturb the simulation: same answer, same
        # communication ledger, query for query.
        assert traced.count == plain.count
        assert traced.communication.queries == plain.communication.queries
        assert (
            traced.communication.bytes_transferred
            == plain.communication.bytes_transferred
        )
        assert traced.cache.lookups == plain.cache.lookups
        assert traced.makespan_seconds == pytest.approx(plain.makespan_seconds)

    def test_snapshot_always_present_with_parity(self, data_graph):
        result = run(data_graph, telemetry=None)
        snap = result.telemetry
        assert snap is not None and not snap.enabled
        assert snap.tracer is None
        assert snap.db_queries == result.communication.queries
        assert snap.db_bytes == result.communication.bytes_transferred
        assert snap.cache_hits == result.cache.hits
        assert snap.cache_misses == result.cache.misses
        assert snap.cache_hit_rate == pytest.approx(result.cache.hit_rate)
        assert snap.results == result.count
        assert snap.tasks == result.num_tasks
        assert snap.makespan_seconds == pytest.approx(result.makespan_seconds)

    def test_instruction_counts_match_counters(self, data_graph):
        result = run(data_graph, telemetry=TelemetryConfig())
        counts = result.telemetry.instruction_counts
        assert counts["RES"] == result.count
        assert counts["DBQ"] > 0
        assert counts["INT"] > 0

    def test_trace_contains_pipeline_spans(self, data_graph):
        result = run(data_graph, telemetry=TelemetryConfig())
        tree = result.telemetry.trace_tree()
        (job,) = tree["spans"]
        assert job["name"] == "benu-job"
        child_names = [c["name"] for c in job["children"]]
        for required in ("plan-search", "task-generation", "execution"):
            assert required in child_names
        # Worker spans carry both clocks.
        execution = next(c for c in job["children"] if c["name"] == "execution")
        workers = [c for c in execution["children"] if c["name"].startswith("worker-")]
        assert len(workers) == 2
        for w in workers:
            assert w["sim_seconds"] >= 0
            assert w["wall_seconds"] >= 0

    def test_profiler_populates_instruction_histograms(self, data_graph):
        result = run(
            data_graph,
            telemetry=TelemetryConfig(profile=True, sample_every=2),
        )
        samples = result.telemetry.instruction_wall_samples()
        assert samples  # at least one instruction type sampled
        assert set(samples) <= {"DBQ", "INT", "TRC"}
        assert all(v.count > 0 for v in samples.values())

    def test_unprofiled_run_has_no_samples(self, data_graph):
        result = run(data_graph, telemetry=TelemetryConfig())
        assert result.telemetry.instruction_wall_samples() == {}

    def test_write_trace_file(self, data_graph, tmp_path):
        result = run(data_graph, telemetry=TelemetryConfig())
        path = tmp_path / "trace.json"
        result.telemetry.write_trace(path)
        assert validate_chrome_trace(json.loads(path.read_text())) == []
        nested = tmp_path / "trace_nested.json"
        result.telemetry.write_trace(nested, format="json")
        assert json.loads(nested.read_text())["spans"][0]["name"] == "benu-job"

    def test_write_trace_disabled_raises(self, data_graph):
        result = run(data_graph, telemetry=None)
        with pytest.raises(RuntimeError):
            result.telemetry.write_trace("/tmp/nope.json")

    def test_write_metrics_file(self, data_graph, tmp_path):
        result = run(data_graph, telemetry=TelemetryConfig())
        path = tmp_path / "metrics.json"
        result.telemetry.write_metrics(path)
        loaded = json.loads(path.read_text())
        assert loaded["summary"]["db_queries"] == result.communication.queries

    def test_interpreter_path_with_profiler(self, data_graph):
        from repro.engine.interpreter import interpret_all
        from repro.pattern.pattern_graph import PatternGraph
        from repro.plan.generation import generate_raw_plan
        from repro.plan.optimizer import optimize

        pg = PatternGraph(get_pattern("triangle"), "triangle")
        plan = optimize(generate_raw_plan(pg, list(pg.vertices)))
        reg = MetricsRegistry()
        prof = SamplingProfiler(
            reg.histogram(INSTRUCTION_SECONDS_METRIC, labels=("instr",)),
            sample_every=2,
        )
        plain = interpret_all(plan, data_graph.vertices, data_graph.neighbors)
        profiled = interpret_all(
            plan, data_graph.vertices, data_graph.neighbors, profiler=prof
        )
        assert profiled.results == plain.results
        assert profiled.dbq_ops == plain.dbq_ops
        assert prof.samples_taken > 0
