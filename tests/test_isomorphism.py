"""Tests for the backtracking matcher (the correctness oracle)."""

import math

import pytest

from repro.graph.graph import Graph, complete_graph, cycle_graph, path_graph
from repro.graph.patterns import get_pattern
from repro.pattern.isomorphism import (
    are_isomorphic,
    count_matches,
    enumerate_matches,
    find_subgraph_instances,
)


class TestEnumerateMatches:
    def test_triangle_in_k4(self):
        """K4 has C(4,3)=4 triangles, each with 3!=6 matches."""
        assert count_matches(complete_graph(3), complete_graph(4)) == 24

    def test_clique_in_clique_formula(self):
        """Matches of K_a in K_b = b!/(b-a)!."""
        for a, b in [(2, 4), (3, 5), (4, 6)]:
            expected = math.factorial(b) // math.factorial(b - a)
            assert count_matches(complete_graph(a), complete_graph(b)) == expected

    def test_no_match_in_triangle_free_graph(self):
        assert count_matches(complete_graph(3), cycle_graph(5)) == 0

    def test_path_in_path(self):
        # P3 in P4: 2 subgraphs × 2 automorphisms.
        assert count_matches(path_graph(3), path_graph(4)) == 4

    def test_match_tuple_indexing(self):
        """f = (f1, ..., fn) indexed by sorted pattern vertex."""
        p = Graph([(1, 2)], vertices=[1, 2])
        g = Graph([(10, 20)])
        matches = set(enumerate_matches(p, g))
        assert matches == {(10, 20), (20, 10)}

    def test_explicit_order(self):
        p = complete_graph(3)
        g = complete_graph(4)
        default = sorted(enumerate_matches(p, g))
        explicit = sorted(enumerate_matches(p, g, order=[3, 1, 2]))
        assert default == explicit

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_matches(complete_graph(3), complete_graph(3), order=[1, 2]))

    def test_empty_pattern(self):
        assert list(enumerate_matches(Graph(), complete_graph(3))) == [()]

    def test_partial_order_constraints(self):
        p = complete_graph(3)
        g = complete_graph(4)
        constrained = list(
            enumerate_matches(p, g, partial_order=[(1, 2), (1, 3), (2, 3)])
        )
        # 24 matches / 6 automorphisms = 4 ordered matches.
        assert len(constrained) == 4
        assert all(m[0] < m[1] < m[2] for m in constrained)

    def test_partial_order_single_condition(self):
        p = Graph([(1, 2)])
        g = complete_graph(3)
        matches = list(enumerate_matches(p, g, partial_order=[(1, 2)]))
        assert len(matches) == 3
        assert all(a < b for a, b in matches)


class TestAreIsomorphic:
    def test_same_graph(self):
        assert are_isomorphic(cycle_graph(5), cycle_graph(5, offset=10))

    def test_different_degree_sequences(self):
        assert not are_isomorphic(path_graph(4), Graph([(1, 2), (1, 3), (1, 4)]))

    def test_same_degrees_different_structure(self):
        # C6 vs two triangles: both 2-regular on 6 vertices.
        two_triangles = Graph([(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6)])
        assert not are_isomorphic(cycle_graph(6), two_triangles)

    def test_size_mismatch(self):
        assert not are_isomorphic(cycle_graph(4), cycle_graph(5))

    @pytest.mark.parametrize("name", ["q1", "q4", "q7", "demo"])
    def test_relabel_invariance(self, name):
        p = get_pattern(name)
        shifted = p.relabel({v: v + 100 for v in p.vertices})
        assert are_isomorphic(p, shifted)


class TestFindSubgraphInstances:
    def test_triangles_in_k4(self):
        instances = list(find_subgraph_instances(complete_graph(3), complete_graph(4)))
        assert len(instances) == 4  # deduplicated by edge set

    def test_instances_are_edge_sets(self):
        instances = list(
            find_subgraph_instances(Graph([(1, 2)]), Graph([(5, 6), (6, 7)]))
        )
        assert sorted(instances, key=sorted) == [
            frozenset({frozenset({5, 6})}),
            frozenset({frozenset({6, 7})}),
        ]
