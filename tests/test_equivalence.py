"""Tests for syntactic equivalence and the dual-pruning condition."""

import pytest

from repro.graph.graph import Graph, complete_graph, cycle_graph, star_graph
from repro.graph.patterns import get_pattern
from repro.pattern.equivalence import (
    class_index,
    equivalence_classes,
    passes_dual_condition,
    syntactically_equivalent,
)


class TestSERelation:
    def test_adjacent_se_pair(self):
        """In K3, any two vertices are SE (Γ(u)−{v} = Γ(v)−{u})."""
        g = complete_graph(3)
        assert syntactically_equivalent(g, 1, 2)

    def test_non_adjacent_se_pair(self):
        """Square: opposite corners share both neighbors."""
        g = cycle_graph(4)  # 1-2-3-4-1
        assert syntactically_equivalent(g, 1, 3)
        assert syntactically_equivalent(g, 2, 4)
        assert not syntactically_equivalent(g, 1, 2)

    def test_reflexive(self):
        g = get_pattern("q1")
        assert all(syntactically_equivalent(g, v, v) for v in g.vertices)

    def test_symmetric(self):
        g = get_pattern("q4")
        for u in g.vertices:
            for v in g.vertices:
                assert syntactically_equivalent(g, u, v) == syntactically_equivalent(
                    g, v, u
                )

    def test_named_pattern_classes(self):
        """SE pairs in the Fig. 6 reconstructions: q7's diagonal ends and
        q9's two square corners are interchangeable."""
        assert syntactically_equivalent(get_pattern("q7"), 1, 3)
        assert syntactically_equivalent(get_pattern("q9"), 2, 4)
        assert not syntactically_equivalent(get_pattern("q4"), 1, 4)


class TestClasses:
    def test_classes_partition(self):
        for name in ["q1", "q5", "demo", "clique4"]:
            g = get_pattern(name)
            classes = equivalence_classes(g)
            flat = sorted(v for cls in classes for v in cls)
            assert flat == list(g.vertices)

    def test_clique_single_class(self):
        assert equivalence_classes(complete_graph(4)) == [[1, 2, 3, 4]]

    def test_star_leaves_one_class(self):
        classes = equivalence_classes(star_graph(3))
        assert [1] in classes
        assert [2, 3, 4] in classes

    def test_class_index_consistent(self):
        g = get_pattern("q7")
        idx = class_index(g)
        for cls in equivalence_classes(g):
            assert len({idx[v] for v in cls}) == 1


class TestDualCondition:
    def test_smaller_class_member_must_come_first(self):
        g = complete_graph(3)
        # Placing 2 before 1 is a dual of placing 1 before 2 — rejected.
        assert passes_dual_condition(g, [], 1)
        assert not passes_dual_condition(g, [], 2)
        assert passes_dual_condition(g, [1], 2)
        assert not passes_dual_condition(g, [1], 3)

    def test_independent_classes_unaffected(self):
        g = star_graph(2)  # hub 1, leaves 2, 3
        assert passes_dual_condition(g, [], 1)  # hub is its own class
        assert passes_dual_condition(g, [1], 2)
        assert not passes_dual_condition(g, [1], 3)

    def test_asymmetric_pattern_everything_passes(self):
        g = Graph([(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)])
        for v in g.vertices:
            assert passes_dual_condition(g, [], v) or any(
                syntactically_equivalent(g, v, w) for w in g.vertices if w < v
            )
