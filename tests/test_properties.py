"""Property-based tests (hypothesis) on the core invariants.

These are the load-bearing correctness guarantees:

* any matching order × any optimization level × compressed-or-not
  enumerates exactly the oracle's match set;
* symmetry breaking bijects matches and subgraphs;
* the LRU cache never changes results, only costs;
* serialization round-trips arbitrary adjacency sets.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.benu import count_subgraphs
from repro.engine.config import BenuConfig
from repro.graph.generators import erdos_renyi, random_connected_graph
from repro.graph.graph import Graph
from repro.graph.order import relabel_by_degree_order
from repro.pattern.automorphism import automorphism_count
from repro.pattern.isomorphism import enumerate_matches, find_subgraph_instances
from repro.pattern.pattern_graph import PatternGraph
from repro.plan.codegen import compile_plan
from repro.plan.compression import compress_plan, expand_code
from repro.plan.generation import generate_raw_plan
from repro.plan.optimizer import optimize
from repro.plan.validate import validate_plan
from repro.storage.serialization import decode_adjacency, encode_adjacency

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
patterns = st.builds(
    random_connected_graph,
    n=st.integers(min_value=2, max_value=5),
    extra_edge_prob=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=10_000),
)

data_graphs = st.builds(
    lambda n, p, seed: relabel_by_degree_order(erdos_renyi(n, p, seed=seed))[0],
    n=st.integers(min_value=4, max_value=18),
    p=st.floats(min_value=0.1, max_value=0.6),
    seed=st.integers(min_value=0, max_value=10_000),
)

adjacency_sets = st.sets(st.integers(min_value=0, max_value=2**40), max_size=200)

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def oracle_matches(pattern: Graph, data: Graph):
    pg = PatternGraph(pattern)
    return sorted(
        enumerate_matches(pattern, data, partial_order=pg.symmetry_conditions)
    )


def benu_matches(pattern: Graph, data: Graph, order, level):
    pg = PatternGraph(pattern)
    plan = optimize(generate_raw_plan(pg, order), level)
    validate_plan(plan)
    compiled = compile_plan(plan, mode="collect")
    out = []
    vset = frozenset(data.vertices)
    for v in data.vertices:
        compiled.run(v, data.neighbors, vset=vset, emit=out.append)
    return sorted(out)


# ----------------------------------------------------------------------
# Plan correctness
# ----------------------------------------------------------------------
@relaxed
@given(pattern=patterns, data=data_graphs, data2=st.randoms())
def test_any_order_any_level_matches_oracle(pattern, data, data2):
    order = list(pattern.vertices)
    data2.shuffle(order)
    level = data2.randrange(4)
    assert benu_matches(pattern, data, order, level) == oracle_matches(pattern, data)


@relaxed
@given(pattern=patterns, data=data_graphs, rnd=st.randoms())
def test_compression_round_trip(pattern, data, rnd):
    order = list(pattern.vertices)
    rnd.shuffle(order)
    pg = PatternGraph(pattern)
    plan = optimize(generate_raw_plan(pg, order))
    compressed = compress_plan(plan)
    validate_plan(compressed)
    compiled = compile_plan(compressed, mode="collect")
    codes = []
    vset = frozenset(data.vertices)
    for v in data.vertices:
        compiled.run(v, data.neighbors, vset=vset, emit=codes.append)
    expanded = sorted(
        m for code in codes for m in expand_code(compressed, code)
    )
    assert expanded == oracle_matches(pattern, data)


@relaxed
@given(pattern=patterns, data=data_graphs)
def test_symmetry_breaking_bijection(pattern, data):
    pg = PatternGraph(pattern)
    constrained = sum(
        1
        for _ in enumerate_matches(
            pattern, data, partial_order=pg.symmetry_conditions
        )
    )
    unconstrained = sum(1 for _ in enumerate_matches(pattern, data))
    subgraphs = sum(1 for _ in find_subgraph_instances(pattern, data))
    assert constrained == subgraphs
    assert unconstrained == subgraphs * automorphism_count(pattern)


@relaxed
@given(pattern=patterns, data=data_graphs, capacity=st.integers(0, 4096))
def test_cache_capacity_never_changes_results(pattern, data, capacity):
    baseline = count_subgraphs(pattern, data, BenuConfig(relabel=False))
    capped = count_subgraphs(
        pattern,
        data,
        BenuConfig(relabel=False, cache_capacity_bytes=capacity),
    )
    assert baseline == capped


@relaxed
@given(
    pattern=patterns,
    data=data_graphs,
    tau=st.integers(min_value=1, max_value=30),
)
def test_task_splitting_never_changes_results(pattern, data, tau):
    baseline = count_subgraphs(
        pattern, data, BenuConfig(relabel=False, split_threshold=None)
    )
    split = count_subgraphs(
        pattern, data, BenuConfig(relabel=False, split_threshold=tau)
    )
    assert baseline == split


# ----------------------------------------------------------------------
# Substrate invariants
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(neighbors=adjacency_sets)
def test_adjacency_serialization_round_trip(neighbors):
    assert decode_adjacency(encode_adjacency(neighbors)) == frozenset(neighbors)


@settings(max_examples=60, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=80,
    )
)
def test_graph_construction_invariants(edges):
    g = Graph(edges)
    assert g.num_edges == len({frozenset(e) for e in edges})
    assert sum(g.degree(v) for v in g.vertices) == 2 * g.num_edges
    for u, v in g.edges():
        assert u < v
        assert g.has_edge(v, u)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 7),
    seed=st.integers(0, 1000),
)
def test_relabeling_preserves_match_counts(n, seed):
    pattern = random_connected_graph(min(n, 4), seed=seed)
    data = erdos_renyi(12, 0.4, seed=seed, offset=100)
    relabeled, mapping = relabel_by_degree_order(data)
    raw = sum(1 for _ in enumerate_matches(pattern, data))
    new = sum(1 for _ in enumerate_matches(pattern, relabeled))
    assert raw == new


# ----------------------------------------------------------------------
# Extension invariants
# ----------------------------------------------------------------------
@relaxed
@given(pattern=patterns, data=data_graphs)
def test_degree_filter_never_changes_results(pattern, data):
    baseline = count_subgraphs(pattern, data, BenuConfig(relabel=False))
    filtered = count_subgraphs(
        pattern, data, BenuConfig(relabel=False, degree_filter=True)
    )
    assert baseline == filtered


@relaxed
@given(pattern=patterns, data=data_graphs)
def test_clique_cache_never_changes_results(pattern, data):
    baseline = count_subgraphs(pattern, data, BenuConfig(relabel=False))
    cached = count_subgraphs(
        pattern, data, BenuConfig(relabel=False, generalized_clique_cache=True)
    )
    assert baseline == cached


@relaxed
@given(
    pattern=patterns,
    data=data_graphs,
    num_labels=st.integers(min_value=1, max_value=3),
    seed=st.integers(0, 1000),
)
def test_labels_restrict_and_uniform_label_is_identity(
    pattern, data, num_labels, seed
):
    from repro.labeled import (
        LabeledGraph,
        LabeledPatternGraph,
        count_labeled_subgraphs,
    )

    rng = random.Random(seed)
    alphabet = [f"L{i}" for i in range(num_labels)]
    data_labels = {v: rng.choice(alphabet) for v in data.vertices}
    labeled_data = LabeledGraph(data.edges(), data_labels, data.vertices)
    pattern_labels = {u: rng.choice(alphabet) for u in pattern.vertices}
    labeled_pattern = LabeledPatternGraph(pattern, pattern_labels)

    unlabeled = count_subgraphs(pattern, data, BenuConfig(relabel=False))
    labeled = count_labeled_subgraphs(
        labeled_pattern, labeled_data, BenuConfig(relabel=False)
    )
    assert labeled <= unlabeled
    if num_labels == 1:
        assert labeled == unlabeled


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(st.integers(0, 10_000), unique=True, max_size=200),
    num_slices=st.integers(1, 12),
)
def test_split_slices_partition_property(items, num_slices):
    from repro.engine.task_split import split_slices

    slices = split_slices(items, num_slices)
    assert len(slices) == num_slices
    flat = [v for s in slices for v in s]
    assert sorted(flat) == sorted(items)
    sizes = [len(s) for s in slices]
    assert max(sizes) - min(sizes) <= 1
