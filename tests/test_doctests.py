"""Run every module's doctests — examples in docstrings must stay true."""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


def test_module_discovery_found_the_tree():
    assert "repro.plan.codegen" in MODULES
    assert "repro.labeled.enumerate" in MODULES
    assert len(MODULES) > 30


@pytest.mark.parametrize("module_name", MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(
        module, verbose=False, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failures"
