"""White-box tests for the join and WCOJ baselines' internals."""

import pytest

from repro.baselines.decompose import decompose
from repro.baselines.joins import JoinBaseline, JoinOverflowError, run_join_baseline
from repro.baselines.wcoj import WCOJEnumerator, _extension_order
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph, complete_graph, star_graph
from repro.graph.order import relabel_by_degree_order
from repro.graph.patterns import get_pattern
from repro.pattern.isomorphism import enumerate_matches
from repro.pattern.pattern_graph import PatternGraph


@pytest.fixture(scope="module")
def data_graph():
    g, _ = relabel_by_degree_order(erdos_renyi(25, 0.3, seed=61))
    return g


class TestUnitMatches:
    def test_unit_matches_equal_oracle(self, data_graph):
        """Each unit's matches equal the oracle's on the unit subgraph,
        restricted to the applicable symmetry conditions."""
        pattern = PatternGraph(get_pattern("q1"), "q1")
        baseline = JoinBaseline(pattern, data_graph, "twintwig")
        for unit in baseline.units:
            rows = baseline._unit_matches(unit)
            unit_graph = Graph(unit.edges, vertices=unit.vertices)
            conditions = [
                (lo, hi)
                for lo, hi in pattern.symmetry_conditions
                if lo in unit.vertices and hi in unit.vertices
            ]
            # Oracle matches on the unit subgraph with those conditions.
            want = set(
                enumerate_matches(unit_graph, data_graph, partial_order=conditions)
            )
            # Reorder oracle tuples (sorted unit vertices) to unit order.
            sorted_vs = sorted(unit.vertices)
            perm = [sorted_vs.index(v) for v in unit.vertices]
            got = {tuple(r[i] for i in range(len(r))) for r in rows}
            want_in_unit_order = {
                tuple(m[sorted_vs.index(v)] for v in unit.vertices) for m in want
            }
            assert got == want_in_unit_order

    def test_unit_matches_respect_injectivity(self, data_graph):
        pattern = PatternGraph(star_graph(3), "star")
        baseline = JoinBaseline(pattern, data_graph, "star")
        (unit,) = baseline.units
        for row in baseline._unit_matches(unit):
            assert len(set(row)) == len(row)


class TestJoinBehavior:
    def test_join_order_strategies_agree(self, data_graph):
        pattern = PatternGraph(get_pattern("q4"), "q4")
        counts = {
            strategy: run_join_baseline(pattern, data_graph, strategy).count
            for strategy in ("edge", "twintwig", "star", "clique")
        }
        assert len(set(counts.values())) == 1

    def test_overflow_raised_mid_join(self, data_graph):
        pattern = PatternGraph(get_pattern("q1"), "q1")
        with pytest.raises(JoinOverflowError):
            run_join_baseline(pattern, data_graph, "edge", max_tuples=10)

    def test_overflow_budget_large_enough_passes(self, data_graph):
        pattern = PatternGraph(get_pattern("triangle"), "t")
        result = run_join_baseline(pattern, data_graph, "edge", max_tuples=10**7)
        assert result.count > 0

    def test_round_accounting_monotone_width(self, data_graph):
        pattern = PatternGraph(get_pattern("q2"), "q2")
        result = run_join_baseline(pattern, data_graph, "twintwig")
        assert result.rounds[0].shuffled_bytes > 0
        assert result.total_shuffled_bytes == sum(
            r.shuffled_bytes for r in result.rounds
        )

    def test_single_unit_pattern_no_join_rounds(self, data_graph):
        """A star decomposes into one unit: only the enumeration round."""
        pattern = PatternGraph(star_graph(3), "star")
        result = run_join_baseline(pattern, data_graph, "star")
        assert len(result.rounds) == 1


class TestWCOJInternals:
    def test_extension_order_connectivity(self):
        for name in ("q1", "q5", "q7", "demo"):
            pattern = PatternGraph(get_pattern(name), name)
            order = _extension_order(pattern)
            assert sorted(order) == list(pattern.vertices)
            seen = {order[0]}
            for u in order[1:]:
                assert any(w in seen for w in pattern.neighbors(u)), name
                seen.add(u)

    def test_level_outputs_decrease_only_with_constraints(self, data_graph):
        pattern = PatternGraph(complete_graph(4), "k4")
        result = WCOJEnumerator(pattern, data_graph).run()
        assert result.level_output_tuples[0] == data_graph.num_vertices
        assert result.count == result.level_output_tuples[-1] or result.count >= 0

    def test_peak_accounting_grows_with_batch(self, data_graph):
        pattern = PatternGraph(get_pattern("square"), "square")
        small = WCOJEnumerator(pattern, data_graph, batch_size=8).run()
        large = WCOJEnumerator(pattern, data_graph, batch_size=10**6).run()
        assert small.count == large.count
        assert small.peak_prefixes <= large.peak_prefixes

    def test_intersections_counted(self, data_graph):
        pattern = PatternGraph(complete_graph(4), "k4")
        result = WCOJEnumerator(pattern, data_graph).run()
        assert result.intersections > 0
